"""Cell-level simulation: engine, configuration, results, runners."""

from repro.sim.config import SimulationConfig
from repro.sim.downlink import DownlinkSimulation
from repro.sim.engine import CellSimulation
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    ReplicatedMetric,
    SweepPoint,
    gain_over,
    run_comparison,
    run_replications,
    run_sweep,
)

__all__ = [
    "CellSimulation",
    "DownlinkSimulation",
    "ReplicatedMetric",
    "SimulationConfig",
    "SimulationResult",
    "SweepPoint",
    "gain_over",
    "run_comparison",
    "run_replications",
    "run_sweep",
]
