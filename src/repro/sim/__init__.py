"""Cell-level simulation: engine, configuration, results, runners."""

from repro.sim.config import SimulationConfig
from repro.sim.downlink import DownlinkSimulation
from repro.sim.engine import CellSimulation
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    ReplicatedMetric,
    SweepPoint,
    gain_over,
    map_jobs,
    run_comparison,
    run_replications,
    run_sweep,
)
from repro.sim.stages import (
    CompositeHooks,
    PhaseTimerHooks,
    SimHooks,
    SubframeContext,
    SubframePipeline,
    SubframeStage,
    build_subframe_pipeline,
)

__all__ = [
    "CellSimulation",
    "CompositeHooks",
    "DownlinkSimulation",
    "PhaseTimerHooks",
    "ReplicatedMetric",
    "SimHooks",
    "SimulationConfig",
    "SimulationResult",
    "SubframeContext",
    "SubframePipeline",
    "SubframeStage",
    "SweepPoint",
    "gain_over",
    "map_jobs",
    "run_comparison",
    "run_replications",
    "run_sweep",
]
