"""Simulation metrics: what every figure of the paper is computed from."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.scheduling.fairness import jain_fairness_index
from repro.lte import consts

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run.

    Grant counters are per (UE, RB, subframe) grant; RB counters are per
    (RB, subframe) allocation unit.
    """

    scheduler_name: str
    num_subframes: int = 0
    ul_subframes: int = 0
    dl_subframes: int = 0
    idle_subframes: int = 0

    delivered_bits_by_ue: Dict[int, float] = field(default_factory=dict)

    grants_issued: int = 0
    grants_decoded: int = 0
    grants_blocked: int = 0
    grants_collided: int = 0
    grants_faded: int = 0

    rbs_allocated: int = 0
    rbs_utilized: int = 0
    fully_utilized_subframes: int = 0

    # HARQ (populated when the simulation enables it).
    harq_retransmissions: int = 0
    harq_blocks_recovered: int = 0
    harq_blocks_dropped: int = 0

    #: Optional per-UL-subframe series (enabled via ``record_series``).
    utilization_series: List[float] = field(default_factory=list)

    # Telemetry attached by an ObsSession when observability is enabled.
    # Excluded from equality/repr: the bit-exactness contract compares
    # simulation outcomes, never observation payloads.
    obs_snapshot: Optional[Dict] = field(default=None, compare=False, repr=False)
    obs_trace: Optional[List[Dict]] = field(
        default=None, compare=False, repr=False
    )
    #: Streamed time-series frame (``TimeSeriesFrame.to_dict()`` form),
    #: attached when ``obs.stream`` is on.
    obs_series: Optional[Dict] = field(default=None, compare=False, repr=False)

    # -- derived metrics ----------------------------------------------------

    @property
    def total_delivered_bits(self) -> float:
        return sum(self.delivered_bits_by_ue.values())

    @property
    def aggregate_throughput_bps(self) -> float:
        """Delivered bits over the whole wall-clock run (DL/idle included)."""
        if self.num_subframes == 0:
            return 0.0
        duration_s = self.num_subframes * consts.SUBFRAME_DURATION_S
        return self.total_delivered_bits / duration_s

    @property
    def aggregate_throughput_mbps(self) -> float:
        return self.aggregate_throughput_bps / 1e6

    def per_ue_throughput_bps(self) -> Dict[int, float]:
        duration_s = max(self.num_subframes, 1) * consts.SUBFRAME_DURATION_S
        return {ue: bits / duration_s for ue, bits in self.delivered_bits_by_ue.items()}

    @property
    def rb_utilization(self) -> float:
        """Fraction of allocated RB units that carried decoded data (Fig. 18)."""
        if self.rbs_allocated == 0:
            return 0.0
        return self.rbs_utilized / self.rbs_allocated

    @property
    def utilization_loss(self) -> float:
        """The Fig. 4a metric: allocated-but-wasted fraction."""
        return 1.0 - self.rb_utilization

    @property
    def fully_utilized_fraction(self) -> float:
        """Fraction of UL subframes with every allocated RB used (Fig. 4b)."""
        if self.ul_subframes == 0:
            return 0.0
        return self.fully_utilized_subframes / self.ul_subframes

    @property
    def grant_usage_fraction(self) -> float:
        if self.grants_issued == 0:
            return 0.0
        return self.grants_decoded / self.grants_issued

    @property
    def grant_block_fraction(self) -> float:
        if self.grants_issued == 0:
            return 0.0
        return self.grants_blocked / self.grants_issued

    @property
    def grant_collision_fraction(self) -> float:
        if self.grants_issued == 0:
            return 0.0
        return self.grants_collided / self.grants_issued

    @property
    def jain_index(self) -> float:
        if not self.delivered_bits_by_ue:
            return 1.0
        return jain_fairness_index(list(self.delivered_bits_by_ue.values()))

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics, for tables and JSON export."""
        return {
            "throughput_mbps": self.aggregate_throughput_mbps,
            "rb_utilization": self.rb_utilization,
            "utilization_loss": self.utilization_loss,
            "fully_utilized_fraction": self.fully_utilized_fraction,
            "grant_usage": self.grant_usage_fraction,
            "grant_blocked": self.grant_block_fraction,
            "grant_collided": self.grant_collision_fraction,
            "jain_index": self.jain_index,
            "ul_subframes": float(self.ul_subframes),
        }

    def to_dict(self) -> Dict:
        """Full JSON-serializable dump: counters plus derived summary."""
        return {
            "scheduler": self.scheduler_name,
            "counters": {
                "num_subframes": self.num_subframes,
                "ul_subframes": self.ul_subframes,
                "dl_subframes": self.dl_subframes,
                "idle_subframes": self.idle_subframes,
                "grants_issued": self.grants_issued,
                "grants_decoded": self.grants_decoded,
                "grants_blocked": self.grants_blocked,
                "grants_collided": self.grants_collided,
                "grants_faded": self.grants_faded,
                "rbs_allocated": self.rbs_allocated,
                "rbs_utilized": self.rbs_utilized,
                "fully_utilized_subframes": self.fully_utilized_subframes,
                "harq_retransmissions": self.harq_retransmissions,
                "harq_blocks_recovered": self.harq_blocks_recovered,
                "harq_blocks_dropped": self.harq_blocks_dropped,
            },
            "delivered_bits_by_ue": {
                str(ue): bits for ue, bits in self.delivered_bits_by_ue.items()
            },
            "summary": self.summary(),
        }

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dict` dump as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- lossless state (checkpoint/resume) ---------------------------------

    def to_state(self) -> Dict:
        """Lossless JSON-ready dump of every field, for checkpointing.

        Unlike :meth:`to_dict` (a reporting view that drops the series
        and telemetry), this round-trips bit-exactly through JSON via
        :meth:`from_state` — float values survive because Python's
        shortest-repr serialization is exact.
        """
        state = {
            spec.name: getattr(self, spec.name)
            for spec in dataclasses.fields(self)
            if spec.name not in ("delivered_bits_by_ue",)
        }
        state["delivered_bits_by_ue"] = {
            str(ue): bits for ue, bits in self.delivered_bits_by_ue.items()
        }
        state["utilization_series"] = list(self.utilization_series)
        return state

    @classmethod
    def from_state(cls, state: Dict) -> "SimulationResult":
        """Rebuild a result from a :meth:`to_state` payload."""
        data = dict(state)
        data["delivered_bits_by_ue"] = {
            int(ue): bits
            for ue, bits in data.get("delivered_bits_by_ue", {}).items()
        }
        return cls(**data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult({self.scheduler_name}: "
            f"{self.aggregate_throughput_mbps:.2f} Mbps, "
            f"util={self.rb_utilization:.2f})"
        )
