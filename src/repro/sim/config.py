"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.lte import consts

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one cell-level simulation run.

    Attributes:
        num_subframes: wall-clock length of the run (1 ms subframes).
        num_rbs: uplink allocation units per subframe.  Scheduling at RB-
            group granularity (e.g. 10 groups of 5 RBs in a 10 MHz carrier)
            matches LTE type-0 allocation and keeps scheduling costs low;
            rates returned by the rate model are per allocation unit.
        rb_group_size: physical RBs per allocation unit (scales rates).
        num_antennas: eNB receive antennas ``M`` (1 = SISO).
        max_distinct_ues: control-channel limit ``K`` per subframe.
        dl_subframes_per_txop / ul_subframes_per_txop: TxOP split (testbed
            default: grant bursts of three UL subframes).
        enb_busy_probability: chance the eNB's own CCA fails per attempt
            (interference audible at the eNB).
        pf_alpha / pf_initial_bps: PF average parameters.
        doppler_coherence: AR(1) fading coefficient per UE channel.
        link_margin_db: link-adaptation backoff applied when issuing grants.
        activity_kind: hidden-terminal activity model, ``"bernoulli"`` or
            ``"markov"``.
        mean_busy_subframes: burst length for ``"markov"`` activity.
    """

    num_subframes: int = 4000
    num_rbs: int = 10
    rb_group_size: int = 5
    num_antennas: int = 1
    max_distinct_ues: int = 10
    dl_subframes_per_txop: int = 1
    ul_subframes_per_txop: int = consts.SUBFRAMES_PER_BURST
    enb_busy_probability: float = 0.0
    pf_alpha: float = consts.DEFAULT_PF_ALPHA
    pf_initial_bps: float = 1e4
    doppler_coherence: float = 0.97
    link_margin_db: float = 2.0
    #: Subframes of CSI staleness at the scheduler (grant rates are chosen
    #: from channel state this many subframes old; reception always uses
    #: the true instantaneous channel).  0 = ideal feedback.
    csi_delay_subframes: int = 0
    receiver: str = "linear"  # "linear" (<=M streams) or "sic" (NOMA)
    harq_enabled: bool = False  # Chase-combining retransmission of fades
    harq_max_transmissions: int = 4
    activity_kind: str = "bernoulli"
    mean_busy_subframes: float = 3.0

    def __post_init__(self) -> None:
        if self.num_subframes < 1:
            raise ConfigurationError(
                f"num_subframes must be positive: {self.num_subframes}"
            )
        if self.num_rbs < 1:
            raise ConfigurationError(f"num_rbs must be positive: {self.num_rbs}")
        if self.rb_group_size < 1:
            raise ConfigurationError(
                f"rb_group_size must be positive: {self.rb_group_size}"
            )
        if self.num_antennas < 1:
            raise ConfigurationError(
                f"num_antennas must be positive: {self.num_antennas}"
            )
        if self.csi_delay_subframes < 0:
            raise ConfigurationError(
                f"csi_delay_subframes must be >= 0: {self.csi_delay_subframes}"
            )
        if self.receiver not in ("linear", "sic"):
            raise ConfigurationError(
                f"receiver must be 'linear' or 'sic': {self.receiver!r}"
            )
        if self.activity_kind not in ("bernoulli", "markov"):
            raise ConfigurationError(
                f"unknown activity kind: {self.activity_kind!r}"
            )
        if self.mean_busy_subframes < 1.0:
            raise ConfigurationError(
                f"mean_busy_subframes must be >= 1: {self.mean_busy_subframes}"
            )
        if self.ul_subframes_per_txop < 1:
            raise ConfigurationError("TxOP needs at least one UL subframe")
