"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecError
from repro.lte import consts

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one cell-level simulation run.

    Attributes:
        num_subframes: wall-clock length of the run (1 ms subframes).
        num_rbs: uplink allocation units per subframe.  Scheduling at RB-
            group granularity (e.g. 10 groups of 5 RBs in a 10 MHz carrier)
            matches LTE type-0 allocation and keeps scheduling costs low;
            rates returned by the rate model are per allocation unit.
        rb_group_size: physical RBs per allocation unit (scales rates).
        num_antennas: eNB receive antennas ``M`` (1 = SISO).
        max_distinct_ues: control-channel limit ``K`` per subframe.
        dl_subframes_per_txop / ul_subframes_per_txop: TxOP split (testbed
            default: grant bursts of three UL subframes).
        enb_busy_probability: chance the eNB's own CCA fails per attempt
            (interference audible at the eNB).
        pf_alpha / pf_initial_bps: PF average parameters.
        doppler_coherence: AR(1) fading coefficient per UE channel.
        link_margin_db: link-adaptation backoff applied when issuing grants.
        activity_kind: hidden-terminal activity model, ``"bernoulli"`` or
            ``"markov"``.
        mean_busy_subframes: burst length for ``"markov"`` activity.
    """

    num_subframes: int = 4000
    num_rbs: int = 10
    rb_group_size: int = 5
    num_antennas: int = 1
    max_distinct_ues: int = 10
    dl_subframes_per_txop: int = 1
    ul_subframes_per_txop: int = consts.SUBFRAMES_PER_BURST
    enb_busy_probability: float = 0.0
    pf_alpha: float = consts.DEFAULT_PF_ALPHA
    pf_initial_bps: float = 1e4
    doppler_coherence: float = 0.97
    link_margin_db: float = 2.0
    #: Subframes of CSI staleness at the scheduler (grant rates are chosen
    #: from channel state this many subframes old; reception always uses
    #: the true instantaneous channel).  0 = ideal feedback.
    csi_delay_subframes: int = 0
    receiver: str = "linear"  # "linear" (<=M streams) or "sic" (NOMA)
    harq_enabled: bool = False  # Chase-combining retransmission of fades
    harq_max_transmissions: int = 4
    activity_kind: str = "bernoulli"
    mean_busy_subframes: float = 3.0

    def __post_init__(self) -> None:
        # Sizing fields are validated here, by name, so a bad value fails
        # at spec/config construction instead of deep inside the engine.
        for field_name in (
            "num_subframes", "num_rbs", "rb_group_size", "num_antennas",
            "max_distinct_ues",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SpecError(
                    f"sim.{field_name} must be a positive integer: {value!r}"
                )
        if self.csi_delay_subframes < 0:
            raise SpecError(
                f"sim.csi_delay_subframes must be >= 0: "
                f"{self.csi_delay_subframes}"
            )
        if self.receiver not in ("linear", "sic"):
            raise SpecError(
                f"sim.receiver must be 'linear' or 'sic': {self.receiver!r}"
            )
        if self.activity_kind not in ("bernoulli", "markov"):
            raise SpecError(
                f"unknown activity kind: {self.activity_kind!r}"
            )
        if self.mean_busy_subframes < 1.0:
            raise SpecError(
                f"sim.mean_busy_subframes must be >= 1: "
                f"{self.mean_busy_subframes}"
            )
        if self.ul_subframes_per_txop < 1:
            raise SpecError(
                f"sim.ul_subframes_per_txop must be >= 1 (a TxOP needs at "
                f"least one UL subframe): {self.ul_subframes_per_txop}"
            )
        if self.dl_subframes_per_txop < 0:
            raise SpecError(
                f"sim.dl_subframes_per_txop must be >= 0: "
                f"{self.dl_subframes_per_txop}"
            )
