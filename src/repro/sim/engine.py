"""The subframe-granularity cell simulation engine.

One run couples four processes at 1 ms resolution:

* hidden-terminal activity (independent per-terminal busy processes);
* per-UE uplink fading channels (AR(1) Rayleigh over the RB grid);
* the eNB's TxOP loop: CCA/backoff, then ``dl + ul`` owned subframes;
* the scheduler under test, consulted once per TxOP (grant bursts, as in
  the WARP testbed) — or per UL subframe for genie schedulers.

The per-subframe sequence itself lives in :mod:`repro.sim.stages`: a
:class:`~repro.sim.stages.SubframePipeline` of typed stages (timeline →
interference/CCA → channels → arrivals → schedule → transmit/decode →
HARQ/feedback).  The engine owns the state those stages operate on and
drives the TxOP loop around them.

Two interchangeable stage families drive the medium:

* the **fast path** (default): one :class:`~repro.lte.channel.UplinkChannelBank`
  steps every UE channel as a ``(num_ues, num_rbs)`` array op, hidden-terminal
  silencing is a boolean reduction over the topology's cached edge matrix,
  and activity is batch-sampled — all stream-identical to the scalar path;
* the **legacy path** (``fast_path=False``): per-UE channel objects and
  per-terminal process stepping, kept as the bit-exact reference the
  fast-path regression test compares against.

Observers attach through :class:`~repro.sim.stages.SimHooks` (per-stage
and per-subframe callbacks); a ``phase_timer`` is adapted onto the same
seam via :class:`~repro.sim.stages.PhaseTimerHooks`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Mapping, Optional, Set, Union

import numpy as np

from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.fairness import PfAverageTracker
from repro.core.scheduling.types import SchedulingContext
from repro.errors import ConfigurationError, SimulationError
from repro.lte import consts
from repro.lte import mcs
from repro.lte.channel import UplinkChannel, UplinkChannelBank
from repro.lte.enb import ENodeB
from repro.lte.harq import HarqConfig, HarqPool
from repro.lte.traffic import FullBufferTraffic, TrafficSource, UeQueue
from repro.lte.phy import GrantOutcome
from repro.lte.resources import SubframeSchedule
from repro.obs.timing import PhaseTimer
from repro.dynamics.timeline import (
    AddTerminalOp,
    EnvironmentTimeline,
    RemoveTerminalOp,
    RetuneOp,
)
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.stages import (
    DOWNLINK,
    IDLE,
    UPLINK,
    CompositeHooks,
    PhaseTimerHooks,
    SimHooks,
    SubframeContext,
    SubframePipeline,
    build_subframe_pipeline,
)
from repro.spectrum.activity import (
    ActivityProcess,
    BernoulliActivity,
    DynamicIndependentActivity,
    IndependentActivity,
    JointActivityModel,
    MarkovOnOffActivity,
)
from repro.topology.graph import InterferenceTopology

__all__ = ["CellSimulation"]


class _MatrixRows(Mapping):
    """Read-only per-UE-id row view of a dense ``(num_ues, num_rbs)``
    CSI matrix, satisfying the ``sinr_db`` mapping contract without
    materializing one row object per client per scheduling call."""

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self._matrix = matrix

    def __getitem__(self, ue: int) -> np.ndarray:
        if not 0 <= ue < self._matrix.shape[0]:
            raise KeyError(ue)
        return self._matrix[ue]

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def __iter__(self):
        return iter(range(self._matrix.shape[0]))


class CellSimulation:
    """Simulate one LTE cell under hidden-terminal interference."""

    def __init__(
        self,
        topology: InterferenceTopology,
        mean_snr_db: Mapping[int, float],
        scheduler: UplinkScheduler,
        config: Optional[SimulationConfig] = None,
        activity_processes: Optional[List[ActivityProcess]] = None,
        activity_model: Optional[JointActivityModel] = None,
        traffic_sources: Optional[Mapping[int, TrafficSource]] = None,
        silencer: Optional[Callable[[FrozenSet[int]], Set[int]]] = None,
        seed: Optional[int] = None,
        record_series: bool = False,
        fast_path: bool = True,
        phase_timer: Optional[PhaseTimer] = None,
        timeline: Optional[EnvironmentTimeline] = None,
        hooks: Optional[SimHooks] = None,
        pipeline: Optional[SubframePipeline] = None,
    ) -> None:
        if config is None:
            config = SimulationConfig()
        if set(mean_snr_db) != set(range(topology.num_ues)):
            raise ConfigurationError(
                "mean_snr_db must cover exactly the topology's UEs"
            )
        self.topology = topology
        self.config = config
        self.scheduler = scheduler
        self.record_series = record_series
        self._fast = bool(fast_path)
        self._rng = np.random.default_rng(seed)
        self._timeline_runtime = None
        structural_timeline = False
        if timeline is not None:
            for event in timeline.events:
                ue = getattr(event, "ue", None)
                if ue is not None and not 0 <= ue < topology.num_ues:
                    raise ConfigurationError(
                        f"timeline event references unknown UE {ue}: {event}"
                    )
            structural_timeline = timeline.has_structural_events
            self._timeline_runtime = timeline.runtime(topology)

        if activity_model is not None and activity_processes is not None:
            raise ConfigurationError(
                "pass either activity_processes or activity_model, not both"
            )
        if structural_timeline and (
            activity_model is not None
            or activity_processes is not None
            or silencer is not None
        ):
            # Arrivals/departures/drift must flow into the activity substrate
            # and the edge-based silencer; arbitrary user substrates cannot
            # be mutated consistently across both engine paths.
            raise ConfigurationError(
                "a timeline with hidden-terminal events requires the "
                "default activity model and silencer"
            )
        if activity_model is not None:
            self._activity = activity_model
        elif activity_processes is not None:
            self._activity = IndependentActivity(activity_processes)
        elif timeline is not None:
            # Per-subframe stepping (no block prefetch) so mid-run arrivals,
            # departures and re-tunes take effect immediately — and
            # identically — on the fast and legacy paths.
            self._activity = DynamicIndependentActivity(self._build_activity())
        else:
            self._activity = IndependentActivity(self._build_activity())
        if self._activity.num_terminals != topology.num_terminals:
            raise ConfigurationError(
                f"activity model covers {self._activity.num_terminals} "
                f"terminals, topology has {topology.num_terminals}"
            )

        #: Maps the active-terminal set to the silenced-UE set.  The default
        #: is the binary edge model of the blueprint; an energy-aggregation
        #: silencer (e.g. Scenario.power_silencer()) can replace it to model
        #: sub-threshold interferers that jointly cross the ED threshold.
        self._silencer = silencer
        self._ue_edges = topology.ue_edge_map()
        #: (num_terminals, num_ues) boolean silencing matrix for the fast
        #: path: silenced = any(edge row of an active terminal).
        self._edge_matrix = topology.edge_matrix()
        self._bank: Optional[UplinkChannelBank] = None
        if self._fast:
            # The bank spawns one child generator per UE in UE order — the
            # same parent-stream consumption as the per-object loop below.
            self._bank = UplinkChannelBank(
                mean_rx_power_dbm=[
                    consts.NOISE_FLOOR_10MHZ_DBM + mean_snr_db[ue]
                    for ue in range(topology.num_ues)
                ],
                num_rbs=config.num_rbs,
                doppler_coherence=config.doppler_coherence,
                rng=self._rng,
            )
            self._channels = {
                ue: self._bank.view(ue) for ue in range(topology.num_ues)
            }
        else:
            self._channels = {}
            for ue in range(topology.num_ues):
                child = np.random.default_rng(self._rng.integers(0, 2**63))
                self._channels[ue] = UplinkChannel(
                    mean_rx_power_dbm=consts.NOISE_FLOOR_10MHZ_DBM
                    + mean_snr_db[ue],
                    num_rbs=config.num_rbs,
                    doppler_coherence=config.doppler_coherence,
                    rng=child,
                )

        self.enb = ENodeB(
            num_antennas=config.num_antennas,
            num_rbs=config.num_rbs,
            enb_busy_probability=config.enb_busy_probability,
            dl_subframes_per_txop=config.dl_subframes_per_txop,
            ul_subframes_per_txop=config.ul_subframes_per_txop,
            rate_scale=float(config.rb_group_size),
            receiver=config.receiver,
            rng=np.random.default_rng(self._rng.integers(0, 2**63)),
        )
        self.tracker = PfAverageTracker(
            range(topology.num_ues),
            alpha=config.pf_alpha,
            initial_bps=config.pf_initial_bps,
        )
        # Ring buffer of past SINR snapshots for CSI feedback delay: per-UE
        # dicts on the legacy path, whole (U, R) matrices on the fast path.
        self._csi_history: Deque[Union[Dict[int, np.ndarray], np.ndarray]] = (
            deque(maxlen=config.csi_delay_subframes + 1)
        )
        self._harq: Optional[HarqPool] = (
            HarqPool(
                topology.num_ues,
                HarqConfig(max_transmissions=config.harq_max_transmissions),
            )
            if config.harq_enabled
            else None
        )
        # Full buffer unless per-UE traffic sources are supplied (paper
        # footnote 1's finite-buffer extension).
        self._queues: Dict[int, UeQueue] = {}
        for ue in range(topology.num_ues):
            source = (
                traffic_sources.get(ue, FullBufferTraffic())
                if traffic_sources is not None
                else FullBufferTraffic()
            )
            self._queues[ue] = UeQueue(source)
        #: Clients currently attached (UeJoin/UeLeave gate traffic; the UE
        #: id space itself is fixed for the run).
        self._active_ues: Set[int] = set(range(topology.num_ues))

        #: Schedule held across the UL subframes of one TxOP; the run loop
        #: clears it at each TxOP boundary and the ScheduleStage refills it.
        self._current_schedule: Optional[SubframeSchedule] = None
        self._reschedule_each = bool(
            getattr(scheduler, "reschedule_every_subframe", False)
        )
        if phase_timer is not None:
            timer_hooks = PhaseTimerHooks(phase_timer)
            hooks = (
                timer_hooks
                if hooks is None
                else CompositeHooks([hooks, timer_hooks])
            )
        #: The per-subframe stage sequence.  A custom pipeline (extra
        #: stages, alternative substrates) may be injected; it must keep the
        #: canonical stage contract to stay bit-exact with the defaults.
        self.pipeline: SubframePipeline = (
            pipeline
            if pipeline is not None
            else build_subframe_pipeline(self._fast, hooks=hooks)
        )

    # -- internals ---------------------------------------------------------

    def set_topology(self, topology: InterferenceTopology) -> None:
        """Swap in a new interference topology mid-run.

        The topology class is frozen, so a change is always a *new*
        instance; re-deriving the UE edge map and the fast path's silencing
        matrix here is what keeps the memoized caches from going stale.
        """
        if topology.num_ues != self.topology.num_ues:
            raise ConfigurationError(
                f"cannot change the UE population mid-run: "
                f"{self.topology.num_ues} -> {topology.num_ues}"
            )
        self.topology = topology
        self._ue_edges = topology.ue_edge_map()
        self._edge_matrix = topology.edge_matrix()

    def _apply_timeline(self, t: int) -> None:
        update = self._timeline_runtime.step(t)
        if update is None:
            return
        for op in update.activity_ops:
            if isinstance(op, AddTerminalOp):
                self._activity.add_process(op.process)
            elif isinstance(op, RemoveTerminalOp):
                self._activity.remove_process(op.index)
            elif isinstance(op, RetuneOp):
                self._activity.retune(op.index, op.q)
            else:  # pragma: no cover - op set is closed
                raise SimulationError(f"unknown activity op {op!r}")
        if update.topology is not None:
            self.set_topology(update.topology)
            if self._activity.num_terminals != update.topology.num_terminals:
                raise SimulationError(
                    "activity model and topology disagree after timeline "
                    f"update at subframe {t}"
                )
        for ue in sorted(update.snr_delta_db):
            delta = update.snr_delta_db[ue]
            if self._fast:
                self._bank.adjust_mean_snr_db(ue, delta)
            else:
                self._channels[ue].adjust_mean_snr_db(delta)
        for ue in update.joins:
            self._active_ues.add(ue)
        for ue in update.leaves:
            self._active_ues.discard(ue)

    def _build_activity(self) -> List[ActivityProcess]:
        processes: List[ActivityProcess] = []
        for q in self.topology.q:
            child = np.random.default_rng(self._rng.integers(0, 2**63))
            if self.config.activity_kind == "markov":
                processes.append(
                    MarkovOnOffActivity(
                        q, self.config.mean_busy_subframes, rng=child
                    )
                )
            else:
                processes.append(BernoulliActivity(q, rng=child))
        return processes

    def _scheduler_csi(self) -> Mapping[int, np.ndarray]:
        """The channel state the scheduler is allowed to see (possibly
        stale by ``csi_delay_subframes``)."""
        if not self._csi_history:
            return {ue: ch.sinr_db for ue, ch in self._channels.items()}
        snapshot = self._csi_history[0]
        if isinstance(snapshot, np.ndarray):
            # Fast path: the snapshot is already the dense matrix.  Wrap it
            # as a lazy per-UE row mapping instead of materializing a dict
            # of row views — schedulers on the vectorized path consult the
            # matrix directly, so the rows are rarely (if ever) read.
            return _MatrixRows(snapshot)
        return snapshot

    def _context(self, subframe: int, silenced: Set[int]) -> SchedulingContext:
        backlogged = tuple(
            ue
            for ue in range(self.topology.num_ues)
            if ue in self._active_ues and self._queues[ue].backlogged
        )
        # On the fast path the CSI snapshot already is the dense
        # (num_ues, num_rbs) matrix the context's vectorized rate machinery
        # needs; handing it over skips the per-UE row re-assembly.
        sinr_matrix = None
        if self._fast and self._csi_history:
            snapshot = self._csi_history[0]
            if isinstance(snapshot, np.ndarray):
                sinr_matrix = snapshot
        if sinr_matrix is not None:
            return SchedulingContext.trusted(
                subframe=subframe,
                num_rbs=self.config.num_rbs,
                num_antennas=self.config.num_antennas,
                ue_ids=backlogged,
                sinr_db=self._scheduler_csi(),
                sinr_matrix=sinr_matrix,
                avg_throughput_bps=self.tracker.averages(),
                max_distinct_ues=self.config.max_distinct_ues,
                clear_ues=frozenset(
                    ue
                    for ue in range(self.topology.num_ues)
                    if ue not in silenced
                ),
                rate_scale=float(self.config.rb_group_size),
                link_margin_db=self.config.link_margin_db,
            )
        return SchedulingContext(
            subframe=subframe,
            num_rbs=self.config.num_rbs,
            num_antennas=self.config.num_antennas,
            ue_ids=backlogged,
            sinr_db=self._scheduler_csi(),
            sinr_matrix=sinr_matrix,
            avg_throughput_bps=self.tracker.averages(),
            max_distinct_ues=self.config.max_distinct_ues,
            clear_ues=frozenset(
                ue for ue in range(self.topology.num_ues) if ue not in silenced
            ),
            rate_scale=float(self.config.rb_group_size),
            link_margin_db=self.config.link_margin_db,
            vectorized=self._fast,
        )

    # -- HARQ ----------------------------------------------------------------

    def _apply_harq(
        self,
        schedule: SubframeSchedule,
        reception,
        transmitting: Set[int],
        raw_delivered: Dict[int, float],
    ) -> Dict[int, float]:
        """Resolve HARQ retransmissions and register new fades.

        A transmitting UE with a pending soft buffer spends its first
        usable grant of the subframe on the retransmission: a DECODED grant
        gives full energy (and its new-data bits are forfeited), a FADED
        one still contributes soft energy.  Fresh FADED grants enter the
        pool; collided grants produce no usable soft bits and are dropped.
        """
        delivered = dict(raw_delivered)
        retx_grant: Dict[int, tuple] = {}
        for rb in schedule.allocated_rbs():
            rb_reception = reception.rb_receptions[rb]
            for grant in schedule.rb(rb):
                ue = grant.ue_id
                outcome = rb_reception.outcomes[ue]
                if (
                    ue not in retx_grant
                    and self._harq.pending(ue) is not None
                    and outcome in (GrantOutcome.DECODED, GrantOutcome.FADED)
                ):
                    retx_grant[ue] = (rb, grant, outcome)

        consumed = set()
        for ue, (rb, grant, outcome) in retx_grant.items():
            sinr_db = float(self._channels[ue].sinr_db[rb])
            energy = 10.0 ** (sinr_db / 10.0)
            recovered = self._harq.retransmission_result(ue, energy)
            if outcome is GrantOutcome.DECODED:
                # The grant carried the retransmission, not new data.
                delivered[ue] = delivered.get(ue, 0.0) - grant.rate_bps * (
                    consts.SUBFRAME_DURATION_S
                )
                if delivered.get(ue, 0.0) <= 1e-12:
                    delivered.pop(ue, None)
            if recovered is not None:
                delivered[ue] = delivered.get(ue, 0.0) + recovered
            consumed.add((ue, rb))

        for rb in schedule.allocated_rbs():
            rb_reception = reception.rb_receptions[rb]
            for grant in schedule.rb(rb):
                ue = grant.ue_id
                if (ue, rb) in consumed:
                    continue
                if rb_reception.outcomes[ue] is GrantOutcome.FADED:
                    sinr_db = float(self._channels[ue].sinr_db[rb])
                    per_rb_rate = grant.rate_bps / max(
                        self.config.rb_group_size, 1
                    )
                    try:
                        required_db = mcs.min_sinr_db_for_rate(per_rb_rate)
                    except ValueError:
                        continue
                    self._harq.first_attempt_failed(
                        ue,
                        bits=grant.rate_bps * consts.SUBFRAME_DURATION_S,
                        required_sinr_linear=10.0 ** (required_db / 10.0),
                        attempt_sinr_linear=10.0 ** (sinr_db / 10.0),
                    )
        for ue in set(schedule.scheduled_ues()) - transmitting:
            if self._harq.pending(ue) is not None:
                self._harq.retransmission_blocked(ue)
        return delivered

    # -- main loop -----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the configured number of subframes; return aggregated metrics."""
        result = SimulationResult(scheduler_name=self.scheduler.name)
        result.delivered_bits_by_ue = {
            ue: 0.0 for ue in range(self.topology.num_ues)
        }
        pipeline = self.pipeline

        t = 0
        total = self.config.num_subframes
        while t < total:
            txop = self.enb.try_acquire_txop(t)
            if txop is None:
                # eNB backed off: the medium still evolves.
                pipeline.run_subframe(self, SubframeContext(t, IDLE, result))
                result.idle_subframes += 1
                t += 1
                continue

            # DL part of the TxOP (grants go out; medium evolves).
            dl = min(txop.dl_subframes, total - t)
            for _ in range(dl):
                pipeline.run_subframe(self, SubframeContext(t, DOWNLINK, result))
                result.dl_subframes += 1
                t += 1

            # UL part: one grant burst per TxOP (the ScheduleStage refills
            # the held schedule, per subframe for genie schedulers).
            self._current_schedule = None
            for _ in range(txop.ul_subframes):
                if t >= total:
                    break
                pipeline.run_subframe(self, SubframeContext(t, UPLINK, result))
                t += 1

        result.num_subframes = t
        return result
