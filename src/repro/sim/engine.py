"""The subframe-granularity cell simulation engine.

One run couples four processes at 1 ms resolution:

* hidden-terminal activity (independent per-terminal busy processes);
* per-UE uplink fading channels (AR(1) Rayleigh over the RB grid);
* the eNB's TxOP loop: CCA/backoff, then ``dl + ul`` owned subframes;
* the scheduler under test, consulted once per TxOP (grant bursts, as in
  the WARP testbed) — or per UL subframe for genie schedulers.

Per UL subframe: each scheduled UE senses the medium (CCA) and transmits on
its grants only if clear; the eNB decodes every RB under the ``<= M``
streams rule, classifies grant outcomes from pilots, updates PF averages
with delivered rates, and hands the access observation back to the
scheduler (which is how the BLU controller keeps measuring).

Two interchangeable substrates drive the medium:

* the **fast path** (default): one :class:`~repro.lte.channel.UplinkChannelBank`
  steps every UE channel as a ``(num_ues, num_rbs)`` array op, hidden-terminal
  silencing is a boolean reduction over the topology's cached edge matrix,
  and activity is batch-sampled — all stream-identical to the scalar path;
* the **legacy path** (``fast_path=False``): per-UE channel objects and
  per-terminal process stepping, kept as the bit-exact reference the
  fast-path regression test compares against.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Callable, Deque, Dict, FrozenSet, List, Mapping, Optional, Set, Union

import numpy as np

from repro.core.measurement.classifier import classify_subframe
from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.fairness import PfAverageTracker
from repro.core.scheduling.types import SchedulingContext
from repro.errors import ConfigurationError, SimulationError
from repro.lte import consts
from repro.lte import mcs
from repro.lte.channel import UplinkChannel, UplinkChannelBank
from repro.lte.enb import ENodeB
from repro.lte.harq import HarqConfig, HarqPool
from repro.lte.traffic import FullBufferTraffic, TrafficSource, UeQueue
from repro.lte.phy import GrantOutcome
from repro.lte.resources import SubframeSchedule
from repro.perf.stopwatch import PhaseTimer
from repro.dynamics.timeline import (
    AddTerminalOp,
    EnvironmentTimeline,
    RemoveTerminalOp,
    RetuneOp,
)
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.spectrum.activity import (
    ActivityProcess,
    BernoulliActivity,
    DynamicIndependentActivity,
    IndependentActivity,
    JointActivityModel,
    MarkovOnOffActivity,
)
from repro.topology.graph import InterferenceTopology

__all__ = ["CellSimulation"]


class CellSimulation:
    """Simulate one LTE cell under hidden-terminal interference."""

    def __init__(
        self,
        topology: InterferenceTopology,
        mean_snr_db: Mapping[int, float],
        scheduler: UplinkScheduler,
        config: SimulationConfig = SimulationConfig(),
        activity_processes: Optional[List[ActivityProcess]] = None,
        activity_model: Optional[JointActivityModel] = None,
        traffic_sources: Optional[Mapping[int, TrafficSource]] = None,
        silencer: Optional[Callable[[FrozenSet[int]], Set[int]]] = None,
        seed: Optional[int] = None,
        record_series: bool = False,
        fast_path: bool = True,
        phase_timer: Optional[PhaseTimer] = None,
        timeline: Optional[EnvironmentTimeline] = None,
    ) -> None:
        if set(mean_snr_db) != set(range(topology.num_ues)):
            raise ConfigurationError(
                "mean_snr_db must cover exactly the topology's UEs"
            )
        self.topology = topology
        self.config = config
        self.scheduler = scheduler
        self.record_series = record_series
        self._fast = bool(fast_path)
        self._phase_timer = phase_timer
        self._rng = np.random.default_rng(seed)
        self._timeline_runtime = None
        self._subframe_index = 0
        structural_timeline = False
        if timeline is not None:
            for event in timeline.events:
                ue = getattr(event, "ue", None)
                if ue is not None and not 0 <= ue < topology.num_ues:
                    raise ConfigurationError(
                        f"timeline event references unknown UE {ue}: {event}"
                    )
            structural_timeline = timeline.has_structural_events
            self._timeline_runtime = timeline.runtime(topology)

        if activity_model is not None and activity_processes is not None:
            raise ConfigurationError(
                "pass either activity_processes or activity_model, not both"
            )
        if structural_timeline and (
            activity_model is not None
            or activity_processes is not None
            or silencer is not None
        ):
            # Arrivals/departures/drift must flow into the activity substrate
            # and the edge-based silencer; arbitrary user substrates cannot
            # be mutated consistently across both engine paths.
            raise ConfigurationError(
                "a timeline with hidden-terminal events requires the "
                "default activity model and silencer"
            )
        if activity_model is not None:
            self._activity = activity_model
        elif activity_processes is not None:
            self._activity = IndependentActivity(activity_processes)
        elif timeline is not None:
            # Per-subframe stepping (no block prefetch) so mid-run arrivals,
            # departures and re-tunes take effect immediately — and
            # identically — on the fast and legacy paths.
            self._activity = DynamicIndependentActivity(self._build_activity())
        else:
            self._activity = IndependentActivity(self._build_activity())
        if self._activity.num_terminals != topology.num_terminals:
            raise ConfigurationError(
                f"activity model covers {self._activity.num_terminals} "
                f"terminals, topology has {topology.num_terminals}"
            )

        #: Maps the active-terminal set to the silenced-UE set.  The default
        #: is the binary edge model of the blueprint; an energy-aggregation
        #: silencer (e.g. Scenario.power_silencer()) can replace it to model
        #: sub-threshold interferers that jointly cross the ED threshold.
        self._silencer = silencer
        self._ue_edges = topology.ue_edge_map()
        #: (num_terminals, num_ues) boolean silencing matrix for the fast
        #: path: silenced = any(edge row of an active terminal).
        self._edge_matrix = topology.edge_matrix()
        self._bank: Optional[UplinkChannelBank] = None
        if self._fast:
            # The bank spawns one child generator per UE in UE order — the
            # same parent-stream consumption as the per-object loop below.
            self._bank = UplinkChannelBank(
                mean_rx_power_dbm=[
                    consts.NOISE_FLOOR_10MHZ_DBM + mean_snr_db[ue]
                    for ue in range(topology.num_ues)
                ],
                num_rbs=config.num_rbs,
                doppler_coherence=config.doppler_coherence,
                rng=self._rng,
            )
            self._channels = {
                ue: self._bank.view(ue) for ue in range(topology.num_ues)
            }
        else:
            self._channels = {}
            for ue in range(topology.num_ues):
                child = np.random.default_rng(self._rng.integers(0, 2**63))
                self._channels[ue] = UplinkChannel(
                    mean_rx_power_dbm=consts.NOISE_FLOOR_10MHZ_DBM
                    + mean_snr_db[ue],
                    num_rbs=config.num_rbs,
                    doppler_coherence=config.doppler_coherence,
                    rng=child,
                )

        self.enb = ENodeB(
            num_antennas=config.num_antennas,
            num_rbs=config.num_rbs,
            enb_busy_probability=config.enb_busy_probability,
            dl_subframes_per_txop=config.dl_subframes_per_txop,
            ul_subframes_per_txop=config.ul_subframes_per_txop,
            rate_scale=float(config.rb_group_size),
            receiver=config.receiver,
            rng=np.random.default_rng(self._rng.integers(0, 2**63)),
        )
        self.tracker = PfAverageTracker(
            range(topology.num_ues),
            alpha=config.pf_alpha,
            initial_bps=config.pf_initial_bps,
        )
        # Ring buffer of past SINR snapshots for CSI feedback delay: per-UE
        # dicts on the legacy path, whole (U, R) matrices on the fast path.
        self._csi_history: Deque[Union[Dict[int, np.ndarray], np.ndarray]] = (
            deque(maxlen=config.csi_delay_subframes + 1)
        )
        self._harq: Optional[HarqPool] = (
            HarqPool(
                topology.num_ues,
                HarqConfig(max_transmissions=config.harq_max_transmissions),
            )
            if config.harq_enabled
            else None
        )
        # Full buffer unless per-UE traffic sources are supplied (paper
        # footnote 1's finite-buffer extension).
        self._queues: Dict[int, UeQueue] = {}
        for ue in range(topology.num_ues):
            source = (
                traffic_sources.get(ue, FullBufferTraffic())
                if traffic_sources is not None
                else FullBufferTraffic()
            )
            self._queues[ue] = UeQueue(source)
        #: Clients currently attached (UeJoin/UeLeave gate traffic; the UE
        #: id space itself is fixed for the run).
        self._active_ues: Set[int] = set(range(topology.num_ues))

    # -- internals ---------------------------------------------------------

    def set_topology(self, topology: InterferenceTopology) -> None:
        """Swap in a new interference topology mid-run.

        The topology class is frozen, so a change is always a *new*
        instance; re-deriving the UE edge map and the fast path's silencing
        matrix here is what keeps the memoized caches from going stale.
        """
        if topology.num_ues != self.topology.num_ues:
            raise ConfigurationError(
                f"cannot change the UE population mid-run: "
                f"{self.topology.num_ues} -> {topology.num_ues}"
            )
        self.topology = topology
        self._ue_edges = topology.ue_edge_map()
        self._edge_matrix = topology.edge_matrix()

    def _apply_timeline(self, t: int) -> None:
        update = self._timeline_runtime.step(t)
        if update is None:
            return
        for op in update.activity_ops:
            if isinstance(op, AddTerminalOp):
                self._activity.add_process(op.process)
            elif isinstance(op, RemoveTerminalOp):
                self._activity.remove_process(op.index)
            elif isinstance(op, RetuneOp):
                self._activity.retune(op.index, op.q)
            else:  # pragma: no cover - op set is closed
                raise SimulationError(f"unknown activity op {op!r}")
        if update.topology is not None:
            self.set_topology(update.topology)
            if self._activity.num_terminals != update.topology.num_terminals:
                raise SimulationError(
                    "activity model and topology disagree after timeline "
                    f"update at subframe {t}"
                )
        for ue in sorted(update.snr_delta_db):
            delta = update.snr_delta_db[ue]
            if self._fast:
                self._bank.adjust_mean_snr_db(ue, delta)
            else:
                self._channels[ue].adjust_mean_snr_db(delta)
        for ue in update.joins:
            self._active_ues.add(ue)
        for ue in update.leaves:
            self._active_ues.discard(ue)

    def _build_activity(self) -> List[ActivityProcess]:
        processes: List[ActivityProcess] = []
        for q in self.topology.q:
            child = np.random.default_rng(self._rng.integers(0, 2**63))
            if self.config.activity_kind == "markov":
                processes.append(
                    MarkovOnOffActivity(
                        q, self.config.mean_busy_subframes, rng=child
                    )
                )
            else:
                processes.append(BernoulliActivity(q, rng=child))
        return processes

    def _step_interference(self) -> Set[int]:
        """Advance activity one subframe; return the silenced UE set.

        Called exactly once per subframe (idle, DL and UL alike), so it is
        also where the environment timeline advances: events land at the
        subframe boundary, before the medium is sampled.
        """
        if self._timeline_runtime is not None:
            self._apply_timeline(self._subframe_index)
        self._subframe_index += 1
        timer = self._phase_timer
        if timer is None:
            return self._step_interference_impl()
        start = perf_counter()
        silenced = self._step_interference_impl()
        timer.add("activity", perf_counter() - start)
        return silenced

    def _step_interference_impl(self) -> Set[int]:
        if self._fast:
            active_vec = self._activity.step_vector()
            if self._silencer is not None:
                active = frozenset(
                    int(k) for k in np.flatnonzero(active_vec)
                )
                return set(self._silencer(active))
            if not active_vec.any():
                return set()
            hit = self._edge_matrix[active_vec].any(axis=0)
            return {int(ue) for ue in np.flatnonzero(hit)}
        active = self._activity.step()
        if self._silencer is not None:
            return set(self._silencer(active))
        return {
            ue
            for ue, edges in self._ue_edges.items()
            if edges & active
        }

    def _step_channels(self) -> None:
        timer = self._phase_timer
        start = perf_counter() if timer is not None else 0.0
        if self._fast:
            self._bank.step()
            self._csi_history.append(self._bank.sinr_db.copy())
        else:
            for channel in self._channels.values():
                channel.step()
            self._csi_history.append(
                {ue: ch.sinr_db.copy() for ue, ch in self._channels.items()}
            )
        if timer is not None:
            timer.add("channels", perf_counter() - start)

    def _scheduler_csi(self) -> Dict[int, np.ndarray]:
        """The channel state the scheduler is allowed to see (possibly
        stale by ``csi_delay_subframes``)."""
        if not self._csi_history:
            return {ue: ch.sinr_db for ue, ch in self._channels.items()}
        snapshot = self._csi_history[0]
        if isinstance(snapshot, np.ndarray):
            return {ue: snapshot[ue] for ue in range(snapshot.shape[0])}
        return snapshot

    def _step_arrivals(self) -> None:
        for queue in self._queues.values():
            queue.step_arrivals()

    def _context(self, subframe: int, silenced: Set[int]) -> SchedulingContext:
        backlogged = tuple(
            ue
            for ue in range(self.topology.num_ues)
            if ue in self._active_ues and self._queues[ue].backlogged
        )
        return SchedulingContext(
            subframe=subframe,
            num_rbs=self.config.num_rbs,
            num_antennas=self.config.num_antennas,
            ue_ids=backlogged,
            sinr_db=self._scheduler_csi(),
            avg_throughput_bps=self.tracker.averages(),
            max_distinct_ues=self.config.max_distinct_ues,
            clear_ues=frozenset(
                ue for ue in range(self.topology.num_ues) if ue not in silenced
            ),
            rate_scale=float(self.config.rb_group_size),
            link_margin_db=self.config.link_margin_db,
            vectorized=self._fast,
        )

    # -- main loop -----------------------------------------------------------

    def _apply_harq(
        self,
        schedule: SubframeSchedule,
        reception,
        transmitting: Set[int],
        raw_delivered: Dict[int, float],
    ) -> Dict[int, float]:
        """Resolve HARQ retransmissions and register new fades.

        A transmitting UE with a pending soft buffer spends its first
        usable grant of the subframe on the retransmission: a DECODED grant
        gives full energy (and its new-data bits are forfeited), a FADED
        one still contributes soft energy.  Fresh FADED grants enter the
        pool; collided grants produce no usable soft bits and are dropped.
        """
        from repro.lte.phy import GrantOutcome

        delivered = dict(raw_delivered)
        retx_grant: Dict[int, tuple] = {}
        for rb in schedule.allocated_rbs():
            rb_reception = reception.rb_receptions[rb]
            for grant in schedule.rb(rb):
                ue = grant.ue_id
                outcome = rb_reception.outcomes[ue]
                if (
                    ue not in retx_grant
                    and self._harq.pending(ue) is not None
                    and outcome in (GrantOutcome.DECODED, GrantOutcome.FADED)
                ):
                    retx_grant[ue] = (rb, grant, outcome)

        consumed = set()
        for ue, (rb, grant, outcome) in retx_grant.items():
            sinr_db = float(self._channels[ue].sinr_db[rb])
            energy = 10.0 ** (sinr_db / 10.0)
            recovered = self._harq.retransmission_result(ue, energy)
            if outcome is GrantOutcome.DECODED:
                # The grant carried the retransmission, not new data.
                delivered[ue] = delivered.get(ue, 0.0) - grant.rate_bps * (
                    consts.SUBFRAME_DURATION_S
                )
                if delivered.get(ue, 0.0) <= 1e-12:
                    delivered.pop(ue, None)
            if recovered is not None:
                delivered[ue] = delivered.get(ue, 0.0) + recovered
            consumed.add((ue, rb))

        for rb in schedule.allocated_rbs():
            rb_reception = reception.rb_receptions[rb]
            for grant in schedule.rb(rb):
                ue = grant.ue_id
                if (ue, rb) in consumed:
                    continue
                if rb_reception.outcomes[ue] is GrantOutcome.FADED:
                    sinr_db = float(self._channels[ue].sinr_db[rb])
                    per_rb_rate = grant.rate_bps / max(
                        self.config.rb_group_size, 1
                    )
                    try:
                        required_db = mcs.min_sinr_db_for_rate(per_rb_rate)
                    except ValueError:
                        continue
                    self._harq.first_attempt_failed(
                        ue,
                        bits=grant.rate_bps * consts.SUBFRAME_DURATION_S,
                        required_sinr_linear=10.0 ** (required_db / 10.0),
                        attempt_sinr_linear=10.0 ** (sinr_db / 10.0),
                    )
        for ue in set(schedule.scheduled_ues()) - transmitting:
            if self._harq.pending(ue) is not None:
                self._harq.retransmission_blocked(ue)
        return delivered

    def run(self) -> SimulationResult:
        """Run the configured number of subframes; return aggregated metrics."""
        result = SimulationResult(scheduler_name=self.scheduler.name)
        result.delivered_bits_by_ue = {
            ue: 0.0 for ue in range(self.topology.num_ues)
        }
        reschedule_each = getattr(
            self.scheduler, "reschedule_every_subframe", False
        )

        t = 0
        total = self.config.num_subframes
        while t < total:
            txop = self.enb.try_acquire_txop(t)
            if txop is None:
                # eNB backed off: the medium still evolves.
                self._step_interference()
                self._step_channels()
                self._step_arrivals()
                result.idle_subframes += 1
                t += 1
                continue

            # DL part of the TxOP (grants go out; medium evolves).
            dl = min(txop.dl_subframes, total - t)
            for _ in range(dl):
                self._step_interference()
                self._step_channels()
                self._step_arrivals()
                result.dl_subframes += 1
                t += 1

            schedule: Optional[SubframeSchedule] = None
            for _ in range(txop.ul_subframes):
                if t >= total:
                    break
                silenced = self._step_interference()
                self._step_channels()
                self._step_arrivals()
                if schedule is None or reschedule_each:
                    timer = self._phase_timer
                    start = perf_counter() if timer is not None else 0.0
                    context = self._context(t, silenced)
                    schedule = self.scheduler.schedule(context)
                    if timer is not None:
                        timer.add("schedule", perf_counter() - start)
                self._run_ul_subframe(t, schedule, silenced, result)
                t += 1

        result.num_subframes = t
        return result

    def _run_ul_subframe(
        self,
        subframe: int,
        schedule: SubframeSchedule,
        silenced: Set[int],
        result: SimulationResult,
    ) -> None:
        scheduled = set(schedule.scheduled_ues())
        transmitting = sorted(scheduled - silenced)
        if self._fast:
            # Hand the eNB views of the bank's current SINR rows directly;
            # the receiver only indexes them per RB, no copies needed.
            sinr_matrix = self._bank.sinr_db
            sinr_by_ue_rb: Mapping[int, "np.ndarray | Dict[int, float]"] = {
                ue: sinr_matrix[ue] for ue in scheduled
            }
        else:
            sinr_by_ue_rb = {
                ue: {
                    rb: float(self._channels[ue].sinr_db[rb])
                    for rb in range(self.config.num_rbs)
                }
                for ue in scheduled
            }
        timer = self._phase_timer
        start = perf_counter() if timer is not None else 0.0
        receive = (
            self.enb.receive_subframe_fast
            if self._fast
            else self.enb.receive_subframe
        )
        reception = receive(
            subframe=subframe,
            schedule=schedule,
            transmitting_ues=transmitting,
            sinr_db_by_ue_rb=sinr_by_ue_rb,
        )
        if timer is not None:
            timer.add("receive", perf_counter() - start)

        # Account grant outcomes, RB utilization, and delivered bits in one
        # pass over the receptions (identity checks, no enum hashing).
        decoded = blocked = collided = faded = utilized = 0
        raw_delivered: Dict[int, float] = {}
        for rb_reception in reception.rb_receptions.values():
            rb_decoded = False
            for outcome in rb_reception.outcomes.values():
                if outcome is GrantOutcome.DECODED:
                    decoded += 1
                    rb_decoded = True
                elif outcome is GrantOutcome.BLOCKED:
                    blocked += 1
                elif outcome is GrantOutcome.COLLIDED:
                    collided += 1
                else:
                    faded += 1
            if rb_decoded:
                utilized += 1
            for ue, bits in rb_reception.delivered_bits.items():
                raw_delivered[ue] = raw_delivered.get(ue, 0.0) + bits
        result.grants_issued += schedule.total_grants
        result.grants_decoded += decoded
        result.grants_blocked += blocked
        result.grants_collided += collided
        result.grants_faded += faded
        if self._harq is not None:
            raw_delivered = self._apply_harq(
                schedule, reception, set(transmitting), raw_delivered
            )
        # Bits are scaled by the allocation-unit width already (grant rates
        # carry rate_scale); delivered_bits uses the grant rate, capped by
        # what the client's buffer actually held.
        delivered = {
            ue: self._queues[ue].drain(bits)
            for ue, bits in raw_delivered.items()
        }
        for ue, bits in delivered.items():
            result.delivered_bits_by_ue[ue] += bits

        allocated = schedule.allocated_rbs()
        result.rbs_allocated += len(allocated)
        result.rbs_utilized += utilized
        result.ul_subframes += 1
        if allocated and utilized == len(allocated):
            result.fully_utilized_subframes += 1
        if self.record_series and allocated:
            result.utilization_series.append(utilized / len(allocated))

        # PF update with delivered rates (bits per subframe -> bps).
        served_bps = {
            ue: bits / consts.SUBFRAME_DURATION_S for ue, bits in delivered.items()
        }
        self.tracker.update(served_bps)

        if self._harq is not None:
            result.harq_retransmissions = self._harq.retransmissions
            result.harq_blocks_recovered = self._harq.blocks_delivered
            result.harq_blocks_dropped = self._harq.blocks_dropped

        # Feed the access observation back to adaptive schedulers.
        observe = getattr(self.scheduler, "observe", None)
        if observe is not None:
            observe(classify_subframe(schedule, reception))
