"""Experiment runner: matched-conditions scheduler comparisons and sweeps.

Fair comparison requires every scheduler to face the *same* interference
realization and the same fading sample paths.  The runner achieves this by
re-seeding the simulation identically for each scheduler (activity, fading
and eNB-CCA randomness all derive from the one seed).

Every entry point accepts ``n_jobs``: each (scheduler, seed, sweep-point)
run is an independent, fully seeded work item, so the runner can fan them
out over a :class:`~concurrent.futures.ProcessPoolExecutor` without
touching the matched-seed contract — a parallel run returns results
identical to ``n_jobs=1``.  Work items that cannot be pickled (e.g. lambda
scheduler factories) make the runner fall back to serial execution with a
warning.
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.scheduling.base import UplinkScheduler
from repro.errors import ConfigurationError
from repro.resilience.supervisor import SupervisorConfig, supervised_map
from repro.sim.config import SimulationConfig
from repro.sim.engine import CellSimulation
from repro.sim.results import SimulationResult
from repro.topology.graph import InterferenceTopology

__all__ = [
    "SchedulerFactory",
    "SweepPoint",
    "ReplicatedMetric",
    "map_jobs",
    "run_comparison",
    "run_replications",
    "run_sweep",
    "gain_over",
]

#: A factory is called once per run so stateful schedulers start fresh.
SchedulerFactory = Callable[[], UplinkScheduler]

#: One fully self-contained simulation run, picklable when its members are:
#: (topology, mean_snr_db, factory, config, seed, record_series,
#:  activity_model_factory, timeline).
_WorkItem = Tuple[
    InterferenceTopology,
    Mapping[int, float],
    SchedulerFactory,
    SimulationConfig,
    Optional[int],
    bool,
    Optional[Callable[[np.random.Generator], object]],
    Optional[object],
]


def _run_single(work: _WorkItem) -> SimulationResult:
    """Execute one work item; module-level so it pickles into workers."""
    (
        topology,
        mean_snr_db,
        factory,
        config,
        seed,
        record_series,
        activity_model_factory,
        timeline,
    ) = work
    model = (
        activity_model_factory(np.random.default_rng(seed))
        if activity_model_factory is not None
        else None
    )
    simulation = CellSimulation(
        topology=topology,
        mean_snr_db=mean_snr_db,
        scheduler=factory(),
        config=config,
        activity_model=model,
        seed=seed,
        record_series=record_series,
        timeline=timeline,
    )
    return simulation.run()


def _resolve_n_jobs(n_jobs: Optional[int]) -> int:
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1 or -1: {n_jobs}")
    return int(n_jobs)


def map_jobs(
    fn,
    items: Sequence,
    n_jobs: Optional[int],
    supervisor: Optional["SupervisorConfig"] = None,
) -> List:
    """Map ``fn`` over independent work items, serially or in a process
    pool, preserving order.

    Each item must be self-contained (carry its own seed), so execution
    order cannot affect any result; parallel output is identical to
    serial.  Items that cannot pickle trigger a serial fallback with a
    ``RuntimeWarning`` (probing the first item only — per-item pickling
    errors in a heterogeneous batch surface through the supervisor as
    that item's failure).  The spec layer (:mod:`repro.experiments`)
    reuses this with plain spec-dict items, which always pickle.

    Execution is supervised (:func:`repro.resilience.supervised_map`).
    Without a ``supervisor`` config the behaviour is strict — no
    retries, no timeout, the first failure re-raises — so existing
    callers see the historical semantics.  With one, failed items come
    back as :class:`~repro.resilience.FailedItem` records in the
    returned list instead of aborting the batch.
    """
    jobs = min(_resolve_n_jobs(n_jobs), len(items))
    if jobs > 1 and items:
        try:
            pickle.dumps(items[0])
        except Exception as error:  # noqa: BLE001 - any pickling failure
            warnings.warn(
                "work items are not picklable (typically lambda scheduler "
                "factories or closures); falling back to serial execution "
                f"(pickle said: {error})",
                RuntimeWarning,
                stacklevel=3,
            )
            jobs = 1
    outcome = supervised_map(
        fn, items, n_jobs=jobs, config=supervisor,
        fail_fast=supervisor is None,
    )
    return outcome.results


def _run_work_items(
    items: Sequence[_WorkItem], n_jobs: Optional[int]
) -> List[SimulationResult]:
    return map_jobs(_run_single, items, n_jobs)


def run_comparison(
    topology: InterferenceTopology,
    mean_snr_db: Mapping[int, float],
    scheduler_factories: Mapping[str, SchedulerFactory],
    config: Optional[SimulationConfig] = None,
    seed: Optional[int] = 0,
    record_series: bool = False,
    activity_model_factory: Optional[Callable[[np.random.Generator], object]] = None,
    n_jobs: Optional[int] = 1,
    timeline: Optional[object] = None,
) -> Dict[str, SimulationResult]:
    """Run every scheduler under identical conditions; return results by name.

    ``activity_model_factory(rng)`` may supply a joint hidden-terminal
    activity model (e.g. contention-coupled); it is rebuilt from the same
    seed for every scheduler so all face one interference law.

    ``timeline`` (an :class:`~repro.dynamics.timeline.EnvironmentTimeline`)
    scripts mid-run environment churn; every scheduler faces the same
    events (each run binds its own fresh timeline runtime).

    ``n_jobs`` fans the schedulers out over worker processes (``-1`` for
    all cores); results are identical to the serial run.
    """
    if not scheduler_factories:
        raise ConfigurationError("no schedulers to compare")
    if config is None:
        config = SimulationConfig()
    names = list(scheduler_factories)
    items: List[_WorkItem] = [
        (
            topology,
            mean_snr_db,
            scheduler_factories[name],
            config,
            seed,
            record_series,
            activity_model_factory,
            timeline,
        )
        for name in names
    ]
    results = _run_work_items(items, n_jobs)
    return dict(zip(names, results))


@dataclass
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: object
    results: Dict[str, SimulationResult]


def run_sweep(
    parameter_values: Sequence[object],
    build_case: Callable[[object], tuple],
    scheduler_factories_for: Callable[
        [object, InterferenceTopology], Mapping[str, SchedulerFactory]
    ],
    config_for: Callable[[object], SimulationConfig],
    seed: Optional[int] = 0,
    n_jobs: Optional[int] = 1,
) -> List[SweepPoint]:
    """Sweep a parameter; at each value build (topology, snrs), run all
    schedulers, and collect the results.

    ``build_case(value) -> (topology, mean_snr_db)``.  Cases and factories
    are built in the parent process; with ``n_jobs > 1`` the individual
    (sweep point, scheduler) runs fan out over workers in one flat batch,
    so parallelism helps even when one end of the sweep is much heavier
    than the other.
    """
    labelled: List[Tuple[int, str]] = []
    items: List[_WorkItem] = []
    points: List[SweepPoint] = []
    for index, value in enumerate(parameter_values):
        topology, snrs = build_case(value)
        factories = scheduler_factories_for(value, topology)
        config = config_for(value)
        points.append(SweepPoint(parameter=value, results={}))
        for name, factory in factories.items():
            labelled.append((index, name))
            items.append(
                (topology, snrs, factory, config, seed, False, None, None)
            )
    results = _run_work_items(items, n_jobs)
    for (index, name), result in zip(labelled, results):
        points[index].results[name] = result
    return points


@dataclass
class ReplicatedMetric:
    """Mean and standard deviation of one metric across seeds."""

    mean: float
    std: float
    samples: int

    def __repr__(self) -> str:  # pragma: no cover - display aid
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.samples})"


def run_replications(
    topology: InterferenceTopology,
    mean_snr_db: Mapping[int, float],
    scheduler_factories: Mapping[str, SchedulerFactory],
    config: Optional[SimulationConfig] = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metrics: Sequence[str] = ("throughput_mbps", "rb_utilization"),
    activity_model_factory: Optional[Callable[[np.random.Generator], object]] = None,
    n_jobs: Optional[int] = 1,
) -> Dict[str, Dict[str, ReplicatedMetric]]:
    """Repeat a comparison over several seeds; return mean ± std per metric.

    Single-seed comparisons are matched (every scheduler faces the same
    interference), but the headline gains still depend on the realization;
    replications quantify that spread for publication-grade claims.

    ``n_jobs`` fans the full (scheduler × seed) grid out over worker
    processes; every run keeps its assigned seed, so the matched-seed
    pairing and the aggregate statistics are identical to ``n_jobs=1``.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if config is None:
        config = SimulationConfig()
    names = list(scheduler_factories)
    labelled: List[Tuple[str, int]] = []
    items: List[_WorkItem] = []
    for seed in seeds:
        for name in names:
            labelled.append((name, seed))
            items.append(
                (
                    topology,
                    mean_snr_db,
                    scheduler_factories[name],
                    config,
                    seed,
                    False,
                    activity_model_factory,
                    None,
                )
            )
    results = _run_work_items(items, n_jobs)

    samples: Dict[str, Dict[str, List[float]]] = {
        name: {metric: [] for metric in metrics} for name in names
    }
    for (name, _seed), result in zip(labelled, results):
        summary = result.summary()
        for metric in metrics:
            samples[name][metric].append(summary[metric])
    report: Dict[str, Dict[str, ReplicatedMetric]] = {}
    for name, by_metric in samples.items():
        report[name] = {}
        for metric, values in by_metric.items():
            array = np.asarray(values, dtype=float)
            report[name][metric] = ReplicatedMetric(
                mean=float(array.mean()),
                std=float(array.std(ddof=1)) if len(array) > 1 else 0.0,
                samples=len(array),
            )
    return report


def gain_over(
    results: Mapping[str, SimulationResult],
    candidate: str,
    baseline: str,
    metric: str = "throughput_mbps",
) -> float:
    """Ratio of a summary metric between two named results."""
    base = results[baseline].summary()[metric]
    cand = results[candidate].summary()[metric]
    if base == 0.0:
        return float("inf") if cand > 0 else 1.0
    return cand / base
