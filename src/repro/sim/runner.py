"""Experiment runner: matched-conditions scheduler comparisons and sweeps.

Fair comparison requires every scheduler to face the *same* interference
realization and the same fading sample paths.  The runner achieves this by
re-seeding the simulation identically for each scheduler (activity, fading
and eNB-CCA randomness all derive from the one seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.scheduling.base import UplinkScheduler
from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.engine import CellSimulation
from repro.sim.results import SimulationResult
from repro.topology.graph import InterferenceTopology

__all__ = ["SchedulerFactory", "SweepPoint", "ReplicatedMetric", "run_comparison", "run_replications", "run_sweep", "gain_over"]

#: A factory is called once per run so stateful schedulers start fresh.
SchedulerFactory = Callable[[], UplinkScheduler]


def run_comparison(
    topology: InterferenceTopology,
    mean_snr_db: Mapping[int, float],
    scheduler_factories: Mapping[str, SchedulerFactory],
    config: SimulationConfig = SimulationConfig(),
    seed: Optional[int] = 0,
    record_series: bool = False,
    activity_model_factory: Optional[Callable[[np.random.Generator], object]] = None,
) -> Dict[str, SimulationResult]:
    """Run every scheduler under identical conditions; return results by name.

    ``activity_model_factory(rng)`` may supply a joint hidden-terminal
    activity model (e.g. contention-coupled); it is rebuilt from the same
    seed for every scheduler so all face one interference law.
    """
    if not scheduler_factories:
        raise ConfigurationError("no schedulers to compare")
    results: Dict[str, SimulationResult] = {}
    for name, factory in scheduler_factories.items():
        model = (
            activity_model_factory(np.random.default_rng(seed))
            if activity_model_factory is not None
            else None
        )
        simulation = CellSimulation(
            topology=topology,
            mean_snr_db=mean_snr_db,
            scheduler=factory(),
            config=config,
            activity_model=model,
            seed=seed,
            record_series=record_series,
        )
        results[name] = simulation.run()
    return results


@dataclass
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: object
    results: Dict[str, SimulationResult]


def run_sweep(
    parameter_values: Sequence[object],
    build_case: Callable[[object], tuple],
    scheduler_factories_for: Callable[
        [object, InterferenceTopology], Mapping[str, SchedulerFactory]
    ],
    config_for: Callable[[object], SimulationConfig],
    seed: Optional[int] = 0,
) -> List[SweepPoint]:
    """Sweep a parameter; at each value build (topology, snrs), run all
    schedulers, and collect the results.

    ``build_case(value) -> (topology, mean_snr_db)``.
    """
    points: List[SweepPoint] = []
    for value in parameter_values:
        topology, snrs = build_case(value)
        factories = scheduler_factories_for(value, topology)
        results = run_comparison(
            topology, snrs, factories, config_for(value), seed=seed
        )
        points.append(SweepPoint(parameter=value, results=results))
    return points


@dataclass
class ReplicatedMetric:
    """Mean and standard deviation of one metric across seeds."""

    mean: float
    std: float
    samples: int

    def __repr__(self) -> str:  # pragma: no cover - display aid
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.samples})"


def run_replications(
    topology: InterferenceTopology,
    mean_snr_db: Mapping[int, float],
    scheduler_factories: Mapping[str, SchedulerFactory],
    config: SimulationConfig = SimulationConfig(),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metrics: Sequence[str] = ("throughput_mbps", "rb_utilization"),
    activity_model_factory: Optional[Callable[[np.random.Generator], object]] = None,
) -> Dict[str, Dict[str, ReplicatedMetric]]:
    """Repeat a comparison over several seeds; return mean ± std per metric.

    Single-seed comparisons are matched (every scheduler faces the same
    interference), but the headline gains still depend on the realization;
    replications quantify that spread for publication-grade claims.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    samples: Dict[str, Dict[str, List[float]]] = {
        name: {metric: [] for metric in metrics} for name in scheduler_factories
    }
    for seed in seeds:
        results = run_comparison(
            topology,
            mean_snr_db,
            scheduler_factories,
            config,
            seed=seed,
            activity_model_factory=activity_model_factory,
        )
        for name, result in results.items():
            summary = result.summary()
            for metric in metrics:
                samples[name][metric].append(summary[metric])
    report: Dict[str, Dict[str, ReplicatedMetric]] = {}
    for name, by_metric in samples.items():
        report[name] = {}
        for metric, values in by_metric.items():
            array = np.asarray(values, dtype=float)
            report[name][metric] = ReplicatedMetric(
                mean=float(array.mean()),
                std=float(array.std(ddof=1)) if len(array) > 1 else 0.0,
                samples=len(array),
            )
    return report


def gain_over(
    results: Mapping[str, SimulationResult],
    candidate: str,
    baseline: str,
    metric: str = "throughput_mbps",
) -> float:
    """Ratio of a summary metric between two named results."""
    base = results[baseline].summary()[metric]
    cand = results[candidate].summary()[metric]
    if base == 0.0:
        return float("inf") if cand > 0 else 1.0
    return cand / base
