"""Downlink simulation (Section 3.7): collisions instead of blocked grants.

On the DL the eNB transmits inside its TxOPs without per-client CCA; a
hidden terminal attached to a client corrupts that client's *reception*
during the subframes it is active.  Over-scheduling transmissions is
impossible, but the blueprint enables access-aware DL scheduling (Eqn. 5):
steer airtime toward clients whose local air is statistically clean.

This engine mirrors :class:`~repro.sim.engine.CellSimulation` with the DL
semantics: every scheduled RB is transmitted; an RB addressed to a jammed
client is lost (a collision at the client), all others deliver.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

import numpy as np

from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.downlink import downlink_delivered_bits
from repro.core.scheduling.fairness import PfAverageTracker
from repro.core.scheduling.types import SchedulingContext
from repro.errors import ConfigurationError
from repro.lte import consts
from repro.lte.channel import UplinkChannel
from repro.lte.resources import SubframeSchedule
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.spectrum.activity import (
    ActivityProcess,
    BernoulliActivity,
    IndependentActivity,
    JointActivityModel,
    MarkovOnOffActivity,
)
from repro.topology.graph import InterferenceTopology

__all__ = ["DownlinkSimulation"]


class DownlinkSimulation:
    """Simulate the downlink of one LTE cell under hidden-terminal jamming.

    The whole TxOP is downlink here (``dl_subframes_per_txop`` +
    ``ul_subframes_per_txop`` subframes of DL payload after the eNB's CCA);
    the scheduler under test is consulted once per TxOP.
    """

    def __init__(
        self,
        topology: InterferenceTopology,
        mean_snr_db: Mapping[int, float],
        scheduler: UplinkScheduler,
        config: Optional[SimulationConfig] = None,
        activity_model: Optional[JointActivityModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        if set(mean_snr_db) != set(range(topology.num_ues)):
            raise ConfigurationError(
                "mean_snr_db must cover exactly the topology's UEs"
            )
        self.topology = topology
        self.config = config if config is not None else SimulationConfig()
        self.scheduler = scheduler
        self._rng = np.random.default_rng(seed)

        if activity_model is not None:
            self._activity = activity_model
        else:
            processes: List[ActivityProcess] = []
            for q in topology.q:
                child = np.random.default_rng(self._rng.integers(0, 2**63))
                if config.activity_kind == "markov":
                    processes.append(
                        MarkovOnOffActivity(
                            q, config.mean_busy_subframes, rng=child
                        )
                    )
                else:
                    processes.append(BernoulliActivity(q, rng=child))
            self._activity = IndependentActivity(processes)
        if self._activity.num_terminals != topology.num_terminals:
            raise ConfigurationError(
                f"activity model covers {self._activity.num_terminals} "
                f"terminals, topology has {topology.num_terminals}"
            )

        self._ue_edges = topology.ue_edge_map()
        self._channels: Dict[int, UplinkChannel] = {}
        for ue in range(topology.num_ues):
            child = np.random.default_rng(self._rng.integers(0, 2**63))
            self._channels[ue] = UplinkChannel(
                mean_rx_power_dbm=consts.NOISE_FLOOR_10MHZ_DBM + mean_snr_db[ue],
                num_rbs=config.num_rbs,
                doppler_coherence=config.doppler_coherence,
                rng=child,
            )
        self.tracker = PfAverageTracker(
            range(topology.num_ues),
            alpha=config.pf_alpha,
            initial_bps=config.pf_initial_bps,
        )
        self._subframes_per_txop = (
            config.dl_subframes_per_txop + config.ul_subframes_per_txop
        )

    def _jammed_ues(self) -> Set[int]:
        active = self._activity.step()
        return {ue for ue, edges in self._ue_edges.items() if edges & active}

    def _context(self, subframe: int) -> SchedulingContext:
        return SchedulingContext(
            subframe=subframe,
            num_rbs=self.config.num_rbs,
            num_antennas=self.config.num_antennas,
            ue_ids=tuple(range(self.topology.num_ues)),
            sinr_db={ue: ch.sinr_db for ue, ch in self._channels.items()},
            avg_throughput_bps=self.tracker.averages(),
            max_distinct_ues=self.config.max_distinct_ues,
            rate_scale=float(self.config.rb_group_size),
            link_margin_db=self.config.link_margin_db,
        )

    def run(self) -> SimulationResult:
        result = SimulationResult(scheduler_name=self.scheduler.name)
        result.delivered_bits_by_ue = {
            ue: 0.0 for ue in range(self.topology.num_ues)
        }
        t = 0
        total = self.config.num_subframes
        while t < total:
            if self._rng.random() < self.config.enb_busy_probability:
                self._jammed_ues()
                for channel in self._channels.values():
                    channel.step()
                result.idle_subframes += 1
                t += 1
                continue

            schedule: Optional[SubframeSchedule] = None
            for _ in range(self._subframes_per_txop):
                if t >= total:
                    break
                jammed = self._jammed_ues()
                for channel in self._channels.values():
                    channel.step()
                if schedule is None:
                    schedule = self.scheduler.schedule(self._context(t))
                self._run_dl_subframe(schedule, jammed, result)
                t += 1
        result.num_subframes = t
        return result

    def _run_dl_subframe(
        self,
        schedule: SubframeSchedule,
        jammed: Set[int],
        result: SimulationResult,
    ) -> None:
        delivered, rbs_ok, rbs_lost = downlink_delivered_bits(
            schedule, jammed, consts.SUBFRAME_DURATION_S
        )
        for ue, bits in delivered.items():
            result.delivered_bits_by_ue[ue] += bits
        allocated = rbs_ok + rbs_lost
        result.rbs_allocated += allocated
        result.rbs_utilized += rbs_ok
        result.grants_issued += schedule.total_grants
        decoded = sum(
            1
            for rb in schedule.allocated_rbs()
            for grant in schedule.rb(rb)
            if grant.ue_id not in jammed
        )
        result.grants_decoded += decoded
        result.grants_collided += schedule.total_grants - decoded
        # DL payload subframes are the scheduled-subframe denominator for
        # the utilization metrics (the result type shares them with UL).
        result.ul_subframes += 1
        if allocated and rbs_lost == 0:
            result.fully_utilized_subframes += 1
        served_bps = {
            ue: bits / consts.SUBFRAME_DURATION_S for ue, bits in delivered.items()
        }
        self.tracker.update(served_bps)
