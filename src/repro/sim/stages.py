"""The staged subframe pipeline: the engine's per-subframe sequence as
composable, observable stages.

BLU's cell behaviour emerges from a fixed per-subframe sequence — timeline
events, interference/CCA, channel evolution, traffic arrivals, scheduling,
transmission/decoding, HARQ/feedback.  Each step is a
:class:`SubframeStage`; a :class:`SubframePipeline` runs the stages that
apply to the current subframe kind (idle / DL / UL) in order, firing
:class:`SimHooks` callbacks around each one.

Two concrete stage families implement the medium-facing steps:

* the **vectorized** stages (``Vectorized*``) drive the
  :class:`~repro.lte.channel.UplinkChannelBank` and the topology's cached
  edge matrix with array ops;
* the **legacy** stages (``Legacy*``) step per-UE channel objects and
  per-terminal activity processes — the bit-exact scalar reference.

Both families consume the engine's RNG streams identically, so a seeded
run produces the same :class:`~repro.sim.results.SimulationResult` on
either path; ``tests/sim/test_pipeline_equivalence.py`` pins that contract
against pre-refactor snapshots.

Hooks subsume the engine's older perf phase hooks:
:class:`PhaseTimerHooks` adapts a :class:`~repro.obs.timing.PhaseTimer`
to the stage seam, accumulating wall time under each stage's ``phase``
label (``activity``, ``channels``, ``schedule``, ``receive``, ...).
Observability (``repro.obs`` metrics and tracing) and dynamics code
attach their own :class:`SimHooks` the same way, without touching the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.measurement.classifier import classify_subframe
from repro.lte import consts
from repro.lte.phy import GrantOutcome
from repro.lte.resources import SubframeSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.timing import PhaseTimer
    from repro.sim.engine import CellSimulation
    from repro.sim.results import SimulationResult

__all__ = [
    "IDLE",
    "DOWNLINK",
    "UPLINK",
    "SubframeContext",
    "SimHooks",
    "PhaseTimerHooks",
    "CompositeHooks",
    "SubframeStage",
    "TimelineStage",
    "InterferenceStage",
    "VectorizedInterferenceStage",
    "LegacyInterferenceStage",
    "ChannelStage",
    "VectorizedChannelStage",
    "LegacyChannelStage",
    "ArrivalStage",
    "ScheduleStage",
    "TransmitDecodeStage",
    "VectorizedTransmitDecodeStage",
    "LegacyTransmitDecodeStage",
    "HarqFeedbackStage",
    "SubframePipeline",
    "build_subframe_pipeline",
]

#: Subframe kinds; every stage declares which it participates in.
IDLE = "idle"
DOWNLINK = "dl"
UPLINK = "ul"

_ALL_KINDS = (IDLE, DOWNLINK, UPLINK)

try:  # ExceptionGroup is a builtin from Python 3.11.
    _ExceptionGroup = ExceptionGroup
except NameError:  # pragma: no cover - pre-3.11 fallback
    _ExceptionGroup = None


@dataclass(slots=True)
class SubframeContext:
    """Mutable state threaded through one subframe's stages.

    Earlier stages populate fields that later stages consume: the
    interference stage writes ``silenced``, the schedule stage writes
    ``schedule``, the transmit/decode stage writes ``transmitting``,
    ``reception`` and ``raw_delivered`` for the HARQ/feedback stage.
    """

    subframe: int
    kind: str
    result: "SimulationResult"
    silenced: Set[int] = field(default_factory=set)
    schedule: Optional[SubframeSchedule] = None
    transmitting: List[int] = field(default_factory=list)
    reception: object = None
    raw_delivered: Dict[int, float] = field(default_factory=dict)


class SimHooks:
    """Observation seam around the pipeline; all callbacks are no-ops.

    Subclass and override what you need — per-stage timing, per-subframe
    metric streaming, dynamics probes.  Hooks must not mutate simulation
    state: the engine's bit-exactness contract says an attached hook cannot
    change a seeded result.
    """

    def on_stage_start(
        self, stage: "SubframeStage", ctx: SubframeContext
    ) -> None:
        """Called immediately before ``stage.run``."""

    def on_stage_end(
        self, stage: "SubframeStage", ctx: SubframeContext
    ) -> None:
        """Called immediately after ``stage.run``."""

    def on_subframe_end(self, ctx: SubframeContext) -> None:
        """Called once per subframe, after its last stage."""


class PhaseTimerHooks(SimHooks):
    """Adapts a :class:`PhaseTimer` to the stage seam.

    Each stage's wall time accumulates under its ``phase`` label, keeping
    the pre-pipeline phase names (``activity``, ``channels``, ``schedule``,
    ``receive``) stable for the perf harness.
    """

    def __init__(self, timer: "PhaseTimer") -> None:
        self.timer = timer
        self._start = 0.0

    def on_stage_start(
        self, stage: "SubframeStage", ctx: SubframeContext
    ) -> None:
        self._start = perf_counter()

    def on_stage_end(
        self, stage: "SubframeStage", ctx: SubframeContext
    ) -> None:
        self.timer.add(stage.phase, perf_counter() - self._start)


class CompositeHooks(SimHooks):
    """Fan one hook stream out to several receivers, in order.

    Delivery is all-or-error: every child sees every callback even when a
    sibling raises, so one faulty observer cannot starve the others of
    events (a tracer dying mid-run must not corrupt the metrics counters).
    Collected exceptions re-raise after the fan-out — the single error
    as-is, multiple as an ``ExceptionGroup`` (the first alone on Pythons
    without exception groups).
    """

    def __init__(self, hooks: Sequence[SimHooks]) -> None:
        self.hooks = tuple(hooks)

    @staticmethod
    def _raise_collected(errors: List[BaseException]) -> None:
        if len(errors) == 1 or _ExceptionGroup is None:
            raise errors[0]
        raise _ExceptionGroup("multiple hooks failed", errors)

    def on_stage_start(
        self, stage: "SubframeStage", ctx: SubframeContext
    ) -> None:
        errors: List[BaseException] = []
        for hook in self.hooks:
            try:
                hook.on_stage_start(stage, ctx)
            except Exception as error:  # noqa: BLE001 - collected and re-raised
                errors.append(error)
        if errors:
            self._raise_collected(errors)

    def on_stage_end(
        self, stage: "SubframeStage", ctx: SubframeContext
    ) -> None:
        errors: List[BaseException] = []
        for hook in self.hooks:
            try:
                hook.on_stage_end(stage, ctx)
            except Exception as error:  # noqa: BLE001 - collected and re-raised
                errors.append(error)
        if errors:
            self._raise_collected(errors)

    def on_subframe_end(self, ctx: SubframeContext) -> None:
        errors: List[BaseException] = []
        for hook in self.hooks:
            try:
                hook.on_subframe_end(ctx)
            except Exception as error:  # noqa: BLE001 - collected and re-raised
                errors.append(error)
        if errors:
            self._raise_collected(errors)


class SubframeStage:
    """One typed step of the per-subframe sequence.

    Attributes:
        name: stable identifier (also the default timing label).
        phase: :class:`PhaseTimer` bucket this stage accumulates under.
        kinds: subframe kinds the stage participates in.
    """

    name: str = "stage"
    phase: str = "stage"
    kinds: Tuple[str, ...] = _ALL_KINDS

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class TimelineStage(SubframeStage):
    """Apply scripted environment churn at the subframe boundary.

    Events land *before* the medium is sampled, so an arrival at subframe
    ``t`` already contends in subframe ``t`` — on both engine paths.
    """

    name = "timeline"
    phase = "timeline"

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        if sim._timeline_runtime is not None:
            sim._apply_timeline(ctx.subframe)


class InterferenceStage(SubframeStage):
    """Advance hidden-terminal activity one subframe; resolve CCA.

    Writes the silenced-UE set (clients whose CCA fails this subframe)
    into the context.
    """

    name = "interference"
    phase = "activity"

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        ctx.silenced = self.step(sim)

    def step(self, sim: "CellSimulation") -> Set[int]:
        raise NotImplementedError


class VectorizedInterferenceStage(InterferenceStage):
    """Batch activity sampling + boolean reduction over the edge matrix."""

    def step(self, sim: "CellSimulation") -> Set[int]:
        active_vec = sim._activity.step_vector()
        if sim._silencer is not None:
            active = frozenset(int(k) for k in np.flatnonzero(active_vec))
            return set(sim._silencer(active))
        if not active_vec.any():
            return set()
        hit = sim._edge_matrix[active_vec].any(axis=0)
        return {int(ue) for ue in np.flatnonzero(hit)}


class LegacyInterferenceStage(InterferenceStage):
    """Per-terminal process stepping + per-UE edge-set intersection."""

    def step(self, sim: "CellSimulation") -> Set[int]:
        active = sim._activity.step()
        if sim._silencer is not None:
            return set(sim._silencer(active))
        return {
            ue
            for ue, edges in sim._ue_edges.items()
            if edges & active
        }


class ChannelStage(SubframeStage):
    """Advance every UE's fading channel; snapshot CSI for delayed feedback."""

    name = "channels"
    phase = "channels"


class VectorizedChannelStage(ChannelStage):
    """One ``(num_ues, num_rbs)`` array step through the channel bank."""

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        sim._bank.step()
        sim._csi_history.append(sim._bank.sinr_db.copy())


class LegacyChannelStage(ChannelStage):
    """Per-UE channel objects stepped one by one."""

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        for channel in sim._channels.values():
            channel.step()
        sim._csi_history.append(
            {ue: ch.sinr_db.copy() for ue, ch in sim._channels.items()}
        )


class ArrivalStage(SubframeStage):
    """Step every client's traffic source (finite-buffer extension)."""

    name = "arrivals"
    phase = "arrivals"

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        for queue in sim._queues.values():
            queue.step_arrivals()


class ScheduleStage(SubframeStage):
    """Consult the scheduler under test (grant bursts per TxOP).

    The engine clears its held schedule at each TxOP boundary; this stage
    recomputes only then — or every UL subframe for genie schedulers that
    set ``reschedule_every_subframe``.
    """

    name = "schedule"
    phase = "schedule"
    kinds = (UPLINK,)

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        if sim._current_schedule is None or sim._reschedule_each:
            context = sim._context(ctx.subframe, ctx.silenced)
            sim._current_schedule = sim.scheduler.schedule(context)
        ctx.schedule = sim._current_schedule


class TransmitDecodeStage(SubframeStage):
    """Scheduled UEs sense and transmit; the eNB decodes every RB.

    Accounts grant outcomes, RB utilization and raw delivered bits in one
    pass over the receptions (identity checks, no enum hashing), leaving
    HARQ resolution and feedback to the next stage.
    """

    name = "transmit-decode"
    phase = "receive"
    kinds = (UPLINK,)

    def sinr_views(
        self, sim: "CellSimulation", scheduled: Set[int]
    ) -> Mapping[int, object]:
        raise NotImplementedError

    def receive(self, sim: "CellSimulation"):
        raise NotImplementedError

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        schedule = ctx.schedule
        result = ctx.result
        scheduled = set(schedule.scheduled_ues())
        ctx.transmitting = sorted(scheduled - ctx.silenced)
        reception = self.receive(sim)(
            subframe=ctx.subframe,
            schedule=schedule,
            transmitting_ues=ctx.transmitting,
            sinr_db_by_ue_rb=self.sinr_views(sim, scheduled),
        )
        ctx.reception = reception

        decoded = blocked = collided = faded = utilized = 0
        raw_delivered: Dict[int, float] = {}
        for rb_reception in reception.rb_receptions.values():
            rb_decoded = False
            for outcome in rb_reception.outcomes.values():
                if outcome is GrantOutcome.DECODED:
                    decoded += 1
                    rb_decoded = True
                elif outcome is GrantOutcome.BLOCKED:
                    blocked += 1
                elif outcome is GrantOutcome.COLLIDED:
                    collided += 1
                else:
                    faded += 1
            if rb_decoded:
                utilized += 1
            for ue, bits in rb_reception.delivered_bits.items():
                raw_delivered[ue] = raw_delivered.get(ue, 0.0) + bits
        ctx.raw_delivered = raw_delivered

        result.grants_issued += schedule.total_grants
        result.grants_decoded += decoded
        result.grants_blocked += blocked
        result.grants_collided += collided
        result.grants_faded += faded
        allocated = schedule.allocated_rbs()
        result.rbs_allocated += len(allocated)
        result.rbs_utilized += utilized
        result.ul_subframes += 1
        if allocated and utilized == len(allocated):
            result.fully_utilized_subframes += 1
        if sim.record_series and allocated:
            result.utilization_series.append(utilized / len(allocated))


class VectorizedTransmitDecodeStage(TransmitDecodeStage):
    """Hand the eNB views of the bank's SINR rows; no per-RB copies."""

    def sinr_views(self, sim: "CellSimulation", scheduled: Set[int]):
        sinr_matrix = sim._bank.sinr_db
        return {ue: sinr_matrix[ue] for ue in scheduled}

    def receive(self, sim: "CellSimulation"):
        return sim.enb.receive_subframe_fast


class LegacyTransmitDecodeStage(TransmitDecodeStage):
    """Per-(UE, RB) scalar SINR dicts through the reference receiver."""

    def sinr_views(self, sim: "CellSimulation", scheduled: Set[int]):
        return {
            ue: {
                rb: float(sim._channels[ue].sinr_db[rb])
                for rb in range(sim.config.num_rbs)
            }
            for ue in scheduled
        }

    def receive(self, sim: "CellSimulation"):
        return sim.enb.receive_subframe


class HarqFeedbackStage(SubframeStage):
    """Resolve HARQ, drain client buffers, update PF, feed observations.

    This is the closing of the loop: delivered rates update the PF
    averages, and the access observation (pilot classification) flows back
    to adaptive schedulers — which is how the BLU controller measures.
    """

    name = "harq-feedback"
    phase = "feedback"
    kinds = (UPLINK,)

    def run(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        result = ctx.result
        raw_delivered = ctx.raw_delivered
        if sim._harq is not None:
            raw_delivered = sim._apply_harq(
                ctx.schedule, ctx.reception, set(ctx.transmitting), raw_delivered
            )
        # Bits are scaled by the allocation-unit width already (grant rates
        # carry rate_scale); delivered_bits uses the grant rate, capped by
        # what the client's buffer actually held.
        delivered = {
            ue: sim._queues[ue].drain(bits)
            for ue, bits in raw_delivered.items()
        }
        for ue, bits in delivered.items():
            result.delivered_bits_by_ue[ue] += bits

        # PF update with delivered rates (bits per subframe -> bps).
        served_bps = {
            ue: bits / consts.SUBFRAME_DURATION_S
            for ue, bits in delivered.items()
        }
        sim.tracker.update(served_bps)

        if sim._harq is not None:
            result.harq_retransmissions = sim._harq.retransmissions
            result.harq_blocks_recovered = sim._harq.blocks_delivered
            result.harq_blocks_dropped = sim._harq.blocks_dropped

        observe = getattr(sim.scheduler, "observe", None)
        if observe is not None:
            observe(classify_subframe(ctx.schedule, ctx.reception))


class SubframePipeline:
    """Run the applicable stages, in order, for each subframe.

    Stage lists are pre-partitioned by subframe kind so the hot loop pays
    one tuple lookup per subframe; with no hooks attached the pipeline adds
    nothing but direct stage calls.
    """

    def __init__(
        self,
        stages: Sequence[SubframeStage],
        hooks: Optional[SimHooks] = None,
    ) -> None:
        self.stages = tuple(stages)
        self.hooks = hooks
        self._by_kind = {
            kind: tuple(stage for stage in self.stages if kind in stage.kinds)
            for kind in _ALL_KINDS
        }

    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def run_subframe(self, sim: "CellSimulation", ctx: SubframeContext) -> None:
        hooks = self.hooks
        if hooks is None:
            for stage in self._by_kind[ctx.kind]:
                stage.run(sim, ctx)
            return
        for stage in self._by_kind[ctx.kind]:
            hooks.on_stage_start(stage, ctx)
            stage.run(sim, ctx)
            hooks.on_stage_end(stage, ctx)
        hooks.on_subframe_end(ctx)


def build_subframe_pipeline(
    fast_path: bool, hooks: Optional[SimHooks] = None
) -> SubframePipeline:
    """The canonical stage order for one engine path.

    Both paths share the timeline/arrival/schedule/HARQ stages; the
    medium-facing stages (interference, channels, transmit/decode) come in
    vectorized and legacy flavours that consume RNG streams identically.
    """
    if fast_path:
        stages: List[SubframeStage] = [
            TimelineStage(),
            VectorizedInterferenceStage(),
            VectorizedChannelStage(),
            ArrivalStage(),
            ScheduleStage(),
            VectorizedTransmitDecodeStage(),
            HarqFeedbackStage(),
        ]
    else:
        stages = [
            TimelineStage(),
            LegacyInterferenceStage(),
            LegacyChannelStage(),
            ArrivalStage(),
            ScheduleStage(),
            LegacyTransmitDecodeStage(),
            HarqFeedbackStage(),
        ]
    return SubframePipeline(stages, hooks=hooks)
