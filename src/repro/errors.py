"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A configuration object or parameter combination is invalid."""


class SpecError(ConfigurationError):
    """An experiment spec is malformed: unknown kind, bad field, or a value
    that cannot be built through the scenario/scheduler registries."""


class TopologyError(ReproError):
    """A topology (ground-truth or inferred) is malformed or inconsistent."""


class SchedulingError(ReproError):
    """A scheduler was asked to produce an impossible or invalid schedule."""


class MeasurementError(ReproError):
    """Access-distribution measurement could not be carried out or used."""


class InferenceError(ReproError):
    """Blueprint topology inference failed to produce a usable topology."""


class TraceError(ReproError):
    """A trace file or trace combination operation is invalid."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ObsError(ReproError):
    """An observability object (metric, snapshot, trace) was misused."""


class DeploymentError(ReproError):
    """A multi-cell deployment is malformed or violates an invariant (an
    unsound interference-cluster partition, inconsistent cell views)."""


class ResilienceError(ReproError):
    """A resilience operation is invalid: a malformed fault plan, a bad
    supervisor configuration, or a supervised run that could not proceed."""


class CheckpointError(ResilienceError):
    """A checkpoint directory is missing, corrupt, or belongs to a
    different run than the one being resumed (spec/seed mismatch)."""


class ChaosError(ResilienceError):
    """A chaos harness invocation is invalid: an unknown storage fault
    kind, a malformed schedule, or a spec the driver cannot target."""


class WorkerFailure(ResilienceError):
    """A supervised worker crashed while executing a work item (including
    crashes injected by a fault plan for resilience testing)."""
