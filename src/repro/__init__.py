"""repro — BLU: Blue-printing Interference for Robust LTE Access in
Unlicensed Spectrum (CoNEXT 2017), reproduced as a Python library.

Layers:

* ``repro.lte`` — the LTE substrate: frame structure, CQI/MCS rates,
  fading channels, UE/eNB node models, pilots, MU-MIMO reception.
* ``repro.spectrum`` — the unlicensed medium: CCA/sensing models, WiFi
  hidden terminals (CSMA/CA, traffic, rate adaptation), activity processes.
* ``repro.topology`` — geometry, the interference graph ``(h, q, Z)``,
  scenario generation, hidden-terminal counting.
* ``repro.core`` — BLU itself: measurement scheduling (Algorithm 1),
  access estimation, blueprint inference (Section 3.4), higher-order joint
  distributions (Section 3.6), the scheduler family (PF / access-aware /
  speculative / oracle), and the two-phase controller (Fig. 9).
* ``repro.sim`` — the cell-level simulation engine and experiment runners.
* ``repro.traces`` — trace recording, combination, and persistence.
* ``repro.analysis`` — CDFs and result tables.

Quickstart::

    from repro import (BLUController, BLUConfig, SimulationConfig,
                       run_comparison, ProportionalFairScheduler,
                       testbed_topology, uniform_snrs)

    topology = testbed_topology(num_ues=8, hts_per_ue=2, activity=0.4, seed=1)
    results = run_comparison(
        topology, uniform_snrs(8, seed=2),
        {"pf": ProportionalFairScheduler,
         "blu": lambda: BLUController(8, BLUConfig())},
        SimulationConfig(num_subframes=4000),
    )
    print({k: v.aggregate_throughput_mbps for k, v in results.items()})
"""

from repro.core.blueprint import (
    BlueprintInference,
    InferenceConfig,
    InferenceResult,
    McmcConfig,
    McmcInference,
    TransformedMeasurements,
)
from repro.core.controller import BLUConfig, BLUController, BLUPhase
from repro.core.joint import (
    EmpiricalJointProvider,
    TopologyJointProvider,
    joint_access_probability,
)
from repro.core.measurement import (
    AccessEstimator,
    MeasurementScheduler,
    minimum_subframes,
)
from repro.core.scheduling import (
    AccessAwareDownlinkScheduler,
    AccessAwareScheduler,
    OracleScheduler,
    PfAverageTracker,
    ProportionalFairScheduler,
    SchedulingContext,
    SingleUserScheduler,
    SpeculativeScheduler,
    jain_fairness_index,
)
from repro.dynamics import (
    AdaptiveBLUController,
    AdaptiveConfig,
    DynamicsMetrics,
    EnvironmentTimeline,
    FullRestartController,
    StagedBlueprintScheduler,
)
from repro.errors import (
    ConfigurationError,
    InferenceError,
    MeasurementError,
    ReproError,
    SchedulingError,
    SimulationError,
    TopologyError,
    TraceError,
)
from repro.sim import (
    CellSimulation,
    SimulationConfig,
    SimulationResult,
    gain_over,
    run_comparison,
)
from repro.topology import (
    InterferenceTopology,
    Scenario,
    ScenarioConfig,
    client_churn_timeline,
    duty_cycle_drift_timeline,
    edge_set_accuracy,
    fig1_topology,
    generate_scenario,
    hidden_node_churn_timeline,
    skewed_topology,
    statistically_equivalent,
    testbed_topology,
    uniform_snrs,
)

__version__ = "1.0.0"

__all__ = [
    "AccessAwareDownlinkScheduler",
    "AccessAwareScheduler",
    "AccessEstimator",
    "AdaptiveBLUController",
    "AdaptiveConfig",
    "BLUConfig",
    "BLUController",
    "BLUPhase",
    "BlueprintInference",
    "CellSimulation",
    "ConfigurationError",
    "DynamicsMetrics",
    "EmpiricalJointProvider",
    "EnvironmentTimeline",
    "FullRestartController",
    "InferenceConfig",
    "InferenceError",
    "InferenceResult",
    "InterferenceTopology",
    "McmcConfig",
    "McmcInference",
    "MeasurementError",
    "MeasurementScheduler",
    "OracleScheduler",
    "PfAverageTracker",
    "ProportionalFairScheduler",
    "ReproError",
    "Scenario",
    "ScenarioConfig",
    "SchedulingContext",
    "SchedulingError",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "SingleUserScheduler",
    "SpeculativeScheduler",
    "StagedBlueprintScheduler",
    "TopologyError",
    "TopologyJointProvider",
    "TraceError",
    "TransformedMeasurements",
    "client_churn_timeline",
    "duty_cycle_drift_timeline",
    "edge_set_accuracy",
    "fig1_topology",
    "gain_over",
    "generate_scenario",
    "hidden_node_churn_timeline",
    "jain_fairness_index",
    "joint_access_probability",
    "minimum_subframes",
    "run_comparison",
    "skewed_topology",
    "statistically_equivalent",
    "testbed_topology",
    "uniform_snrs",
    "__version__",
]
