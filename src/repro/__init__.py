"""repro — BLU: Blue-printing Interference for Robust LTE Access in
Unlicensed Spectrum (CoNEXT 2017), reproduced as a Python library.

Layers:

* ``repro.lte`` — the LTE substrate: frame structure, CQI/MCS rates,
  fading channels, UE/eNB node models, pilots, MU-MIMO reception.
* ``repro.spectrum`` — the unlicensed medium: CCA/sensing models, WiFi
  hidden terminals (CSMA/CA, traffic, rate adaptation), activity processes.
* ``repro.topology`` — geometry, the interference graph ``(h, q, Z)``,
  scenario generation, hidden-terminal counting.
* ``repro.core`` — BLU itself: measurement scheduling (Algorithm 1),
  access estimation, blueprint inference (Section 3.4), higher-order joint
  distributions (Section 3.6), the scheduler family (PF / access-aware /
  speculative / oracle), and the two-phase controller (Fig. 9).
* ``repro.sim`` — the cell-level simulation engine and experiment runners.
* ``repro.traces`` — trace recording, combination, and persistence.
* ``repro.analysis`` — CDFs and result tables.

* ``repro.experiments`` — declarative, JSON-round-trippable experiment
  specs and the registries that resolve them into runnable plans.
* ``repro.resilience`` — seeded fault injection, supervised parallel
  execution (retry/timeout/quarantine), and checkpoint/resume.

Quickstart::

    from repro import (ExperimentSpec, ScenarioSpec, SchedulerSpec,
                       SimulationConfig, run_experiment)

    results = run_experiment(ExperimentSpec(
        name="quickstart",
        scenario=ScenarioSpec(
            kind="testbed",
            params={"num_ues": 8, "hts_per_ue": 2, "activity": 0.4, "seed": 1},
            snr={"kind": "uniform", "seed": 2},
        ),
        sim=SimulationConfig(num_subframes=4000),
        schedulers={"pf": SchedulerSpec("pf"), "blu": SchedulerSpec("blu")},
    ))
    print({k: v.aggregate_throughput_mbps for k, v in results.items()})

The callable-based runners (``run_comparison`` et al.) remain for live
objects a spec cannot serialize.
"""

from repro.core.blueprint import (
    BlueprintInference,
    InferenceConfig,
    InferenceResult,
    McmcConfig,
    McmcInference,
    TransformedMeasurements,
)
from repro.core.controller import BLUConfig, BLUController, BLUPhase
from repro.core.joint import (
    EmpiricalJointProvider,
    TopologyJointProvider,
    joint_access_probability,
)
from repro.core.measurement import (
    AccessEstimator,
    MeasurementScheduler,
    minimum_subframes,
)
from repro.core.scheduling import (
    AccessAwareDownlinkScheduler,
    AccessAwareScheduler,
    BlueprintChannelAssigner,
    OracleScheduler,
    PfAverageTracker,
    ProportionalFairScheduler,
    SchedulingContext,
    SingleUserScheduler,
    SpeculativeScheduler,
    jain_fairness_index,
)
from repro.dynamics import (
    AdaptiveBLUController,
    AdaptiveConfig,
    DynamicsMetrics,
    EnvironmentTimeline,
    FullRestartController,
    StagedBlueprintScheduler,
)
from repro.errors import (
    ChaosError,
    CheckpointError,
    ConfigurationError,
    InferenceError,
    MeasurementError,
    ReproError,
    ResilienceError,
    SchedulingError,
    SimulationError,
    SpecError,
    TopologyError,
    TraceError,
    WorkerFailure,
)
from repro.experiments import (
    ChannelSpec,
    ExperimentSpec,
    ScenarioSpec,
    SchedulerSpec,
    TimelineSpec,
    build_experiment,
    resume_checkpoint,
    run_experiment,
    run_experiment_grid,
    run_experiment_replications,
    run_experiment_sweep,
)
from repro.resilience import (
    AuditReport,
    ChaosVerdict,
    CheckpointStore,
    FailedItem,
    FaultInjector,
    FaultPlan,
    SupervisorConfig,
    audit_campaign,
    run_chaos,
    supervised_map,
)
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    MetricsSnapshot,
    ObsConfig,
    merge_snapshots,
)
from repro.sim import (
    CellSimulation,
    SimulationConfig,
    SimulationResult,
    gain_over,
    run_comparison,
)
from repro.spectrum import ChannelPlan
from repro.topology import (
    InterferenceTopology,
    MultiChannelTopology,
    Scenario,
    ScenarioConfig,
    channel_drift_timeline,
    client_churn_timeline,
    duty_cycle_drift_timeline,
    edge_set_accuracy,
    fig1_topology,
    generate_scenario,
    hidden_node_churn_timeline,
    skewed_topology,
    statistically_equivalent,
    testbed_topology,
    uniform_snrs,
)

__version__ = "1.0.0"

__all__ = [
    "AccessAwareDownlinkScheduler",
    "AccessAwareScheduler",
    "AccessEstimator",
    "AdaptiveBLUController",
    "AdaptiveConfig",
    "AuditReport",
    "BLUConfig",
    "BLUController",
    "BLUPhase",
    "BlueprintChannelAssigner",
    "BlueprintInference",
    "CellSimulation",
    "ChannelPlan",
    "ChannelSpec",
    "ChaosError",
    "ChaosVerdict",
    "CheckpointError",
    "CheckpointStore",
    "ConfigurationError",
    "DynamicsMetrics",
    "EmpiricalJointProvider",
    "EnvironmentTimeline",
    "EventTracer",
    "ExperimentSpec",
    "FailedItem",
    "FaultInjector",
    "FaultPlan",
    "FullRestartController",
    "InferenceConfig",
    "InferenceError",
    "InferenceResult",
    "InterferenceTopology",
    "McmcConfig",
    "McmcInference",
    "MeasurementError",
    "MeasurementScheduler",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MultiChannelTopology",
    "ObsConfig",
    "OracleScheduler",
    "PfAverageTracker",
    "ProportionalFairScheduler",
    "ReproError",
    "ResilienceError",
    "Scenario",
    "ScenarioConfig",
    "ScenarioSpec",
    "SchedulerSpec",
    "SchedulingContext",
    "SchedulingError",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "SingleUserScheduler",
    "SpecError",
    "SpeculativeScheduler",
    "StagedBlueprintScheduler",
    "SupervisorConfig",
    "TimelineSpec",
    "TopologyError",
    "TopologyJointProvider",
    "TraceError",
    "TransformedMeasurements",
    "WorkerFailure",
    "audit_campaign",
    "build_experiment",
    "channel_drift_timeline",
    "client_churn_timeline",
    "duty_cycle_drift_timeline",
    "edge_set_accuracy",
    "fig1_topology",
    "gain_over",
    "generate_scenario",
    "hidden_node_churn_timeline",
    "jain_fairness_index",
    "joint_access_probability",
    "merge_snapshots",
    "minimum_subframes",
    "resume_checkpoint",
    "run_chaos",
    "run_comparison",
    "run_experiment",
    "run_experiment_grid",
    "run_experiment_replications",
    "run_experiment_sweep",
    "skewed_topology",
    "statistically_equivalent",
    "supervised_map",
    "testbed_topology",
    "uniform_snrs",
    "__version__",
]
