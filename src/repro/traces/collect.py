"""Trace collection: record a scenario's medium and channels over time.

Substitutes for the paper's 5-minute WARP collection runs: given a scenario
(or a bare topology plus activity model), run the activity and fading
processes for a configured duration and store the per-subframe artifacts.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import TraceError
from repro.lte import consts
from repro.lte.channel import UplinkChannel
from repro.spectrum.activity import IndependentActivity, JointActivityModel
from repro.topology.generator import Scenario
from repro.topology.graph import InterferenceTopology
from repro.traces.records import ChannelTrace, InterferenceTrace, TopologyTrace

__all__ = ["collect_topology_trace", "collect_scenario_trace"]


def collect_topology_trace(
    topology: InterferenceTopology,
    mean_snr_db: Dict[int, float],
    num_subframes: int,
    activity_model: Optional[JointActivityModel] = None,
    doppler_coherence: float = 0.97,
    num_rbs: int = 10,
    seed: Optional[int] = None,
    label: str = "",
    record_channels: bool = True,
) -> TopologyTrace:
    """Record ``num_subframes`` of interference activity and channel state."""
    if num_subframes < 1:
        raise TraceError(f"num_subframes must be positive: {num_subframes}")
    rng = np.random.default_rng(seed)

    if activity_model is None:
        from repro.spectrum.activity import BernoulliActivity

        activity_model = IndependentActivity(
            [
                BernoulliActivity(
                    q, rng=np.random.default_rng(rng.integers(0, 2**63))
                )
                for q in topology.q
            ]
        )
    if activity_model.num_terminals != topology.num_terminals:
        raise TraceError(
            f"activity model covers {activity_model.num_terminals} terminals, "
            f"topology has {topology.num_terminals}"
        )

    activity = np.zeros((num_subframes, topology.num_terminals), dtype=bool)
    for t in range(num_subframes):
        for k in activity_model.step():
            activity[t, k] = True

    channels: Dict[int, ChannelTrace] = {}
    if record_channels:
        for ue in range(topology.num_ues):
            channel = UplinkChannel(
                mean_rx_power_dbm=consts.NOISE_FLOOR_10MHZ_DBM + mean_snr_db[ue],
                num_rbs=num_rbs,
                doppler_coherence=doppler_coherence,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            sinr = np.zeros((num_subframes, num_rbs))
            for t in range(num_subframes):
                sinr[t] = channel.step()
            channels[ue] = ChannelTrace(ue_id=ue, sinr_db=sinr)

    return TopologyTrace(
        topology=topology,
        interference=InterferenceTrace(activity=activity),
        channels=channels,
        mean_snr_db=dict(mean_snr_db),
        label=label,
    )


def collect_scenario_trace(
    scenario: Scenario,
    num_subframes: int,
    use_contention: bool = True,
    seed: Optional[int] = None,
    label: str = "",
    record_channels: bool = True,
) -> TopologyTrace:
    """Record a generated scenario (contention-coupled activity by default)."""
    rng = np.random.default_rng(seed)
    model: Optional[JointActivityModel] = None
    if use_contention:
        model = scenario.activity_model(
            rng=np.random.default_rng(rng.integers(0, 2**63))
        )
    return collect_topology_trace(
        topology=scenario.topology,
        mean_snr_db=scenario.ue_mean_snr_db,
        num_subframes=num_subframes,
        activity_model=model,
        seed=int(rng.integers(0, 2**63)),
        label=label,
        record_channels=record_channels,
    )
