"""Trace persistence: JSON for topologies, NPZ for bulk arrays.

A :class:`~repro.traces.records.TopologyTrace` is stored as a single ``.npz``
archive: the topology serialized to JSON inside the archive, activity and
channel arrays as compressed numpy blocks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.errors import TraceError
from repro.topology.graph import InterferenceTopology
from repro.traces.records import ChannelTrace, InterferenceTrace, TopologyTrace

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: TopologyTrace, path: Union[str, Path]) -> Path:
    """Write a topology trace to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    metadata = {
        "version": _FORMAT_VERSION,
        "label": trace.label,
        "topology": trace.topology.to_dict(),
        "mean_snr_db": {str(k): v for k, v in trace.mean_snr_db.items()},
        "channel_ues": sorted(trace.channels),
    }
    arrays: Dict[str, np.ndarray] = {
        "activity": trace.interference.activity,
        "metadata": np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
    }
    for ue, channel in trace.channels.items():
        arrays[f"sinr_{ue}"] = channel.sinr_db
    np.savez_compressed(path, **arrays)
    return path


def load_trace(path: Union[str, Path]) -> TopologyTrace:
    """Load a topology trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as archive:
        try:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        except Exception as exc:  # malformed archive
            raise TraceError(f"corrupt trace metadata in {path}: {exc}")
        if metadata.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version: {metadata.get('version')}"
            )
        topology = InterferenceTopology.from_dict(metadata["topology"])
        interference = InterferenceTrace(activity=archive["activity"])
        channels = {}
        for ue in metadata["channel_ues"]:
            channels[int(ue)] = ChannelTrace(
                ue_id=int(ue), sinr_db=archive[f"sinr_{ue}"]
            )
    return TopologyTrace(
        topology=topology,
        interference=interference,
        channels=channels,
        mean_snr_db={int(k): float(v) for k, v in metadata["mean_snr_db"].items()},
        label=metadata.get("label", ""),
    )
