"""Trace combination: build large emulated topologies from small recordings.

Section 4.2.1 of the paper: "we emulate larger topologies by combining the
traces collected from different testbed topologies".  Two combination axes:

* :func:`merge_interference_layers` — same UE population, hidden terminals
  recorded at different locations/times: terminal sets concatenate, and a
  UE defers to the union of its interferers ("we combine the data traces
  collected from different hidden terminal locations to emulate a larger
  spatially separated hidden terminal topology for a given UE set-up");
* :func:`merge_ue_populations` — disjoint UE groups with their own hidden
  terminals, renumbered into one big cell ("we emulate large UE topologies
  by combining traces from different smaller UE topologies").

Traces of unequal length are truncated to the shortest (time-synchronized
replay).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import TraceError
from repro.topology.graph import InterferenceTopology
from repro.traces.records import ChannelTrace, InterferenceTrace, TopologyTrace

__all__ = ["merge_interference_layers", "merge_ue_populations"]


def _common_length(traces: Sequence[TopologyTrace]) -> int:
    length = min(t.num_subframes for t in traces)
    if length < 1:
        raise TraceError("cannot combine empty traces")
    return length


def merge_interference_layers(traces: Sequence[TopologyTrace]) -> TopologyTrace:
    """Stack hidden-terminal layers over one shared UE population."""
    if not traces:
        raise TraceError("no traces to combine")
    num_ues = traces[0].topology.num_ues
    for trace in traces:
        if trace.topology.num_ues != num_ues:
            raise TraceError(
                "merge_interference_layers needs a common UE population "
                f"({trace.topology.num_ues} != {num_ues})"
            )
    length = _common_length(traces)

    terminals = []
    activity_blocks = []
    for trace in traces:
        for q, ues in zip(trace.topology.q, trace.topology.edges):
            terminals.append((q, ues))
        activity_blocks.append(trace.interference.activity[:length])
    topology = InterferenceTopology.build(num_ues, terminals)
    activity = (
        np.hstack(activity_blocks)
        if activity_blocks
        else np.zeros((length, 0), dtype=bool)
    )

    # Channels: keep the first trace's channel recordings (one UE, one
    # channel — interference layers do not alter the LTE link).
    channels = {
        ue: ChannelTrace(ue_id=ue, sinr_db=ch.sinr_db[:length])
        for ue, ch in traces[0].channels.items()
    }
    return TopologyTrace(
        topology=topology,
        interference=InterferenceTrace(activity=activity),
        channels=channels,
        mean_snr_db=dict(traces[0].mean_snr_db),
        label="+".join(t.label for t in traces if t.label),
    )


def merge_ue_populations(traces: Sequence[TopologyTrace]) -> TopologyTrace:
    """Concatenate disjoint cells (UEs and terminals renumbered)."""
    if not traces:
        raise TraceError("no traces to combine")
    length = _common_length(traces)

    terminals = []
    activity_blocks = []
    channels: Dict[int, ChannelTrace] = {}
    mean_snr: Dict[int, float] = {}
    ue_offset = 0
    total_ues = sum(t.topology.num_ues for t in traces)
    for trace in traces:
        for q, ues in zip(trace.topology.q, trace.topology.edges):
            terminals.append((q, {ue + ue_offset for ue in ues}))
        activity_blocks.append(trace.interference.activity[:length])
        for ue, channel in trace.channels.items():
            channels[ue + ue_offset] = ChannelTrace(
                ue_id=ue + ue_offset, sinr_db=channel.sinr_db[:length]
            )
        for ue, snr in trace.mean_snr_db.items():
            mean_snr[ue + ue_offset] = snr
        ue_offset += trace.topology.num_ues

    topology = InterferenceTopology.build(total_ues, terminals)
    activity = (
        np.hstack(activity_blocks)
        if activity_blocks
        else np.zeros((length, 0), dtype=bool)
    )
    return TopologyTrace(
        topology=topology,
        interference=InterferenceTrace(activity=activity),
        channels=channels,
        mean_snr_db=mean_snr,
        label="|".join(t.label for t in traces if t.label),
    )
