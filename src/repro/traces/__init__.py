"""Trace infrastructure: record, combine, persist, replay."""

from repro.traces.collect import collect_scenario_trace, collect_topology_trace
from repro.traces.combine import merge_interference_layers, merge_ue_populations
from repro.traces.io import load_trace, save_trace
from repro.traces.records import ChannelTrace, InterferenceTrace, TopologyTrace

__all__ = [
    "ChannelTrace",
    "InterferenceTrace",
    "TopologyTrace",
    "collect_scenario_trace",
    "collect_topology_trace",
    "load_trace",
    "merge_interference_layers",
    "merge_ue_populations",
    "save_trace",
]
