"""Trace record types: what the testbed collection produces.

The paper collects two trace families from the WARP testbed (Section 4.2):
per-subframe **WiFi interference traces** (when each hidden terminal was on
the air, as overheard by the UEs) and **LTE channel traces** (per-subframe
CSI between each UE and the eNB).  Both are replayed by the emulation layer
and combinable into larger synthetic topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TraceError
from repro.topology.graph import InterferenceTopology

__all__ = ["InterferenceTrace", "ChannelTrace", "TopologyTrace"]


@dataclass
class InterferenceTrace:
    """Busy/idle activity of a set of hidden terminals over time.

    ``activity[t, k]`` is True when terminal ``k`` occupied the air during
    subframe ``t``.
    """

    activity: np.ndarray

    def __post_init__(self) -> None:
        self.activity = np.asarray(self.activity, dtype=bool)
        if self.activity.ndim != 2:
            raise TraceError(
                f"activity must be 2-D (subframes x terminals), "
                f"got shape {self.activity.shape}"
            )

    @property
    def num_subframes(self) -> int:
        return self.activity.shape[0]

    @property
    def num_terminals(self) -> int:
        return self.activity.shape[1]

    def marginals(self) -> np.ndarray:
        """Empirical busy probability of each terminal."""
        return self.activity.mean(axis=0)

    def clear_matrix(self, topology: InterferenceTopology) -> np.ndarray:
        """Per-subframe CCA-clear indicator of each UE under ``topology``.

        ``topology`` supplies the terminal -> UE edges; activity columns are
        matched to terminal indices.
        """
        if topology.num_terminals != self.num_terminals:
            raise TraceError(
                f"trace has {self.num_terminals} terminals, topology "
                f"{topology.num_terminals}"
            )
        clear = np.ones((self.num_subframes, topology.num_ues), dtype=bool)
        for k, ues in enumerate(topology.edges):
            busy_rows = self.activity[:, k]
            for ue in ues:
                clear[busy_rows, ue] = False
        return clear


@dataclass
class ChannelTrace:
    """Per-subframe, per-RB SINR (dB) of one UE's uplink channel."""

    ue_id: int
    sinr_db: np.ndarray

    def __post_init__(self) -> None:
        self.sinr_db = np.asarray(self.sinr_db, dtype=float)
        if self.sinr_db.ndim != 2:
            raise TraceError(
                f"sinr must be 2-D (subframes x RBs), got {self.sinr_db.shape}"
            )

    @property
    def num_subframes(self) -> int:
        return self.sinr_db.shape[0]

    @property
    def num_rbs(self) -> int:
        return self.sinr_db.shape[1]


@dataclass
class TopologyTrace:
    """A complete recorded scenario: topology + interference + channels.

    This is the unit the paper collects 150 of from the testbed and 300 of
    from NS3: everything needed to (a) evaluate topology inference against
    ground truth and (b) drive the trace-based emulation.
    """

    topology: InterferenceTopology
    interference: InterferenceTrace
    channels: Dict[int, ChannelTrace] = field(default_factory=dict)
    mean_snr_db: Dict[int, float] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if self.interference.num_terminals != self.topology.num_terminals:
            raise TraceError(
                "interference trace terminal count does not match topology"
            )
        for ue, channel in self.channels.items():
            if not 0 <= ue < self.topology.num_ues:
                raise TraceError(f"channel trace for unknown UE {ue}")
            if channel.num_subframes != self.interference.num_subframes:
                raise TraceError(
                    f"channel trace of UE {ue} has {channel.num_subframes} "
                    f"subframes, interference has "
                    f"{self.interference.num_subframes}"
                )

    @property
    def num_subframes(self) -> int:
        return self.interference.num_subframes

    def clear_matrix(self) -> np.ndarray:
        return self.interference.clear_matrix(self.topology)
