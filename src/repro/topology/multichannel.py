"""The interference topology with a frequency axis.

A :class:`MultiChannelTopology` models ONE physical population of hidden
terminals shared by every channel of a :class:`~repro.spectrum.ChannelPlan`.
Each terminal is *homed* on the channel it transmits on, keeps the single
busy process the paper's model gives it, and couples into other channels
only when its received margin beats the plan's ACLR attenuation.  Two
consequences fall out of keeping the population global instead of slicing
it per channel:

* a terminal can be hidden on one channel and inert on another — the
  per-channel hidden-terminal sets the paper's single-channel model cannot
  express;
* the terminal's busy indicator is *shared* across channels, so blueprints
  of different channels built from the same terminal are statistically
  coupled exactly as the physics says (the same Wi-Fi frame occupies both).

``effective_topology`` resolves a per-UE channel assignment into a plain
:class:`~repro.topology.graph.InterferenceTopology` the unmodified engine,
joint providers, and schedulers consume: every terminal is retained (with
its busy probability unchanged, so the engine's seeded activity streams
are identical to the single-channel world) and only its edges are filtered
by per-UE audibility.  ``channel_view`` is the per-channel blueprint used
for measurement, inference, and channel selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Sequence, Tuple

from repro.errors import SpecError, TopologyError
from repro.spectrum.channels import ChannelPlan
from repro.topology.graph import InterferenceTopology

__all__ = ["ChannelizedTerminal", "MultiChannelTopology"]


@dataclass(frozen=True)
class ChannelizedTerminal:
    """One hidden terminal with its home channel and received margin.

    ``margin_db`` is how many dB above the audibility/harm threshold the
    terminal is received at its co-channel victims; it is what the ACLR
    attenuation eats when the victim listens one channel over.  A margin
    of 0 (the default) makes the terminal strictly co-channel.
    """

    q: float
    ues: FrozenSet[int]
    channel: int = 0
    margin_db: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "ues", frozenset(int(u) for u in self.ues)
        )
        if not 0.0 <= self.q < 1.0:
            raise TopologyError(
                f"terminal busy probability outside [0,1): {self.q}"
            )
        if self.channel < 0:
            raise TopologyError(f"negative channel index: {self.channel}")
        if self.margin_db < 0.0:
            raise TopologyError(
                f"received margin must be >= 0 dB: {self.margin_db}"
            )


@dataclass(frozen=True)
class MultiChannelTopology:
    """A hidden-terminal population spread over a channel plan."""

    plan: ChannelPlan
    num_ues: int
    terminals: Tuple[ChannelizedTerminal, ...]

    def __post_init__(self) -> None:
        if self.num_ues < 1:
            raise TopologyError(f"need at least one UE: {self.num_ues}")
        for k, terminal in enumerate(self.terminals):
            if terminal.channel >= self.plan.num_channels:
                raise TopologyError(
                    f"terminal {k} homed on channel {terminal.channel}, "
                    f"but the plan has {self.plan.num_channels} channel(s)"
                )
            bad = [u for u in terminal.ues if not 0 <= u < self.num_ues]
            if bad:
                raise TopologyError(
                    f"terminal {k} has edges to unknown UEs {sorted(bad)}"
                )

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_base(
        topology: InterferenceTopology,
        plan: ChannelPlan,
        terminal_channels: Sequence[int] = (),
        terminal_margins_db: Sequence[float] = (),
    ) -> "MultiChannelTopology":
        """Channelize an existing single-channel topology.

        Empty ``terminal_channels``/``terminal_margins_db`` default every
        terminal to channel 0 with zero margin — the exact single-channel
        world in multi-channel clothes.
        """
        h = topology.num_terminals
        channels = tuple(int(c) for c in terminal_channels) or (0,) * h
        margins = tuple(float(m) for m in terminal_margins_db) or (0.0,) * h
        if len(channels) != h:
            raise SpecError(
                f"channels.terminal_channels lists {len(channels)} entries "
                f"for {h} terminals"
            )
        if len(margins) != h:
            raise SpecError(
                f"channels.terminal_margins_db lists {len(margins)} entries "
                f"for {h} terminals"
            )
        return MultiChannelTopology(
            plan=plan,
            num_ues=topology.num_ues,
            terminals=tuple(
                ChannelizedTerminal(
                    q=q, ues=ues, channel=channel, margin_db=margin
                )
                for q, ues, channel, margin in zip(
                    topology.q, topology.edges, channels, margins
                )
            ),
        )

    @property
    def num_terminals(self) -> int:
        return len(self.terminals)

    @property
    def num_channels(self) -> int:
        return self.plan.num_channels

    # -- cross-channel coupling -----------------------------------------------

    def couples(self, k: int, channel: int) -> bool:
        """Whether terminal ``k``'s leakage reaches a ``channel`` listener.

        True when the terminal's received margin survives the plan's ACLR
        attenuation between its home channel and ``channel``.  Co-channel
        terminals always couple (ACLR 0, margin >= 0).
        """
        terminal = self.terminals[k]
        return self.plan.aclr_db(channel, terminal.channel) <= terminal.margin_db

    def terminals_on(self, channel: int) -> Tuple[int, ...]:
        """Indices of terminals homed on ``channel``."""
        self.plan._check_channel(channel)
        return tuple(
            k for k, t in enumerate(self.terminals) if t.channel == channel
        )

    def coupled_terminals(self, channel: int) -> Tuple[int, ...]:
        """Indices of terminals whose energy reaches ``channel``."""
        self.plan._check_channel(channel)
        return tuple(
            k for k in range(self.num_terminals) if self.couples(k, channel)
        )

    def channel_busy_probability(self, channel: int) -> float:
        """Effective busy probability a ``channel`` sensor experiences.

        Cross-channel leakage folded in: the chance at least one coupled
        terminal (co-channel or leaking neighbour) is busy in a subframe.
        """
        idle = 1.0
        for k in self.coupled_terminals(channel):
            idle *= 1.0 - self.terminals[k].q
        return 1.0 - idle

    # -- per-channel hidden-terminal structure ---------------------------------

    def hidden_terminals_for_ue(self, ue: int, channel: int) -> Tuple[int, ...]:
        """Terminals silencing ``ue`` were it assigned to ``channel``."""
        if not 0 <= ue < self.num_ues:
            raise TopologyError(f"unknown UE id {ue}")
        return tuple(
            k
            for k in self.coupled_terminals(channel)
            if ue in self.terminals[k].ues
        )

    def channel_view(self, channel: int) -> InterferenceTopology:
        """The blueprint of ``channel``: all UEs assigned there.

        Terminals that do not couple into ``channel`` appear with empty
        edge sets (they exist, they are just inaudible), so terminal
        indices — and therefore labels, activity streams, and timeline
        events — stay aligned across every channel's view.
        """
        self.plan._check_channel(channel)
        return InterferenceTopology(
            num_ues=self.num_ues,
            q=tuple(t.q for t in self.terminals),
            edges=tuple(
                t.ues if self.couples(k, channel) else frozenset()
                for k, t in enumerate(self.terminals)
            ),
        )

    def effective_topology(
        self, ue_channels: Sequence[int]
    ) -> InterferenceTopology:
        """Resolve a per-UE channel assignment into one engine topology.

        Terminal ``k`` keeps its edge to UE ``u`` iff its leakage couples
        into ``u``'s assigned channel.  The terminal population (and its
        busy probabilities, in order) is preserved verbatim, so the
        engine's seeded activity streams are bit-identical to the
        single-channel construction — only audibility changes.
        """
        if len(ue_channels) != self.num_ues:
            raise TopologyError(
                f"{len(ue_channels)} channel assignments for "
                f"{self.num_ues} UEs"
            )
        channels = tuple(
            self.plan._check_channel(int(c)) for c in ue_channels
        )
        return InterferenceTopology(
            num_ues=self.num_ues,
            q=tuple(t.q for t in self.terminals),
            edges=tuple(
                frozenset(
                    u for u in t.ues if self.couples(k, channels[u])
                )
                for k, t in enumerate(self.terminals)
            ),
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "num_ues": self.num_ues,
            "terminals": [
                {
                    "q": t.q,
                    "ues": sorted(t.ues),
                    "channel": t.channel,
                    "margin_db": t.margin_db,
                }
                for t in self.terminals
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "MultiChannelTopology":
        try:
            terminals = tuple(
                ChannelizedTerminal(
                    q=float(t["q"]),
                    ues=frozenset(int(u) for u in t["ues"]),
                    channel=int(t.get("channel", 0)),
                    margin_db=float(t.get("margin_db", 0.0)),
                )
                for t in data["terminals"]
            )
            return MultiChannelTopology(
                plan=ChannelPlan.from_dict(data["plan"]),
                num_ues=int(data["num_ues"]),
                terminals=terminals,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SpecError(
                f"multichannel topology is malformed: {error}"
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiChannelTopology(N={self.num_ues}, h={self.num_terminals}, "
            f"channels={self.num_channels})"
        )
