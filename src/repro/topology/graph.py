"""The interference topology ``(h, q, Z)`` — ground truth and inferred.

This single structure is the paper's central object (Fig. 6b): a bipartite
graph from ``h`` hidden terminals to ``N`` clients, where hidden terminal
``k`` is busy with stationary probability ``q(k)`` (independently of the
others) and an edge ``z_{ik} = 1`` means client ``i`` defers whenever ``k``
is busy.

Under that model every access probability is a closed form:

* ``p(i)      = prod_{k: z_ik=1} (1 - q_k)``
* ``p(i, j)   = prod_{k: z_ik or z_jk} (1 - q_k)``
* ``P(U clear, V blocked)`` follows by inclusion–exclusion over ``V``.

Both the ground truth produced by scenario generation and the output of
blueprint inference are instances of this class, which keeps comparison
(Fig. 14's accuracy metric) and scheduling interchangeable between them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = ["InterferenceTopology", "edge_set_accuracy", "statistically_equivalent"]


@dataclass(frozen=True)
class InterferenceTopology:
    """An immutable hidden-terminal interference topology.

    Attributes:
        num_ues: number of clients ``N`` (UE ids are ``0..N-1``).
        q: busy probability of each hidden terminal, length ``h``.
        edges: for each hidden terminal, the frozen set of UE ids it silences.
    """

    num_ues: int
    q: Tuple[float, ...]
    edges: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        if self.num_ues < 1:
            raise TopologyError(f"need at least one UE: {self.num_ues}")
        if len(self.q) != len(self.edges):
            raise TopologyError(
                f"{len(self.q)} activity values but {len(self.edges)} edge sets"
            )
        for k, prob in enumerate(self.q):
            if not 0.0 <= prob < 1.0:
                raise TopologyError(
                    f"hidden terminal {k} busy probability outside [0,1): {prob}"
                )
        for k, ue_set in enumerate(self.edges):
            bad = [u for u in ue_set if not 0 <= u < self.num_ues]
            if bad:
                raise TopologyError(
                    f"hidden terminal {k} has edges to unknown UEs {bad}"
                )

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def build(
        num_ues: int,
        terminals: Iterable[Tuple[float, Iterable[int]]],
    ) -> "InterferenceTopology":
        """Build from ``(q, ue_ids)`` pairs."""
        qs: List[float] = []
        edges: List[FrozenSet[int]] = []
        for q, ues in terminals:
            qs.append(float(q))
            edges.append(frozenset(int(u) for u in ues))
        return InterferenceTopology(num_ues=num_ues, q=tuple(qs), edges=tuple(edges))

    @property
    def num_terminals(self) -> int:
        return len(self.q)

    def terminals_for_ue(self, ue: int) -> Tuple[int, ...]:
        """Indices of hidden terminals with an edge to ``ue``."""
        if not 0 <= ue < self.num_ues:
            raise TopologyError(f"unknown UE id {ue}")
        return tuple(k for k, ues in enumerate(self.edges) if ue in ues)

    def ue_edge_map(self) -> Dict[int, FrozenSet[int]]:
        """``{ue: set of hidden-terminal indices heard}`` for all UEs."""
        return {
            ue: frozenset(self.terminals_for_ue(ue)) for ue in range(self.num_ues)
        }

    def edge_matrix(self) -> np.ndarray:
        """``Z`` as a read-only boolean ``(num_terminals, num_ues)`` matrix.

        The matrix is built once and cached on the (frozen) instance; the
        simulation fast path uses it to compute the silenced-UE set of a
        subframe as a single boolean reduction instead of per-UE set
        intersections.
        """
        cached = self.__dict__.get("_edge_matrix_cache")
        if cached is None:
            cached = np.zeros((self.num_terminals, self.num_ues), dtype=bool)
            for k, ues in enumerate(self.edges):
                for ue in ues:
                    cached[k, ue] = True
            cached.setflags(write=False)
            self.__dict__["_edge_matrix_cache"] = cached
        return cached

    # -- derivation (the mutation API) ----------------------------------------
    #
    # Instances are frozen, so the memoized ``edge_matrix`` can never go
    # stale; "mutation" means deriving a new instance.  Dynamics code must
    # only ever evolve a topology through these methods — holders of the old
    # instance (and its cached matrix) keep a consistent pre-change view,
    # and anything keyed on object identity invalidates naturally.

    def with_terminal(
        self, q: float, ues: Iterable[int]
    ) -> "InterferenceTopology":
        """A new topology with one extra hidden terminal appended."""
        return InterferenceTopology(
            num_ues=self.num_ues,
            q=self.q + (float(q),),
            edges=self.edges + (frozenset(int(u) for u in ues),),
        )

    def without_terminal(self, k: int) -> "InterferenceTopology":
        """A new topology with hidden terminal ``k`` removed."""
        if not 0 <= k < self.num_terminals:
            raise TopologyError(f"unknown hidden terminal {k}")
        return InterferenceTopology(
            num_ues=self.num_ues,
            q=self.q[:k] + self.q[k + 1:],
            edges=self.edges[:k] + self.edges[k + 1:],
        )

    def with_terminal_q(self, k: int, q: float) -> "InterferenceTopology":
        """A new topology with terminal ``k``'s busy probability replaced."""
        if not 0 <= k < self.num_terminals:
            raise TopologyError(f"unknown hidden terminal {k}")
        return InterferenceTopology(
            num_ues=self.num_ues,
            q=self.q[:k] + (float(q),) + self.q[k + 1:],
            edges=self.edges,
        )

    # -- access probabilities -----------------------------------------------

    def access_probability(self, ue: int) -> float:
        """``p(i)``: probability the UE's CCA is clear in a subframe."""
        prob = 1.0
        for k in self.terminals_for_ue(ue):
            prob *= 1.0 - self.q[k]
        return prob

    def pairwise_access_probability(self, ue_a: int, ue_b: int) -> float:
        """``p(i, j)``: probability both UEs are clear in the same subframe."""
        if ue_a == ue_b:
            return self.access_probability(ue_a)
        attached = set(self.terminals_for_ue(ue_a)) | set(self.terminals_for_ue(ue_b))
        prob = 1.0
        for k in attached:
            prob *= 1.0 - self.q[k]
        return prob

    def clear_probability(self, ues: Iterable[int]) -> float:
        """Probability every UE in ``ues`` is clear simultaneously."""
        attached = set()
        for ue in ues:
            attached.update(self.terminals_for_ue(ue))
        prob = 1.0
        for k in attached:
            prob *= 1.0 - self.q[k]
        return prob

    def joint_access_probability(
        self, clear_ues: Sequence[int], blocked_ues: Sequence[int] = ()
    ) -> float:
        """Exact ``P(all of clear_ues clear, all of blocked_ues blocked)``.

        Computed by inclusion–exclusion over subsets of ``blocked_ues``:
        ``P(U, V̄) = sum_{S ⊆ V} (-1)^{|S|} P(U ∪ S all clear)``.
        This is the reference implementation against which the recursive
        topology-conditioning computation (Section 3.6) is validated.
        """
        clear = list(dict.fromkeys(clear_ues))
        blocked = list(dict.fromkeys(blocked_ues))
        if set(clear) & set(blocked):
            raise TopologyError(
                f"UEs cannot be both clear and blocked: "
                f"{sorted(set(clear) & set(blocked))}"
            )
        total = 0.0
        for size in range(len(blocked) + 1):
            for subset in itertools.combinations(blocked, size):
                sign = -1.0 if size % 2 else 1.0
                total += sign * self.clear_probability(clear + list(subset))
        # Clamp tiny negative values from floating-point cancellation.
        return max(total, 0.0)

    # -- conditioning (Section 3.6 support) -----------------------------------

    def condition_on_clear(self, ue: int) -> "InterferenceTopology":
        """The topology given that ``ue`` transmitted this subframe.

        Observing ``ue`` clear means every hidden terminal attached to it was
        idle; those terminals are removed (Fig. 8, topology conditioning).
        """
        attached = set(self.terminals_for_ue(ue))
        kept = [
            (self.q[k], self.edges[k])
            for k in range(self.num_terminals)
            if k not in attached
        ]
        return InterferenceTopology(
            num_ues=self.num_ues,
            q=tuple(q for q, _ in kept),
            edges=tuple(e for _, e in kept),
        )

    def restrict(self, num_ues: int) -> "InterferenceTopology":
        """The sub-cell on UEs ``0..num_ues-1``.

        Terminals keep only their edges into the retained population;
        edge-less terminals drop out.  Holding a parent cell fixed while
        sweeping ``num_ues`` makes population sweeps apples-to-apples
        (used by the Fig. 16 benchmark).
        """
        if not 1 <= num_ues <= self.num_ues:
            raise TopologyError(
                f"restriction to {num_ues} UEs outside [1, {self.num_ues}]"
            )
        terminals = []
        for q, ues in zip(self.q, self.edges):
            kept = {u for u in ues if u < num_ues}
            if kept:
                terminals.append((q, kept))
        return InterferenceTopology.build(num_ues, terminals)

    # -- canonical form and comparison ----------------------------------------

    def canonical(self) -> "InterferenceTopology":
        """Merge terminals with identical edge sets; drop edge-less ones.

        Two independent terminals silencing exactly the same clients are
        statistically indistinguishable from one terminal busy with
        probability ``1 - (1-q_a)(1-q_b)``; inference can only ever recover
        the merged form, so comparisons are made in this canonical space.
        Terminals are sorted by (edge set, q) for a deterministic order.
        """
        merged: Dict[FrozenSet[int], float] = {}
        for q, ues in zip(self.q, self.edges):
            if not ues:
                continue
            idle = merged.get(ues, 1.0)
            merged[ues] = idle * (1.0 - q)
        terminals = sorted(
            ((1.0 - idle, ues) for ues, idle in merged.items()),
            key=lambda item: (sorted(item[1]), item[0]),
        )
        return InterferenceTopology(
            num_ues=self.num_ues,
            q=tuple(q for q, _ in terminals),
            edges=tuple(ues for _, ues in terminals),
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "num_ues": self.num_ues,
            "terminals": [
                {"q": q, "ues": sorted(ues)} for q, ues in zip(self.q, self.edges)
            ],
        }

    @staticmethod
    def from_dict(data: Mapping) -> "InterferenceTopology":
        return InterferenceTopology.build(
            num_ues=int(data["num_ues"]),
            terminals=[(t["q"], t["ues"]) for t in data["terminals"]],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InterferenceTopology(N={self.num_ues}, h={self.num_terminals})"
        )


def statistically_equivalent(
    left: InterferenceTopology,
    right: InterferenceTopology,
    tolerance: float = 1e-6,
) -> bool:
    """Whether two topologies induce the same pair-wise access statistics.

    Ambiguity is fundamental in skewed regimes (Section 3.5): structurally
    different blueprints can be indistinguishable from pair-wise
    measurements.  This predicate captures the equivalence class the
    scheduler actually cares about — every individual and pair-wise access
    probability within ``tolerance``.
    """
    if left.num_ues != right.num_ues:
        return False
    for i in range(left.num_ues):
        if abs(
            left.access_probability(i) - right.access_probability(i)
        ) > tolerance:
            return False
    for i in range(left.num_ues):
        for j in range(i + 1, left.num_ues):
            if abs(
                left.pairwise_access_probability(i, j)
                - right.pairwise_access_probability(i, j)
            ) > tolerance:
                return False
    return True


def edge_set_accuracy(
    inferred: InterferenceTopology, truth: InterferenceTopology
) -> float:
    """Fig. 14's stringent accuracy metric.

    The fraction of ground-truth hidden terminals whose *exact* edge set
    appears among the inferred terminals ("even a single missing edge will
    prevent the match").  Both topologies are canonicalized first, so
    statistically indistinguishable duplicates do not distort the score.
    """
    truth_sets = [ues for ues in truth.canonical().edges]
    if not truth_sets:
        return 1.0
    inferred_sets = set(inferred.canonical().edges)
    matched = sum(1 for ues in truth_sets if ues in inferred_sets)
    return matched / len(truth_sets)
