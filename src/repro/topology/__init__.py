"""Deployment geometry, ground-truth interference graphs, and scenarios."""

from repro.topology.generator import Scenario, ScenarioConfig, generate_scenario
from repro.topology.geometry import NodeLayout, Position, rx_power_map
from repro.topology.graph import (
    InterferenceTopology,
    edge_set_accuracy,
    statistically_equivalent,
)
from repro.topology.hidden import (
    DEFAULT_HARM_THRESHOLD_DBM,
    HiddenTerminalComparison,
    channelized_hidden_terminals,
    compare_wifi_vs_lte_cell,
    count_cell_hidden_terminals,
    hidden_terminal_channel_map,
    hidden_terminals_per_link,
)
from repro.topology.multichannel import ChannelizedTerminal, MultiChannelTopology
from repro.topology.scenarios import (
    channel_drift_timeline,
    client_churn_timeline,
    duty_cycle_drift_timeline,
    fig1_topology,
    hidden_node_churn_timeline,
    skewed_topology,
    testbed_topology,
    uniform_snrs,
)

__all__ = [
    "DEFAULT_HARM_THRESHOLD_DBM",
    "ChannelizedTerminal",
    "HiddenTerminalComparison",
    "InterferenceTopology",
    "MultiChannelTopology",
    "NodeLayout",
    "Position",
    "Scenario",
    "ScenarioConfig",
    "channel_drift_timeline",
    "channelized_hidden_terminals",
    "client_churn_timeline",
    "compare_wifi_vs_lte_cell",
    "count_cell_hidden_terminals",
    "duty_cycle_drift_timeline",
    "edge_set_accuracy",
    "fig1_topology",
    "hidden_node_churn_timeline",
    "hidden_terminal_channel_map",
    "generate_scenario",
    "hidden_terminals_per_link",
    "rx_power_map",
    "skewed_topology",
    "statistically_equivalent",
    "testbed_topology",
    "uniform_snrs",
]
