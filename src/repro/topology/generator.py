"""Scenario generation: random enterprise deployments with ground truth.

A :class:`Scenario` bundles everything an experiment needs:

* the geometric layout and received-power maps;
* the classification of WiFi nodes into eNB-audible interferers, hidden
  terminals (hidden from the eNB, audible at >= 1 UE), and inert nodes;
* the ground-truth :class:`~repro.topology.graph.InterferenceTopology`;
* per-UE mean uplink SNRs;
* per-hidden-terminal activity probabilities.

This generator doubles as the substitute for both the paper's 150 testbed
topologies and its 300 NS3 stress topologies (same artifacts, synthetic
placement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts
from repro.lte.channel import PathLossModel
from repro.spectrum.activity import (
    ActivityProcess,
    BernoulliActivity,
    ExclusiveGroupActivity,
    MarkovOnOffActivity,
)
from repro.spectrum.cca import WIFI_PREAMBLE_SENSING
from repro.topology.geometry import NodeLayout, rx_power_map
from repro.topology.graph import InterferenceTopology

__all__ = ["Scenario", "ScenarioConfig", "generate_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of a random scenario draw."""

    num_ues: int = 8
    num_wifi: int = 12
    area_m: float = 160.0
    cell_radius_m: float = 25.0
    ue_ed_threshold_dbm: float = consts.DEFAULT_ED_THRESHOLD_DBM
    enb_ed_threshold_dbm: float = consts.DEFAULT_ED_THRESHOLD_DBM
    wifi_tx_power_dbm: float = consts.DEFAULT_TX_POWER_DBM
    ue_tx_power_dbm: float = consts.DEFAULT_TX_POWER_DBM
    activity_low: float = 0.1
    activity_high: float = 0.5
    path_loss_exponent: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.activity_low <= self.activity_high < 1.0:
            raise ConfigurationError(
                "activity range must satisfy 0 <= low <= high < 1: "
                f"[{self.activity_low}, {self.activity_high}]"
            )


@dataclass
class Scenario:
    """A fully specified deployment with ground truth."""

    config: ScenarioConfig
    layout: NodeLayout
    powers: Dict[str, Dict[Tuple[int, int], float]]
    topology: InterferenceTopology
    ht_wifi_ids: Tuple[int, ...]
    enb_audible_wifi: FrozenSet[int]
    inert_wifi: FrozenSet[int]
    ue_mean_snr_db: Dict[int, float]
    wifi_activity: Dict[int, float]

    @property
    def num_ues(self) -> int:
        return self.layout.num_ues

    @property
    def num_hidden_terminals(self) -> int:
        return self.topology.num_terminals

    def enb_busy_probability(self) -> float:
        """Probability >= 1 eNB-audible WiFi node is busy in a subframe.

        These nodes gate TxOP acquisition rather than silencing UEs.
        """
        idle = 1.0
        for wifi_id in self.enb_audible_wifi:
            idle *= 1.0 - self.wifi_activity[wifi_id]
        return 1.0 - idle

    def contention_groups(self, max_group_airtime: float = 0.95):
        """Partition hidden terminals into CSMA contention cliques.

        Two hidden terminals contend (and thus time-share the medium) only
        when they can carrier-sense *each other's* WiFi preambles, so
        mutual exclusion holds within cliques of the mutual-audibility
        graph — not whole connected components (A-B and B-C audible does
        not stop A and C overlapping).  The graph is covered greedily by
        cliques: repeatedly seed with the highest-degree unassigned
        terminal and grow with mutually-adjacent neighbours.

        Cliques whose summed airtime would exceed ``max_group_airtime``
        are rescaled in the returned marginals — contention cannot grant
        more than the channel's worth of airtime.

        Returns ``(marginals, groups)``: per-terminal busy probabilities
        (possibly rescaled) and the list of index cliques (size >= 2).
        """
        n = self.topology.num_terminals
        marginals = [float(q) for q in self.topology.q]
        adjacency: Dict[int, set] = {k: set() for k in range(n)}
        for a_pos, a_wifi in enumerate(self.ht_wifi_ids):
            for b_pos, b_wifi in enumerate(self.ht_wifi_ids):
                if a_pos >= b_pos:
                    continue
                power_ab = self.powers["wifi_at_wifi"][(a_wifi, b_wifi)]
                power_ba = self.powers["wifi_at_wifi"][(b_wifi, a_wifi)]
                if WIFI_PREAMBLE_SENSING.senses(power_ab) and (
                    WIFI_PREAMBLE_SENSING.senses(power_ba)
                ):
                    adjacency[a_pos].add(b_pos)
                    adjacency[b_pos].add(a_pos)

        groups: List[List[int]] = []
        unassigned = set(range(n))
        while unassigned:
            seed_node = max(
                sorted(unassigned),
                key=lambda k: len(adjacency[k] & unassigned),
            )
            clique = {seed_node}
            candidates = adjacency[seed_node] & unassigned
            while candidates:
                best = max(
                    sorted(candidates),
                    key=lambda k: len(adjacency[k] & candidates),
                )
                clique.add(best)
                candidates &= adjacency[best]
            unassigned -= clique
            if len(clique) > 1:
                groups.append(sorted(clique))

        for group in groups:
            total = sum(marginals[k] for k in group)
            if total > max_group_airtime:
                scale = max_group_airtime / total
                for k in group:
                    marginals[k] *= scale
        return marginals, groups

    def power_silencer(self):
        """An energy-aggregation silencing function for the engine.

        The blueprint's binary edge model treats each hidden terminal as
        silencing a fixed UE set; physically, CCA compares the *aggregate*
        received energy against the threshold, so several sub-threshold
        interferers can jointly silence a UE none of them silences alone.
        Returns ``silencer(active_terminal_indices) -> set of silenced
        UEs`` computed from the scenario's received-power map (inert and
        eNB-audible WiFi nodes excluded: only hidden terminals are driven
        by the activity model).
        """
        from repro.spectrum.medium import MediumSnapshot, silenced_ues_from_power

        rx_power = {
            ue: {
                position: self.powers["wifi_at_ue"][(wifi_id, ue)]
                for position, wifi_id in enumerate(self.ht_wifi_ids)
            }
            for ue in sorted(self.layout.ues)
        }
        thresholds = {
            ue: self.config.ue_ed_threshold_dbm for ue in sorted(self.layout.ues)
        }

        def silencer(active):
            snapshot = MediumSnapshot.make(0, active)
            return silenced_ues_from_power(snapshot, rx_power, thresholds)

        return silencer

    def activity_model(
        self, rng: Optional[np.random.Generator] = None
    ) -> ExclusiveGroupActivity:
        """Contention-coupled activity model for this scenario's terminals."""
        marginals, groups = self.contention_groups()
        return ExclusiveGroupActivity(marginals, groups, rng=rng)

    def activity_processes(
        self,
        kind: str = "bernoulli",
        mean_busy_subframes: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> List[ActivityProcess]:
        """One activity process per hidden terminal, in topology order."""
        rng = rng if rng is not None else np.random.default_rng()
        processes: List[ActivityProcess] = []
        for index in range(self.topology.num_terminals):
            q = self.topology.q[index]
            child = np.random.default_rng(rng.integers(0, 2**63))
            if kind == "bernoulli":
                processes.append(BernoulliActivity(q, rng=child))
            elif kind == "markov":
                processes.append(
                    MarkovOnOffActivity(q, mean_busy_subframes, rng=child)
                )
            else:
                raise ConfigurationError(f"unknown activity kind: {kind!r}")
        return processes


def generate_scenario(
    config: Optional[ScenarioConfig] = None,
    seed: Optional[int] = None,
) -> Scenario:
    """Draw a random scenario and derive its ground-truth topology.

    WiFi nodes are classified by received power:

    * audible at the eNB (>= eNB ED threshold): they delay TxOP acquisition
      and are excluded from the hidden-terminal set;
    * hidden from the eNB but audible at >= 1 UE (>= UE ED threshold): these
      are the hidden terminals, with one topology edge per audible UE;
    * audible nowhere: inert, ignored.
    """
    if config is None:
        config = ScenarioConfig()
    rng = np.random.default_rng(seed)
    path_loss = PathLossModel(exponent=config.path_loss_exponent)
    layout = NodeLayout.random(
        num_ues=config.num_ues,
        num_wifi=config.num_wifi,
        area_m=config.area_m,
        cell_radius_m=config.cell_radius_m,
        rng=rng,
    )
    powers = rx_power_map(layout, path_loss, config.wifi_tx_power_dbm)
    # UE->eNB powers use the UE transmit power.
    powers["ue_at_enb"] = {
        (u, 0): path_loss.rx_power_dbm(
            config.ue_tx_power_dbm, layout.ue_distance_to_enb(u)
        )
        for u in layout.ues
    }

    wifi_activity = {
        w: float(rng.uniform(config.activity_low, config.activity_high))
        for w in layout.wifi
    }

    enb_audible: List[int] = []
    terminals: List[Tuple[float, List[int]]] = []
    ht_wifi_ids: List[int] = []
    inert: List[int] = []
    for wifi_id in sorted(layout.wifi):
        at_enb = powers["wifi_at_enb"][(wifi_id, 0)]
        if at_enb >= config.enb_ed_threshold_dbm:
            enb_audible.append(wifi_id)
            continue
        audible_ues = [
            ue
            for ue in sorted(layout.ues)
            if powers["wifi_at_ue"][(wifi_id, ue)] >= config.ue_ed_threshold_dbm
        ]
        if audible_ues:
            terminals.append((wifi_activity[wifi_id], audible_ues))
            ht_wifi_ids.append(wifi_id)
        else:
            inert.append(wifi_id)

    topology = InterferenceTopology.build(config.num_ues, terminals)
    ue_mean_snr_db = {
        u: powers["ue_at_enb"][(u, 0)] - consts.NOISE_FLOOR_10MHZ_DBM
        for u in layout.ues
    }
    return Scenario(
        config=config,
        layout=layout,
        powers=powers,
        topology=topology,
        ht_wifi_ids=tuple(ht_wifi_ids),
        enb_audible_wifi=frozenset(enb_audible),
        inert_wifi=frozenset(inert),
        ue_mean_snr_db=ue_mean_snr_db,
        wifi_activity=wifi_activity,
    )
