"""Hidden-terminal counting under different sensing models (Fig. 4c).

Fig. 4c of the paper shows that replacing one WiFi cell with an LTE cell in
an otherwise-WiFi network more than doubles the number of interfering
(hidden-to-transmitter) terminals, because the heterogeneous pair must rely
on energy sensing ([-70, -65] dBm) instead of WiFi's preamble sensing
(-85 dBm).

The counting rule, applied per uplink (client -> base) link: ambient node
``n`` is a hidden terminal for the link when

* the *sender* cannot sense ``n`` (rx power at the client below the client's
  sensing threshold), so it will not defer to ``n``; and
* ``n`` is nonetheless harmful — strong enough at the *receiver* (base) to
  corrupt reception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Set, Tuple

from repro.spectrum.cca import SensingModel, LTE_ENERGY_SENSING, WIFI_PREAMBLE_SENSING
from repro.topology.geometry import NodeLayout

__all__ = [
    "DEFAULT_HARM_THRESHOLD_DBM",
    "HiddenTerminalComparison",
    "hidden_terminals_per_link",
    "channelized_hidden_terminals",
    "hidden_terminal_channel_map",
    "count_cell_hidden_terminals",
    "compare_wifi_vs_lte_cell",
]

#: Interference is "harmful" at the receiver above this power — roughly the
#: level at which a WiFi frame raises the noise floor enough to corrupt a
#: mid-MCS LTE reception.
DEFAULT_HARM_THRESHOLD_DBM = -82.0


def hidden_terminals_per_link(
    client_id: int,
    powers: Mapping[str, Mapping[Tuple[int, int], float]],
    sender_sensing: SensingModel,
    harm_threshold_dbm: float = DEFAULT_HARM_THRESHOLD_DBM,
) -> FrozenSet[int]:
    """Ambient WiFi nodes hidden from ``client_id``'s uplink transmission."""
    hidden: Set[int] = set()
    for (wifi_id, ue), rx_at_client in powers["wifi_at_ue"].items():
        if ue != client_id:
            continue
        rx_at_base = powers["wifi_at_enb"][(wifi_id, 0)]
        if not sender_sensing.senses(rx_at_client) and rx_at_base >= harm_threshold_dbm:
            hidden.add(wifi_id)
    return frozenset(hidden)


def channelized_hidden_terminals(
    client_id: int,
    powers: Mapping[str, Mapping[Tuple[int, int], float]],
    sender_sensing: SensingModel,
    plan,
    wifi_channels: Mapping[int, int],
    link_channel: int,
    harm_threshold_dbm: float = DEFAULT_HARM_THRESHOLD_DBM,
) -> FrozenSet[int]:
    """Hidden terminals of one uplink were it carried on ``link_channel``.

    Same counting rule as :func:`hidden_terminals_per_link`, but every
    ambient node's received power — at the sensing client *and* at the
    harmed base — is first attenuated by the plan's ACLR between the
    link's channel and the node's home channel.  The attenuation cuts
    both ways: a node can fall below the harm threshold (inert on this
    channel) or below the sensing threshold while staying harmful (a
    *cross-channel* hidden terminal).
    """
    hidden: Set[int] = set()
    for (wifi_id, ue), rx_at_client in powers["wifi_at_ue"].items():
        if ue != client_id:
            continue
        attenuation = plan.aclr_db(link_channel, int(wifi_channels[wifi_id]))
        rx_at_base = powers["wifi_at_enb"][(wifi_id, 0)] - attenuation
        sensed = sender_sensing.senses(rx_at_client - attenuation)
        if not sensed and rx_at_base >= harm_threshold_dbm:
            hidden.add(wifi_id)
    return frozenset(hidden)


def hidden_terminal_channel_map(
    client_id: int,
    powers: Mapping[str, Mapping[Tuple[int, int], float]],
    sender_sensing: SensingModel,
    plan,
    wifi_channels: Mapping[int, int],
    harm_threshold_dbm: float = DEFAULT_HARM_THRESHOLD_DBM,
) -> Dict[int, FrozenSet[int]]:
    """``{channel: hidden set}`` for one uplink across a whole plan.

    The per-channel face of Fig. 4c: the same geometry yields different
    hidden-terminal sets on different channels, so a terminal can be
    hidden on channel 0 and absent (or audible) on channel 1 — the
    structure channel selection exploits.
    """
    return {
        channel: channelized_hidden_terminals(
            client_id,
            powers,
            sender_sensing,
            plan,
            wifi_channels,
            channel,
            harm_threshold_dbm,
        )
        for channel in range(plan.num_channels)
    }


def count_cell_hidden_terminals(
    layout: NodeLayout,
    powers: Mapping[str, Mapping[Tuple[int, int], float]],
    sender_sensing: SensingModel,
    harm_threshold_dbm: float = DEFAULT_HARM_THRESHOLD_DBM,
) -> int:
    """Distinct hidden terminals across all of the cell's uplink links."""
    hidden: Set[int] = set()
    for ue in layout.ues:
        hidden |= hidden_terminals_per_link(
            ue, powers, sender_sensing, harm_threshold_dbm
        )
    return len(hidden)


@dataclass(frozen=True)
class HiddenTerminalComparison:
    """Result of one Fig. 4c comparison on a fixed geometry."""

    wifi_cell_count: int
    lte_cell_count: int

    @property
    def ratio(self) -> float:
        if self.wifi_cell_count == 0:
            return float(self.lte_cell_count) if self.lte_cell_count else 1.0
        return self.lte_cell_count / self.wifi_cell_count


def compare_wifi_vs_lte_cell(
    layout: NodeLayout,
    powers: Mapping[str, Mapping[Tuple[int, int], float]],
    wifi_sensing: SensingModel = WIFI_PREAMBLE_SENSING,
    lte_sensing: SensingModel = LTE_ENERGY_SENSING,
    harm_threshold_dbm: float = DEFAULT_HARM_THRESHOLD_DBM,
) -> HiddenTerminalComparison:
    """Count hidden terminals with the cell as WiFi versus as LTE.

    Same geometry, same ambient nodes; only the sender-side sensing changes
    (preamble detection when the cell is WiFi, energy detection when it is
    LTE).  The paper reports the LTE count exceeding the WiFi count by well
    over two times.
    """
    wifi_count = count_cell_hidden_terminals(
        layout, powers, wifi_sensing, harm_threshold_dbm
    )
    lte_count = count_cell_hidden_terminals(
        layout, powers, lte_sensing, harm_threshold_dbm
    )
    return HiddenTerminalComparison(
        wifi_cell_count=wifi_count, lte_cell_count=lte_count
    )
