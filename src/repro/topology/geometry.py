"""Planar geometry: node placement, distances, and received-power maps.

Scenario generation places an eNB, its UEs, and WiFi nodes on a plane;
received powers through a log-distance path-loss model then determine every
sensing and interference relationship (who defers to whom, who is hidden
from whom).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts
from repro.lte.channel import PathLossModel

__all__ = [
    "Position",
    "NodeLayout",
    "rx_power_map",
    "grid_positions",
    "poisson_positions",
    "disc_positions",
]


@dataclass(frozen=True)
class Position:
    """A point in the 2-D deployment plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass
class NodeLayout:
    """Positions of every node in a scenario, keyed by (kind, id).

    Kinds are ``"enb"``, ``"ue"``, and ``"wifi"``; ids are dense integers
    within each kind.  The eNB always has id 0.
    """

    enb: Position
    ues: Dict[int, Position]
    wifi: Dict[int, Position]

    def __post_init__(self) -> None:
        if not self.ues:
            raise ConfigurationError("layout needs at least one UE")

    @property
    def num_ues(self) -> int:
        return len(self.ues)

    @property
    def num_wifi(self) -> int:
        return len(self.wifi)

    def ue_distance_to_enb(self, ue_id: int) -> float:
        return self.ues[ue_id].distance_to(self.enb)

    def wifi_distance_to_enb(self, wifi_id: int) -> float:
        return self.wifi[wifi_id].distance_to(self.enb)

    def wifi_distance_to_ue(self, wifi_id: int, ue_id: int) -> float:
        return self.wifi[wifi_id].distance_to(self.ues[ue_id])

    @staticmethod
    def random(
        num_ues: int,
        num_wifi: int,
        area_m: float = 160.0,
        cell_radius_m: float = 25.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "NodeLayout":
        """Place the eNB at the area centre, UEs within ``cell_radius_m`` of
        it, and WiFi nodes uniformly over the whole area (an enterprise
        floor with the LTE cell embedded in ambient WiFi)."""
        if num_ues < 1:
            raise ConfigurationError(f"need at least one UE: {num_ues}")
        if num_wifi < 0:
            raise ConfigurationError(f"negative WiFi count: {num_wifi}")
        if cell_radius_m <= 0 or area_m <= 0:
            raise ConfigurationError("area and cell radius must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        centre = Position(area_m / 2.0, area_m / 2.0)

        ues: Dict[int, Position] = {}
        for ue in range(num_ues):
            radius = cell_radius_m * math.sqrt(rng.random())
            angle = 2.0 * math.pi * rng.random()
            ues[ue] = Position(
                centre.x + radius * math.cos(angle),
                centre.y + radius * math.sin(angle),
            )

        wifi: Dict[int, Position] = {
            w: Position(float(rng.uniform(0, area_m)), float(rng.uniform(0, area_m)))
            for w in range(num_wifi)
        }
        return NodeLayout(enb=centre, ues=ues, wifi=wifi)


def grid_positions(
    rows: int,
    cols: int,
    spacing_m: float,
    origin_m: float = 0.0,
) -> Tuple[Position, ...]:
    """Regular ``rows x cols`` lattice of positions, row-major order.

    The hexagonal-grid idealization of a planned multi-cell deployment:
    eNB ``r * cols + c`` sits at ``(origin + c * spacing, origin + r *
    spacing)``.
    """
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"grid needs rows, cols >= 1: {rows}x{cols}")
    if spacing_m <= 0:
        raise ConfigurationError(f"grid spacing must be positive: {spacing_m}")
    return tuple(
        Position(origin_m + c * spacing_m, origin_m + r * spacing_m)
        for r in range(rows)
        for c in range(cols)
    )


def poisson_positions(
    num: int,
    width_m: float,
    height_m: float,
    rng: np.random.Generator,
) -> Tuple[Position, ...]:
    """``num`` points uniform over a ``width x height`` rectangle.

    A Poisson point process conditioned on its count (a binomial point
    process) — the stochastic-geometry placement model for unplanned
    multi-operator deployments sharing unlicensed spectrum.
    """
    if num < 1:
        raise ConfigurationError(f"need at least one point: {num}")
    if width_m <= 0 or height_m <= 0:
        raise ConfigurationError(
            f"area must be positive: {width_m}x{height_m}"
        )
    xs = rng.uniform(0.0, width_m, size=num)
    ys = rng.uniform(0.0, height_m, size=num)
    return tuple(Position(float(x), float(y)) for x, y in zip(xs, ys))


def disc_positions(
    num: int,
    centre: Position,
    radius_m: float,
    rng: np.random.Generator,
) -> Tuple[Position, ...]:
    """``num`` points uniform over a disc — a cell's client population."""
    if num < 1:
        raise ConfigurationError(f"need at least one point: {num}")
    if radius_m <= 0:
        raise ConfigurationError(f"radius must be positive: {radius_m}")
    positions = []
    for _ in range(num):
        radius = radius_m * math.sqrt(rng.random())
        angle = 2.0 * math.pi * rng.random()
        positions.append(
            Position(
                centre.x + radius * math.cos(angle),
                centre.y + radius * math.sin(angle),
            )
        )
    return tuple(positions)


def rx_power_map(
    layout: NodeLayout,
    path_loss: Optional[PathLossModel] = None,
    tx_power_dbm: float = consts.DEFAULT_TX_POWER_DBM,
) -> Dict[str, Dict[Tuple[int, int], float]]:
    """Received powers (dBm) for every link class in a layout.

    Returns a dict with keys:

    * ``"wifi_at_ue"``: ``{(wifi, ue): dBm}``
    * ``"wifi_at_enb"``: ``{(wifi, 0): dBm}``
    * ``"ue_at_enb"``: ``{(ue, 0): dBm}``
    * ``"wifi_at_wifi"``: ``{(wifi_a, wifi_b): dBm}`` for ``a != b``
    """
    model = path_loss if path_loss is not None else PathLossModel()

    wifi_at_ue = {
        (w, u): model.rx_power_dbm(tx_power_dbm, layout.wifi_distance_to_ue(w, u))
        for w in layout.wifi
        for u in layout.ues
    }
    wifi_at_enb = {
        (w, 0): model.rx_power_dbm(tx_power_dbm, layout.wifi_distance_to_enb(w))
        for w in layout.wifi
    }
    ue_at_enb = {
        (u, 0): model.rx_power_dbm(tx_power_dbm, layout.ue_distance_to_enb(u))
        for u in layout.ues
    }
    wifi_at_wifi = {
        (a, b): model.rx_power_dbm(
            tx_power_dbm, layout.wifi[a].distance_to(layout.wifi[b])
        )
        for a in layout.wifi
        for b in layout.wifi
        if a != b
    }
    return {
        "wifi_at_ue": wifi_at_ue,
        "wifi_at_enb": wifi_at_enb,
        "ue_at_enb": ue_at_enb,
        "wifi_at_wifi": wifi_at_wifi,
    }
