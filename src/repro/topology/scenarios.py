"""Canonical hand-built topologies used across examples, tests, benchmarks.

These mirror the fixed setups in the paper:

* :func:`fig1_topology` — the running example of Fig. 1 (seven clients,
  three hidden terminals with disjoint footprints).
* :func:`testbed_topology` — the WARP testbed shape of Section 4.1: a small
  cell where each UE is affected by a configurable number of hidden
  terminals (the x-axis of Figs. 10–13).
* :func:`skewed_topology` — more hidden terminals than clients, the
  ambiguous regime discussed in Section 3.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.topology.graph import InterferenceTopology

__all__ = [
    "fig1_topology",
    "testbed_topology",
    "skewed_topology",
    "uniform_snrs",
    "contention_pairs",
    "hidden_node_churn_timeline",
    "duty_cycle_drift_timeline",
    "channel_drift_timeline",
    "client_churn_timeline",
]


def fig1_topology(activity: float = 0.3) -> InterferenceTopology:
    """The Fig. 1 running example: 7 clients, 3 hidden terminals.

    H1 (WiFi) silences clients 0 and 1; H2 (WiFi) silences clients 2 and 3;
    H3 (LTE) silences clients 4 and 5.  Client 6 is interference-free —
    the interference-diversity structure BLU exploits.
    """
    return InterferenceTopology.build(
        num_ues=7,
        terminals=[
            (activity, [0, 1]),
            (activity, [2, 3]),
            (activity, [4, 5]),
        ],
    )


def testbed_topology(
    num_ues: int = 4,
    hts_per_ue: int = 1,
    activity: float = 0.25,
    shared_fraction: float = 0.25,
    spread: float = 0.8,
    seed: Optional[int] = None,
) -> InterferenceTopology:
    """A testbed-like cell: each UE hears ``hts_per_ue`` hidden terminals.

    A ``shared_fraction`` of terminals straddle two adjacent UEs (spatially
    overlapping footprints), the rest are private to one UE.  Per-terminal
    airtime is drawn from ``activity * U(1 - spread, 1 + spread)`` — the
    heterogeneity ("each UE is affected by the hidden terminal traffic
    differently") that makes some clients near-always clear and others
    near-always blocked, which is where interference diversity pays.
    """
    if num_ues < 1:
        raise ConfigurationError(f"need at least one UE: {num_ues}")
    if hts_per_ue < 0:
        raise ConfigurationError(f"negative hts_per_ue: {hts_per_ue}")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ConfigurationError(
            f"shared_fraction outside [0,1]: {shared_fraction}"
        )
    if not 0.0 <= spread < 1.0:
        raise ConfigurationError(f"spread outside [0,1): {spread}")
    rng = np.random.default_rng(seed)
    terminals: List[Tuple[float, List[int]]] = []
    for ue in range(num_ues):
        for _ in range(hts_per_ue):
            q = float(np.clip(activity * rng.uniform(1.0 - spread, 1.0 + spread), 0.02, 0.95))
            if num_ues > 1 and rng.random() < shared_fraction:
                neighbour = (ue + 1) % num_ues
                terminals.append((q, [ue, neighbour]))
            else:
                terminals.append((q, [ue]))
    return InterferenceTopology.build(num_ues, terminals)


def skewed_topology(
    num_ues: int = 4,
    num_terminals: int = 10,
    activity_low: float = 0.05,
    activity_high: float = 0.3,
    seed: Optional[int] = None,
) -> InterferenceTopology:
    """More hidden terminals than clients (Section 3.5's ambiguous regime)."""
    if num_terminals < 1:
        raise ConfigurationError(f"need at least one terminal: {num_terminals}")
    rng = np.random.default_rng(seed)
    terminals: List[Tuple[float, List[int]]] = []
    for _ in range(num_terminals):
        q = float(rng.uniform(activity_low, activity_high))
        footprint = int(rng.integers(1, max(2, num_ues // 2) + 1))
        ues = sorted(rng.choice(num_ues, size=footprint, replace=False).tolist())
        terminals.append((q, ues))
    return InterferenceTopology.build(num_ues, terminals)


def hidden_node_churn_timeline(
    arrive_at: int,
    q: float = 0.4,
    ues: Tuple[int, ...] = (0, 1),
    depart_at: Optional[int] = None,
    label: str = "wifi-late",
    activity_kind: str = "bernoulli",
    seed: Optional[int] = None,
):
    """The paper's headline dynamic: a hidden WiFi node appears mid-run.

    A terminal labelled ``label`` with busy probability ``q`` starts
    silencing ``ues`` at subframe ``arrive_at`` and (optionally) leaves at
    ``depart_at``.  Pairs with any static topology from this module.
    """
    # Imported lazily: repro.dynamics depends on repro.topology, not the
    # other way round.
    from repro.dynamics.timeline import (
        EnvironmentTimeline,
        HiddenNodeArrival,
        HiddenNodeDeparture,
    )

    events: list = [
        HiddenNodeArrival(
            at=arrive_at,
            q=q,
            ues=tuple(ues),
            label=label,
            activity_kind=activity_kind,
            seed=seed,
        )
    ]
    if depart_at is not None:
        if depart_at <= arrive_at:
            raise ConfigurationError(
                f"departure at {depart_at} not after arrival at {arrive_at}"
            )
        events.append(HiddenNodeDeparture(at=depart_at, label=label))
    return EnvironmentTimeline(events)


def duty_cycle_drift_timeline(
    drift_at: int,
    label: str = "ht0",
    q: float = 0.6,
    steps: int = 1,
    step_gap: int = 500,
    q_start: Optional[float] = None,
):
    """A hidden terminal's load shifts, abruptly or as a staircase.

    With ``steps == 1`` terminal ``label`` jumps to ``q`` at ``drift_at``;
    otherwise its busy probability moves from ``q_start`` (required) to
    ``q`` in ``steps`` equal increments spaced ``step_gap`` subframes.
    """
    from repro.dynamics.timeline import DutyCycleDrift, EnvironmentTimeline

    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1: {steps}")
    if steps > 1 and q_start is None:
        raise ConfigurationError("a staircase drift needs q_start")
    events = []
    for k in range(1, steps + 1):
        level = (
            q
            if steps == 1
            else q_start + (q - q_start) * k / steps
        )
        events.append(
            DutyCycleDrift(
                at=drift_at + (k - 1) * step_gap, label=label, q=level
            )
        )
    return EnvironmentTimeline(events)


def channel_drift_timeline(
    drift_at: int,
    channel: int,
    q: float,
    terminal_channels: Tuple[int, ...],
    steps: int = 1,
    step_gap: int = 500,
    q_start: Optional[float] = None,
):
    """Duty-cycle drift of every hidden terminal homed on one channel.

    The per-channel face of :func:`duty_cycle_drift_timeline`: traffic
    load shifts are frequency-local (an office's Wi-Fi AP serves one
    channel), so all terminals whose home channel — position ``k`` of
    ``terminal_channels`` maps terminal label ``ht{k}`` — equals
    ``channel`` drift together, to ``q`` at ``drift_at`` or as a
    staircase from ``q_start``.  Terminals on other channels keep their
    busy probabilities, so the event stream composes with any per-UE
    channel assignment.
    """
    from repro.dynamics.timeline import DutyCycleDrift, EnvironmentTimeline

    if channel < 0:
        raise ConfigurationError(f"negative channel index: {channel}")
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1: {steps}")
    if steps > 1 and q_start is None:
        raise ConfigurationError("a staircase drift needs q_start")
    labels = [
        f"ht{k}"
        for k, home in enumerate(terminal_channels)
        if int(home) == channel
    ]
    if not labels:
        raise ConfigurationError(
            f"no hidden terminal is homed on channel {channel}: "
            f"{list(terminal_channels)}"
        )
    events = []
    for k in range(1, steps + 1):
        level = q if steps == 1 else q_start + (q - q_start) * k / steps
        at = drift_at + (k - 1) * step_gap
        events.extend(
            DutyCycleDrift(at=at, label=label, q=level) for label in labels
        )
    return EnvironmentTimeline(events)


def client_churn_timeline(
    leave_at: int,
    ue: int,
    rejoin_at: Optional[int] = None,
    ramp_delta_db: float = 0.0,
    ramp_duration: int = 500,
):
    """A client detaches (and optionally re-attaches with a changed link).

    ``ramp_delta_db`` applies a mean-SNR ramp over ``ramp_duration``
    subframes starting at the rejoin (mobility: the client comes back
    somewhere else).
    """
    from repro.dynamics.timeline import (
        EnvironmentTimeline,
        LinkStrengthRamp,
        UeJoin,
        UeLeave,
    )

    events: list = [UeLeave(at=leave_at, ue=ue)]
    if rejoin_at is not None:
        if rejoin_at <= leave_at:
            raise ConfigurationError(
                f"rejoin at {rejoin_at} not after leave at {leave_at}"
            )
        events.append(UeJoin(at=rejoin_at, ue=ue))
        if ramp_delta_db:
            events.append(
                LinkStrengthRamp(
                    at=rejoin_at,
                    ue=ue,
                    delta_db=ramp_delta_db,
                    duration=ramp_duration,
                )
            )
    elif ramp_delta_db:
        raise ConfigurationError("a ramp without a rejoin has no effect")
    return EnvironmentTimeline(events)


def uniform_snrs(
    num_ues: int,
    low_db: float = 12.0,
    high_db: float = 28.0,
    seed: Optional[int] = None,
) -> Dict[int, float]:
    """Per-UE mean uplink SNRs drawn uniformly — heterogeneous channels."""
    rng = np.random.default_rng(seed)
    return {u: float(rng.uniform(low_db, high_db)) for u in range(num_ues)}


def contention_pairs(
    topology: InterferenceTopology,
    contention_fraction: float = 1.0,
    seed: Optional[int] = None,
) -> List[List[int]]:
    """Pair up hidden terminals with disjoint footprints into CSMA groups.

    Synthetic counterpart of a geometric scenario\'s contention structure:
    hidden terminals near each other carrier-sense one another and
    time-share the medium, yet (being in different corners of the cell)
    silence different clients.  Pairs are formed greedily between terminals
    with disjoint client footprints whose combined airtime stays under 0.95;
    ``contention_fraction`` controls how much of the terminal population
    contends at all.
    """
    if not 0.0 <= contention_fraction <= 1.0:
        raise ConfigurationError(
            f"contention_fraction outside [0,1]: {contention_fraction}"
        )
    rng = np.random.default_rng(seed)
    indices = list(range(topology.num_terminals))
    rng.shuffle(indices)
    cutoff = int(round(contention_fraction * len(indices)))
    eligible = indices[:cutoff]
    groups: List[List[int]] = []
    used: set = set()
    for a in eligible:
        if a in used:
            continue
        for b in eligible:
            if b == a or b in used:
                continue
            disjoint = not (topology.edges[a] & topology.edges[b])
            feasible = topology.q[a] + topology.q[b] < 0.95
            if disjoint and feasible:
                groups.append(sorted((a, b)))
                used.add(a)
                used.add(b)
                break
    return groups
