"""Streaming change detection over access-rate observations.

During the speculative phase every uplink subframe keeps producing access
samples (scheduled → did the pilot appear?).  These detectors watch those
Bernoulli streams for a shift in mean — the statistical signature of a
hidden node arriving, leaving, or changing duty cycle — and, crucially,
flag *which* clients drifted, so re-measurement can be targeted instead of
starting the whole Algorithm-1 sweep over.

Two classic sequential detectors are provided:

* :class:`PageHinkleyDetector` — cumulative deviation from the running mean
  with drift allowance ``delta``; fires when the deviation envelope exceeds
  ``threshold``.  Two-sided (detects both loss and recovery of access).
* :class:`CusumDetector` — tabular CUSUM against a reference mean with
  slack ``k``; the reference is the stream's own running mean, making it
  self-calibrating like Page–Hinkley.

:class:`DriftMonitor` composes them: one detector per client over its
individual access rate, plus (optionally) one per scheduled-together pair
over the joint access rate — pair statistics move when a *shared* terminal
appears even if each individual rate shift is small.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.errors import ConfigurationError

__all__ = ["PageHinkleyDetector", "CusumDetector", "DriftMonitor"]


class PageHinkleyDetector:
    """Two-sided Page–Hinkley test on a univariate stream."""

    def __init__(
        self,
        delta: float = 0.02,
        threshold: float = 3.0,
        min_samples: int = 30,
    ) -> None:
        if delta < 0:
            raise ConfigurationError(f"delta must be >= 0: {delta}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0: {threshold}")
        if min_samples < 1:
            raise ConfigurationError(f"min_samples must be >= 1: {min_samples}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        """Forget everything; the next sample starts a fresh baseline."""
        self._n = 0
        self._mean = 0.0
        # Decrease test: cumulative (x - mean + delta).  Under a stationary
        # stream this drifts *up* (+delta per sample), hugging its running
        # max; a mean drop makes it fall away from that max.
        self._low = 0.0
        self._low_max = 0.0
        # Increase test: cumulative (x - mean - delta), mirrored — it
        # drifts down, and a mean rise lifts it off its running min.
        self._high = 0.0
        self._high_min = 0.0

    @property
    def samples(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean

    def update(self, x: float) -> bool:
        """Feed one sample; True when a mean shift is detected."""
        self._n += 1
        self._mean += (x - self._mean) / self._n
        self._low += x - self._mean + self.delta
        self._low_max = max(self._low_max, self._low)
        self._high += x - self._mean - self.delta
        self._high_min = min(self._high_min, self._high)
        if self._n < self.min_samples:
            return False
        return self.statistic > self.threshold

    @property
    def statistic(self) -> float:
        """Current detection envelope (compare against ``threshold``)."""
        return max(self._low_max - self._low, self._high - self._high_min)


class CusumDetector:
    """Two-sided tabular CUSUM against the stream's running mean."""

    def __init__(
        self,
        k: float = 0.05,
        threshold: float = 3.0,
        min_samples: int = 30,
    ) -> None:
        if k < 0:
            raise ConfigurationError(f"slack k must be >= 0: {k}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0: {threshold}")
        if min_samples < 1:
            raise ConfigurationError(f"min_samples must be >= 1: {min_samples}")
        self.k = float(k)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._pos = 0.0
        self._neg = 0.0

    @property
    def samples(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean

    def update(self, x: float) -> bool:
        self._n += 1
        self._mean += (x - self._mean) / self._n
        self._pos = max(0.0, self._pos + x - self._mean - self.k)
        self._neg = max(0.0, self._neg - x + self._mean - self.k)
        if self._n < self.min_samples:
            return False
        return self.statistic > self.threshold

    @property
    def statistic(self) -> float:
        """Current detection envelope (compare against ``threshold``)."""
        return max(self._pos, self._neg)


def _make_detector(kind: str, **kwargs):
    if kind == "page-hinkley":
        return PageHinkleyDetector(**kwargs)
    if kind == "cusum":
        return CusumDetector(**kwargs)
    raise ConfigurationError(f"unknown detector kind: {kind!r}")


class DriftMonitor:
    """Per-client (and per-pair) drift detection over access observations.

    Feed :meth:`update` with each subframe's ``(scheduled, accessed)`` sets;
    it returns the clients flagged as drifted this subframe (usually empty).
    A pair detector firing flags both endpoints — the caller cannot tell
    which endpoint's interferer moved from the pair statistic alone, and
    re-measuring both is cheap.

    When anything fires, clients whose own envelope has already climbed
    past ``co_flag_fraction`` of the threshold are flagged along with it
    (sympathetic co-flagging): a shared hidden node shifts several streams
    at once, but sampling noise staggers their individual crossing times,
    and folding the near-crossers into the same adaptation episode saves a
    second detection/re-measurement round trip.
    """

    def __init__(
        self,
        num_ues: int,
        detector: str = "page-hinkley",
        delta: float = 0.02,
        threshold: float = 3.0,
        min_samples: int = 30,
        track_pairs: bool = True,
        co_flag_fraction: float = 0.5,
    ) -> None:
        if num_ues < 1:
            raise ConfigurationError(f"need at least one UE: {num_ues}")
        if not 0.0 < co_flag_fraction <= 1.0:
            raise ConfigurationError(
                f"co_flag_fraction must be in (0, 1]: {co_flag_fraction}"
            )
        self.num_ues = num_ues
        self.co_flag_fraction = float(co_flag_fraction)
        self.kind = detector
        self._threshold = float(threshold)
        self._min_samples = int(min_samples)
        self._kwargs = dict(min_samples=min_samples, threshold=threshold)
        if detector == "page-hinkley":
            self._kwargs["delta"] = delta
        else:
            self._kwargs["k"] = delta
        self.track_pairs = bool(track_pairs)
        self._ue: Dict[int, object] = {
            ue: _make_detector(detector, **self._kwargs)
            for ue in range(num_ues)
        }
        # Pair detectors are created lazily, only for pairs actually
        # scheduled together (O(K^2) per subframe, not O(N^2) up front).
        self._pair: Dict[Tuple[int, int], object] = {}

    def update(
        self, scheduled: Iterable[int], accessed: Iterable[int]
    ) -> FrozenSet[int]:
        """One subframe of evidence; returns the clients flagged drifted."""
        scheduled_set = sorted(set(scheduled))
        accessed_set = set(accessed)
        drifted: Set[int] = set()
        for ue in scheduled_set:
            if self._ue[ue].update(1.0 if ue in accessed_set else 0.0):
                drifted.add(ue)
        if self.track_pairs:
            for pair in combinations(scheduled_set, 2):
                detector = self._pair.get(pair)
                if detector is None:
                    detector = _make_detector(self.kind, **self._kwargs)
                    self._pair[pair] = detector
                both = pair[0] in accessed_set and pair[1] in accessed_set
                if detector.update(1.0 if both else 0.0):
                    drifted.update(pair)
        if drifted:
            bar = self.co_flag_fraction * self._threshold
            for ue, detector in self._ue.items():
                if (
                    ue not in drifted
                    and detector.samples >= self._min_samples
                    and detector.statistic > bar
                ):
                    drifted.add(ue)
        return frozenset(drifted)

    def reset(self, ues: Optional[Iterable[int]] = None) -> None:
        """Re-baseline detectors (all, or those touching ``ues``).

        Called after a re-blueprint: the post-adaptation access rates are a
        new normal, and stale baselines would re-fire forever.
        """
        if ues is None:
            for detector in self._ue.values():
                detector.reset()
            self._pair.clear()
            return
        affected = set(ues)
        for ue in affected:
            self._ue[ue].reset()
        for pair in list(self._pair):
            if affected & set(pair):
                del self._pair[pair]
