"""Non-stationary environments and online blueprint adaptation.

The BLU paper measures once and schedules forever; this package makes the
world move and the controller keep up:

* :mod:`repro.dynamics.timeline` — typed environment events (hidden-node
  arrival/departure, duty-cycle drift, client churn, link-strength ramps)
  applied by the engine at subframe boundaries;
* :mod:`repro.dynamics.detect` — streaming change detection (Page–Hinkley
  / CUSUM) over per-client and per-pair access rates;
* :mod:`repro.dynamics.adapt` — the adaptive controller: targeted partial
  re-measurement plus warm-started incremental re-inference;
* :mod:`repro.dynamics.metrics` — detection delay, re-convergence time and
  measurement economy of each adaptation episode.
"""

from repro.dynamics.adapt import (
    AdaptiveBLUController,
    AdaptiveConfig,
    FullRestartController,
    StagedBlueprintScheduler,
)
from repro.dynamics.detect import (
    CusumDetector,
    DriftMonitor,
    PageHinkleyDetector,
)
from repro.dynamics.metrics import DriftEvent, DynamicsMetrics
from repro.dynamics.timeline import (
    DutyCycleDrift,
    EnvironmentTimeline,
    HiddenNodeArrival,
    HiddenNodeDeparture,
    LinkStrengthRamp,
    TimelineRuntime,
    TimelineUpdate,
    UeJoin,
    UeLeave,
)

__all__ = [
    "AdaptiveBLUController",
    "AdaptiveConfig",
    "FullRestartController",
    "StagedBlueprintScheduler",
    "CusumDetector",
    "DriftMonitor",
    "PageHinkleyDetector",
    "DriftEvent",
    "DynamicsMetrics",
    "DutyCycleDrift",
    "EnvironmentTimeline",
    "HiddenNodeArrival",
    "HiddenNodeDeparture",
    "LinkStrengthRamp",
    "TimelineRuntime",
    "TimelineUpdate",
    "UeJoin",
    "UeLeave",
]
