"""Online blueprint adaptation: detect drift, re-measure only what moved.

The base :class:`~repro.core.controller.BLUController` re-infers, at best,
on a fixed timer over decayed statistics.  The adaptive controller closes
the loop properly:

1. **SPECULATIVE** — normal speculative scheduling; every observation also
   feeds a :class:`~repro.dynamics.detect.DriftMonitor`.
2. **Drift detected** — the flagged clients' statistics are discarded
   (:meth:`AccessEstimator.reset_ues`), and a *targeted*
   :class:`~repro.core.measurement.pair_scheduler.MeasurementScheduler`
   sub-schedule is built over only the pairs touching them.
3. **PARTIAL_REMEASURE** — Algorithm-1 layout over the affected pairs; far
   fewer subframes than the full ``C(N,2)`` campaign.
4. **Incremental re-blueprint** — inference warm-started from the previous
   ``(h, Q, Z)`` solution (most constraints are still satisfied), with a
   trimmed start set; then back to SPECULATIVE with re-baselined detectors.

Two reference schedulers close the evaluation loop: a *from-scratch*
restart baseline (:class:`FullRestartController`) and a dynamics-aware
oracle (:class:`StagedBlueprintScheduler`) for utilization regret.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.blueprint.inference import InferenceConfig
from repro.core.blueprint.initializers import topology_start
from repro.core.controller import BLUConfig, BLUController, BLUPhase
from repro.core.joint.provider import TopologyJointProvider
from repro.core.measurement.classifier import AccessObservation
from repro.core.measurement.estimator import AccessEstimator
from repro.core.measurement.pair_scheduler import MeasurementScheduler
from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.speculative import SpeculativeScheduler
from repro.core.scheduling.types import SchedulingContext
from repro.dynamics.detect import DriftMonitor
from repro.dynamics.metrics import DriftEvent, DynamicsMetrics
from repro.errors import ConfigurationError
from repro.lte.resources import SubframeSchedule
from repro.obs.metrics import active_registry
from repro.topology.graph import InterferenceTopology

__all__ = [
    "AdaptiveConfig",
    "AdaptiveBLUController",
    "FullRestartController",
    "StagedBlueprintScheduler",
]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the drift-detect / partial-remeasure loop."""

    #: Sequential detector family: "page-hinkley" or "cusum".
    detector: str = "page-hinkley"
    #: Drift allowance (PH delta / CUSUM slack) in access-rate units.
    #: Access indicators are Bernoulli (variance up to 0.25); the PH
    #: false-alarm rate goes as exp(-2*delta*threshold/variance), so
    #: ``delta * threshold`` must be large against 0.25.  These defaults
    #: make false alarms negligible across dozens of concurrent detectors
    #: over ~10^5-sample runs, while a hidden-node arrival (access-rate
    #: shift >= 0.3) is still caught within ~100-150 samples.
    detector_delta: float = 0.1
    #: Detection envelope threshold (lambda).
    detector_threshold: float = 30.0
    #: Samples a detector needs before it may fire.
    detector_min_samples: int = 50
    #: Also run per-pair joint-access detectors.
    pair_detectors: bool = True
    #: On any firing, co-flag clients whose envelope is past this fraction
    #: of the threshold (one episode instead of two back-to-back).
    co_flag_fraction: float = 0.5
    #: Joint samples per affected pair in the targeted re-measurement
    #: (smaller than the initial ``samples_per_pair``: the unaffected
    #: pairs' statistics are retained, so less evidence suffices).
    remeasure_samples: int = 25
    #: Warm-start re-inference from the previous blueprint.
    warm_start: bool = True
    #: Random starts for the incremental re-inference (cold uses the full
    #: configured set).
    partial_random_starts: int = 1
    #: Subframes after a (re-)blueprint during which detector firings only
    #: re-baseline, never trigger another re-measurement — the new schedule
    #: changes observed access rates even in a static world.
    cooldown_subframes: int = 400

    def __post_init__(self) -> None:
        if self.detector not in ("page-hinkley", "cusum"):
            raise ConfigurationError(
                f"unknown detector: {self.detector!r}"
            )
        if self.remeasure_samples < 1:
            raise ConfigurationError(
                f"remeasure_samples must be positive: {self.remeasure_samples}"
            )
        if self.partial_random_starts < 0:
            raise ConfigurationError(
                f"partial_random_starts must be >= 0: "
                f"{self.partial_random_starts}"
            )
        if self.cooldown_subframes < 0:
            raise ConfigurationError(
                f"cooldown_subframes must be >= 0: {self.cooldown_subframes}"
            )


class AdaptiveBLUController(BLUController):
    """BLU with streaming drift detection and incremental re-blueprinting."""

    name = "blu-adaptive"

    def __init__(
        self,
        num_ues: int,
        config: Optional[BLUConfig] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ) -> None:
        super().__init__(num_ues, config)
        adaptive = AdaptiveConfig() if adaptive is None else adaptive
        self.adaptive = adaptive
        self.monitor = DriftMonitor(
            num_ues,
            detector=adaptive.detector,
            delta=adaptive.detector_delta,
            threshold=adaptive.detector_threshold,
            min_samples=adaptive.detector_min_samples,
            track_pairs=adaptive.pair_detectors,
            co_flag_fraction=adaptive.co_flag_fraction,
        )
        self.metrics = DynamicsMetrics()
        self._partial_scheduler: Optional[MeasurementScheduler] = None
        self._active_event: Optional[DriftEvent] = None
        self._cooldown_remaining = 0
        self._obs_registry = None
        self._obs = None

    def _obs_counters(self, registry):
        """Per-registry dynamics counter handles, registered eagerly.

        Registering the full set on first observation (not on first
        increment) makes every dynamics metric visible in a run's snapshot
        even when its count stays zero — a run with no drift still reports
        ``dynamics.drift_detections = 0``.
        """
        if registry is not self._obs_registry:
            self._obs_registry = registry
            self._obs = {
                "drift_detections": registry.counter(
                    "dynamics.drift_detections",
                    help="drift episodes begun (detector firings acted on)",
                ),
                "drifted_ues": registry.counter(
                    "dynamics.drifted_ues",
                    help="clients flagged across all drift episodes",
                ),
                "remeasure_subframes": registry.counter(
                    "dynamics.remeasure_subframes",
                    help="UL subframes spent in PARTIAL_REMEASURE",
                ),
                "reinferences": registry.counter(
                    "dynamics.reinferences",
                    help="blueprint re-inferences after the initial campaign",
                ),
                "cooldown_suppressed": registry.counter(
                    "dynamics.cooldown_suppressed",
                    help="detector firings absorbed by the post-blueprint cooldown",
                ),
            }
        return self._obs

    # -- scheduling --------------------------------------------------------

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        if self.phase is BLUPhase.PARTIAL_REMEASURE:
            assert self._partial_scheduler is not None
            ues = self._partial_scheduler.next_schedule()
            return self._layout_measurement(context, ues)
        return super().schedule(context)

    # -- adaptation episodes -----------------------------------------------

    def _partial_inference_config(self) -> InferenceConfig:
        return replace(
            self.config.inference,
            num_random_starts=self.adaptive.partial_random_starts,
        )

    def _begin_partial_remeasure(
        self, subframe: int, drifted: FrozenSet[int]
    ) -> None:
        self._active_event = self.metrics.begin_event(subframe, drifted)
        self.estimator.reset_ues(drifted)
        pairs = [
            (d, other)
            for d in drifted
            for other in range(self.num_ues)
            if other != d
        ]
        self._partial_scheduler = MeasurementScheduler(
            num_ues=self.num_ues,
            distinct_per_subframe=self.config.measurement_k,
            samples=self.adaptive.remeasure_samples,
            pairs=pairs,
        )
        self.phase = BLUPhase.PARTIAL_REMEASURE

    def _complete_adaptation(self, subframe: int) -> None:
        event = self._active_event
        assert event is not None and self._partial_scheduler is not None
        event.remeasure_subframes = self._partial_scheduler.subframes_used
        extra_starts = None
        if self.adaptive.warm_start and self.inference_result is not None:
            extra_starts = [
                ("warm", topology_start(self.inference_result.topology))
            ]
        self._infer_and_switch(
            extra_starts=extra_starts,
            inference_config=self._partial_inference_config(),
        )
        self.metrics.reinferences += 1
        registry = active_registry()
        if registry is not None:
            self._obs_counters(registry)["reinferences"].inc()
        event.reinfer_subframe = subframe
        event.winning_start = self.inference_result.winning_start
        self._partial_scheduler = None
        self._active_event = None
        self._rebaseline()

    def _rebaseline(self) -> None:
        """New blueprint live: detectors start over, with a firing grace."""
        self.monitor.reset()
        self._cooldown_remaining = self.adaptive.cooldown_subframes

    # -- observation feedback ----------------------------------------------

    def _observe(self, observation: AccessObservation) -> None:
        registry = active_registry()
        obs = self._obs_counters(registry) if registry is not None else None
        if self.phase is BLUPhase.MEASUREMENT:
            super()._observe(observation)
            if self.phase is BLUPhase.SPECULATIVE:
                # Initial campaign just completed.
                self.metrics.full_measurement_subframes = (
                    self.measurement_subframes_used
                )
                self._rebaseline()
            return

        if self.phase is BLUPhase.DEGRADED:
            # Health gate rejected the blueprint: base-class fallback
            # handling only; drift detection resumes after recovery.
            super()._observe(observation)
            if self.phase is BLUPhase.SPECULATIVE:
                self._rebaseline()
            return

        if self.phase is BLUPhase.PARTIAL_REMEASURE:
            self.estimator.record_subframe(
                scheduled=observation.scheduled, accessed=observation.accessed
            )
            assert self._partial_scheduler is not None
            self._partial_scheduler.record(sorted(observation.scheduled))
            self.metrics.partial_measurement_subframes += 1
            if obs is not None:
                obs["remeasure_subframes"].inc()
            if self._partial_scheduler.finished:
                self._complete_adaptation(observation.subframe)
            return

        # SPECULATIVE: base bookkeeping (estimator + optional timer-based
        # re-inference) first ...
        before = self.inference_result
        super()._observe(observation)
        if self.inference_result is not before:
            self.metrics.reinferences += 1
            if obs is not None:
                obs["reinferences"].inc()
            self._rebaseline()
            return
        # ... then streaming drift detection over the same observation.
        drifted = self.monitor.update(
            observation.scheduled, observation.accessed
        )
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1
            if drifted:
                # Too soon to re-adapt; fold the firing into the baseline.
                self.monitor.reset(drifted)
                if obs is not None:
                    obs["cooldown_suppressed"].inc()
            return
        if drifted:
            if obs is not None:
                obs["drift_detections"].inc()
                obs["drifted_ues"].inc(len(drifted))
            self._begin_partial_remeasure(observation.subframe, drifted)


class FullRestartController(BLUController):
    """Change-aware baseline: full cold re-blueprint at a known instant.

    Given oracle knowledge of *when* the environment changes, it throws the
    whole estimator away and repeats the full Algorithm-1 campaign plus
    cold multi-start inference.  The adaptive controller's acceptance bar:
    recover comparable utilization while spending measurably fewer
    measurement subframes (and without being told the change time).
    """

    name = "blu-restart"

    def __init__(
        self,
        num_ues: int,
        config: Optional[BLUConfig] = None,
        restart_at: int = 0,
    ) -> None:
        super().__init__(num_ues, config)
        if restart_at < 0:
            raise ConfigurationError(f"restart_at must be >= 0: {restart_at}")
        self.restart_at = int(restart_at)
        self._restarted = False

    def _observe(self, observation: AccessObservation) -> None:
        if (
            not self._restarted
            and self.restart_at > 0
            and observation.subframe >= self.restart_at
        ):
            self._restarted = True
            self.estimator = AccessEstimator(
                self.num_ues, decay=self.config.estimator_decay
            )
            self.measurement_scheduler = MeasurementScheduler(
                num_ues=self.num_ues,
                distinct_per_subframe=self.config.measurement_k,
                samples=self.config.samples_per_pair,
            )
            self.phase = BLUPhase.MEASUREMENT
        super()._observe(observation)


class StagedBlueprintScheduler(UplinkScheduler):
    """The dynamics-aware oracle: the true blueprint at every instant.

    Wraps one speculative scheduler per ``(start_subframe, topology)``
    stage and dispatches on the context's subframe.  Its utilization is the
    ceiling an adaptive controller chases; the shortfall against it is the
    *utilization regret* reported by ``repro.analysis.dynamics``.
    """

    name = "oracle-blueprint"

    def __init__(
        self,
        stages: Sequence[Tuple[int, InterferenceTopology]],
        overschedule_factor: float = 2.0,
    ) -> None:
        if not stages:
            raise ConfigurationError("need at least one blueprint stage")
        ordered = sorted(stages, key=lambda stage: stage[0])
        if ordered[0][0] != 0:
            raise ConfigurationError(
                f"first stage must start at subframe 0: {ordered[0][0]}"
            )
        starts = [start for start, _ in ordered]
        if len(set(starts)) != len(starts):
            raise ConfigurationError(f"duplicate stage starts: {starts}")
        self._stages: List[Tuple[int, SpeculativeScheduler]] = [
            (
                start,
                SpeculativeScheduler(
                    TopologyJointProvider(topology),
                    overschedule_factor=overschedule_factor,
                ),
            )
            for start, topology in ordered
        ]

    def _scheduler_at(self, subframe: int) -> SpeculativeScheduler:
        current = self._stages[0][1]
        for start, scheduler in self._stages:
            if start > subframe:
                break
            current = scheduler
        return current

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        return self._scheduler_at(context.subframe).schedule(context)
