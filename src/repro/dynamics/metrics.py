"""Adaptation quality metrics: how fast and how cheaply BLU re-converges.

Three questions matter when the environment churns (ISSUE/Section 3.7):

* **detection delay** — subframes between the environment change and the
  drift detector firing;
* **re-convergence time** — subframes between detection and the
  warm-started re-blueprint going live;
* **measurement economy** — how many subframes were spent re-measuring,
  versus the cost of a from-scratch Algorithm-1 campaign.

The controller records one :class:`DriftEvent` per detection; experiment
code with knowledge of the ground-truth change instants turns those into
delays and the utilization-regret comparison (``repro.analysis.dynamics``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence

__all__ = ["DriftEvent", "DynamicsMetrics"]


@dataclass
class DriftEvent:
    """One detected drift and the adaptation episode it triggered."""

    detected_subframe: int
    drifted_ues: FrozenSet[int]
    #: Filled when the partial re-measurement completes.
    remeasure_subframes: Optional[int] = None
    reinfer_subframe: Optional[int] = None
    winning_start: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.reinfer_subframe is not None

    @property
    def reconvergence_subframes(self) -> Optional[int]:
        """Detection → adapted blueprint live, in subframes."""
        if self.reinfer_subframe is None:
            return None
        return self.reinfer_subframe - self.detected_subframe


@dataclass
class DynamicsMetrics:
    """Rolled-up adaptation telemetry of one adaptive-controller run."""

    events: List[DriftEvent] = field(default_factory=list)
    #: UL subframes spent in the initial full measurement phase.
    full_measurement_subframes: int = 0
    #: UL subframes spent across all targeted re-measurement episodes.
    partial_measurement_subframes: int = 0
    reinferences: int = 0

    def begin_event(self, subframe: int, ues: FrozenSet[int]) -> DriftEvent:
        event = DriftEvent(detected_subframe=subframe, drifted_ues=ues)
        self.events.append(event)
        return event

    @property
    def detections(self) -> int:
        return len(self.events)

    def detection_delay(self, change_subframe: int) -> Optional[int]:
        """Delay of the first detection at/after a known change instant.

        Requires ground-truth knowledge of when the environment changed, so
        it lives on the metrics (experiment side), not in the controller.
        """
        for event in self.events:
            if event.detected_subframe >= change_subframe:
                return event.detected_subframe - change_subframe
        return None

    def summary(self) -> dict:
        """Flat dict for tables and JSON export."""
        completed = [e for e in self.events if e.completed]
        reconv: Sequence[int] = [
            e.reconvergence_subframes for e in completed
        ]
        return {
            "detections": self.detections,
            "adaptations_completed": len(completed),
            "full_measurement_subframes": self.full_measurement_subframes,
            "partial_measurement_subframes": self.partial_measurement_subframes,
            "mean_reconvergence_subframes": (
                sum(reconv) / len(reconv) if reconv else 0.0
            ),
            "reinferences": self.reinferences,
        }
