"""The environment as a first-class time-varying object.

The paper's speculative phase exists because the world is *not* frozen:
hidden WiFi nodes arrive and leave, their duty cycles drift, clients roam.
An :class:`EnvironmentTimeline` scripts those dynamics as typed events
pinned to subframe indices; the simulation engine applies them at subframe
boundaries through a :class:`TimelineRuntime`, deriving a fresh (immutable)
:class:`~repro.topology.graph.InterferenceTopology` per structural change so
every memoized edge matrix downstream is invalidated by construction.

Event kinds:

* :class:`HiddenNodeArrival` / :class:`HiddenNodeDeparture` — a WiFi hidden
  terminal appears with its own activity process / disappears;
* :class:`DutyCycleDrift` — an existing terminal's busy probability changes
  (traffic load shift);
* :class:`UeJoin` / :class:`UeLeave` — a client attaches to / detaches from
  the cell (its traffic gates on and off; the UE id space is fixed);
* :class:`LinkStrengthRamp` — a client's mean SNR ramps by ``delta_db``
  over ``duration`` subframes (mobility / shadowing).

Terminals are addressed by *label*, not index: indices shift on departure,
labels are stable.  Initial terminals are labelled ``ht0..ht{h-1}`` unless
the timeline supplies ``initial_labels``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.spectrum.activity import (
    ActivityProcess,
    BernoulliActivity,
    MarkovOnOffActivity,
)
from repro.topology.graph import InterferenceTopology

__all__ = [
    "HiddenNodeArrival",
    "HiddenNodeDeparture",
    "DutyCycleDrift",
    "UeJoin",
    "UeLeave",
    "LinkStrengthRamp",
    "TimelineEvent",
    "TimelineUpdate",
    "AddTerminalOp",
    "RemoveTerminalOp",
    "RetuneOp",
    "EnvironmentTimeline",
    "TimelineRuntime",
]


@dataclass(frozen=True)
class HiddenNodeArrival:
    """A new hidden terminal appears at subframe ``at``."""

    at: int
    q: float
    ues: Tuple[int, ...]
    label: Optional[str] = None
    activity_kind: str = "bernoulli"  # or "markov"
    mean_busy_subframes: float = 3.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ues", tuple(int(u) for u in self.ues))
        if not 0.0 <= self.q < 1.0:
            raise ConfigurationError(
                f"arrival busy probability outside [0,1): {self.q}"
            )
        if self.activity_kind not in ("bernoulli", "markov"):
            raise ConfigurationError(
                f"unknown activity kind: {self.activity_kind!r}"
            )


@dataclass(frozen=True)
class HiddenNodeDeparture:
    """The hidden terminal ``label`` leaves at subframe ``at``."""

    at: int
    label: str


@dataclass(frozen=True)
class DutyCycleDrift:
    """Terminal ``label``'s busy probability becomes ``q`` at ``at``."""

    at: int
    label: str
    q: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.q < 1.0:
            raise ConfigurationError(
                f"drifted busy probability outside [0,1): {self.q}"
            )


@dataclass(frozen=True)
class UeJoin:
    """Client ``ue`` attaches (its traffic gates on) at ``at``."""

    at: int
    ue: int


@dataclass(frozen=True)
class UeLeave:
    """Client ``ue`` detaches (its traffic gates off) at ``at``."""

    at: int
    ue: int


@dataclass(frozen=True)
class LinkStrengthRamp:
    """Client ``ue``'s mean SNR shifts ``delta_db`` over ``duration`` sf."""

    at: int
    ue: int
    delta_db: float
    duration: int = 1

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ConfigurationError(
                f"ramp duration must be >= 1 subframe: {self.duration}"
            )


TimelineEvent = Union[
    HiddenNodeArrival,
    HiddenNodeDeparture,
    DutyCycleDrift,
    UeJoin,
    UeLeave,
    LinkStrengthRamp,
]

_STRUCTURAL = (HiddenNodeArrival, HiddenNodeDeparture, DutyCycleDrift)


@dataclass(frozen=True)
class AddTerminalOp:
    """Activity-model op: append the arrived terminal's process."""

    process: ActivityProcess


@dataclass(frozen=True)
class RemoveTerminalOp:
    """Activity-model op: drop the process at ``index``."""

    index: int


@dataclass(frozen=True)
class RetuneOp:
    """Activity-model op: re-tune the process at ``index`` to ``q``."""

    index: int
    q: float


@dataclass
class TimelineUpdate:
    """Everything the engine must apply at one subframe boundary."""

    topology: Optional[InterferenceTopology] = None  # None = unchanged
    activity_ops: List[object] = field(default_factory=list)
    snr_delta_db: Dict[int, float] = field(default_factory=dict)
    joins: List[int] = field(default_factory=list)
    leaves: List[int] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return (
            self.topology is None
            and not self.activity_ops
            and not self.snr_delta_db
            and not self.joins
            and not self.leaves
        )


class EnvironmentTimeline:
    """An ordered script of environment events for one simulation run."""

    def __init__(
        self,
        events: Iterable[TimelineEvent] = (),
        initial_labels: Optional[Sequence[str]] = None,
    ) -> None:
        self.events: List[TimelineEvent] = sorted(
            events, key=lambda e: e.at
        )
        for event in self.events:
            if event.at < 0:
                raise ConfigurationError(
                    f"event scheduled before subframe 0: {event}"
                )
        self.initial_labels = (
            list(initial_labels) if initial_labels is not None else None
        )

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def has_structural_events(self) -> bool:
        """Whether any event changes the hidden-terminal population."""
        return any(isinstance(e, _STRUCTURAL) for e in self.events)

    def horizon(self) -> int:
        """Subframe index after which the timeline is quiescent."""
        last = 0
        for event in self.events:
            end = event.at
            if isinstance(event, LinkStrengthRamp):
                end += event.duration
            last = max(last, end)
        return last

    def runtime(self, topology: InterferenceTopology) -> "TimelineRuntime":
        """Bind the script to a starting topology for one run."""
        return TimelineRuntime(self, topology)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnvironmentTimeline({self.num_events} events)"


def _default_process_seed(label: str, at: int) -> int:
    # Deterministic and independent of Python's randomized str hashing, so
    # fast and legacy engine paths (and re-runs) build identical processes.
    return zlib.crc32(f"{label}@{at}".encode()) & 0x7FFFFFFF


class TimelineRuntime:
    """One run's cursor over a timeline: resolves labels, emits updates.

    The runtime owns the label→index map and the topology derivation; the
    engine owns the substrate mutation (activity processes, channel means,
    traffic gates).  ``step(t)`` must be called once per subframe with
    monotonically increasing ``t``.
    """

    def __init__(
        self, timeline: EnvironmentTimeline, topology: InterferenceTopology
    ) -> None:
        self._timeline = timeline
        self.topology = topology
        labels = timeline.initial_labels
        if labels is None:
            labels = [f"ht{k}" for k in range(topology.num_terminals)]
        if len(labels) != topology.num_terminals:
            raise ConfigurationError(
                f"{len(labels)} initial labels for "
                f"{topology.num_terminals} terminals"
            )
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"duplicate terminal labels: {labels}")
        self._labels: List[str] = list(labels)
        self._cursor = 0
        self._last_t = -1
        #: Ramps still in progress: (event, subframes already applied).
        self._active_ramps: List[Tuple[LinkStrengthRamp, int]] = []
        self.events_applied = 0

    # -- label bookkeeping -------------------------------------------------

    def terminal_index(self, label: str) -> int:
        try:
            return self._labels.index(label)
        except ValueError:
            raise SimulationError(
                f"timeline references unknown hidden terminal {label!r}; "
                f"live terminals: {self._labels}"
            ) from None

    @property
    def terminal_labels(self) -> Tuple[str, ...]:
        return tuple(self._labels)

    # -- per-subframe application ------------------------------------------

    def _build_process(self, event: HiddenNodeArrival) -> ActivityProcess:
        seed = (
            event.seed
            if event.seed is not None
            else _default_process_seed(event.label or "arrival", event.at)
        )
        rng = np.random.default_rng(seed)
        if event.activity_kind == "markov":
            return MarkovOnOffActivity(
                event.q, event.mean_busy_subframes, rng=rng
            )
        return BernoulliActivity(event.q, rng=rng)

    def _apply_event(
        self, event: TimelineEvent, update: TimelineUpdate
    ) -> None:
        if isinstance(event, HiddenNodeArrival):
            label = event.label or f"arrival@{event.at}"
            if label in self._labels:
                raise SimulationError(
                    f"duplicate hidden terminal label {label!r} at "
                    f"subframe {event.at}"
                )
            bad = [u for u in event.ues if not 0 <= u < self.topology.num_ues]
            if bad:
                raise SimulationError(
                    f"arrival {label!r} silences unknown UEs {bad}"
                )
            self.topology = self.topology.with_terminal(event.q, event.ues)
            self._labels.append(label)
            update.activity_ops.append(
                AddTerminalOp(self._build_process(event))
            )
        elif isinstance(event, HiddenNodeDeparture):
            index = self.terminal_index(event.label)
            self.topology = self.topology.without_terminal(index)
            del self._labels[index]
            update.activity_ops.append(RemoveTerminalOp(index))
        elif isinstance(event, DutyCycleDrift):
            index = self.terminal_index(event.label)
            self.topology = self.topology.with_terminal_q(index, event.q)
            update.activity_ops.append(RetuneOp(index, event.q))
        elif isinstance(event, UeJoin):
            update.joins.append(event.ue)
        elif isinstance(event, UeLeave):
            update.leaves.append(event.ue)
        elif isinstance(event, LinkStrengthRamp):
            self._active_ramps.append((event, 0))
        else:  # pragma: no cover - the union is closed
            raise SimulationError(f"unknown timeline event {event!r}")
        self.events_applied += 1

    def step(self, t: int) -> Optional[TimelineUpdate]:
        """Resolve all events due at subframe ``t``; None when quiescent."""
        if t <= self._last_t:
            raise SimulationError(
                f"timeline stepped backwards: subframe {t} after "
                f"{self._last_t}"
            )
        self._last_t = t
        update = TimelineUpdate()
        topology_before = self.topology
        events = self._timeline.events
        while self._cursor < len(events) and events[self._cursor].at <= t:
            self._apply_event(events[self._cursor], update)
            self._cursor += 1
        if self._active_ramps:
            still_active: List[Tuple[LinkStrengthRamp, int]] = []
            for ramp, done in self._active_ramps:
                per_subframe = ramp.delta_db / ramp.duration
                update.snr_delta_db[ramp.ue] = (
                    update.snr_delta_db.get(ramp.ue, 0.0) + per_subframe
                )
                if done + 1 < ramp.duration:
                    still_active.append((ramp, done + 1))
            self._active_ramps = still_active
        if self.topology is not topology_before:
            update.topology = self.topology
        return None if update.empty else update
