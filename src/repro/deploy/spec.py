"""Declarative multi-cell deployment specifications.

A :class:`DeploymentSpec` is the single serializable description of a
deployment-scale campaign: how many eNBs and where (grid lattice or a
Poisson point process), the per-cell client and ambient-WiFi populations,
the radio model that turns geometry into sensing relationships, which
scheduler runs in every cell, the per-cell simulation parameters, and the
root seed every entropy stream derives from.

Specs are frozen and round-trip losslessly through ``to_dict`` /
``from_dict`` (and therefore JSON); the serialized form carries a
top-level ``"kind": "deployment"`` marker so tooling (``repro
validate-specs``) can distinguish deployment specs from single-cell
:class:`~repro.experiments.ExperimentSpec` files living in the same
directory.  Validation is strict, in the style of the experiment specs:
unknown keys and malformed values raise
:class:`~repro.errors.SpecError`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SpecError
from repro.experiments.spec import SchedulerSpec
from repro.lte import consts
from repro.obs.config import ObsConfig
from repro.resilience.faults import FaultPlan
from repro.sim.config import SimulationConfig

__all__ = ["PlacementSpec", "RadioSpec", "DeploymentSpec", "DEPLOYMENT_KIND"]

#: Top-level ``kind`` marker in serialized deployment specs.
DEPLOYMENT_KIND = "deployment"


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, Mapping):
        raise SpecError(f"{where} must be a mapping, got {type(value).__name__}")
    bad = [key for key in value if not isinstance(key, str)]
    if bad:
        raise SpecError(f"{where} has non-string keys: {bad}")
    return dict(value)


def _reject_unknown(
    data: Mapping[str, Any], allowed: Tuple[str, ...], where: str
) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown field(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class PlacementSpec:
    """How eNBs are placed on the plane.

    ``kind`` is ``"grid"`` (params: ``rows``, ``cols``, ``spacing_m``) or
    ``"ppp"`` (params: ``num_cells``, ``area_m`` — a Poisson point
    process conditioned on the cell count, the Li et al. stochastic-
    geometry coexistence model).
    """

    kind: str = "grid"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("grid", "ppp"):
            raise SpecError(
                f"unknown placement kind {self.kind!r}; known: ['grid', 'ppp']"
            )

    @property
    def num_cells(self) -> int:
        """The eNB count implied by the placement parameters."""
        if self.kind == "grid":
            rows = int(self.params.get("rows", 1))
            cols = int(self.params.get("cols", 1))
            return rows * cols
        return int(self.params.get("num_cells", 1))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlacementSpec":
        data = _require_mapping(data, "placement")
        _reject_unknown(data, ("kind", "params"), "placement")
        kind = data.get("kind", "grid")
        if not isinstance(kind, str) or not kind:
            raise SpecError("placement needs a non-empty string 'kind'")
        params = _require_mapping(data.get("params", {}), "placement.params")
        allowed = (
            ("rows", "cols", "spacing_m")
            if kind == "grid"
            else ("num_cells", "area_m")
        )
        if kind in ("grid", "ppp"):
            _reject_unknown(params, allowed, f"placement '{kind}' params")
        return cls(kind=kind, params=params)


@dataclass(frozen=True)
class RadioSpec:
    """The radio model turning deployment geometry into sensing graphs.

    Energy-detection thresholds decide who hears whom; transmit powers and
    the log-distance path-loss exponent set the ranges; the activity range
    draws each ambient WiFi node's busy probability; and
    ``ue_uplink_activity`` is the busy probability a foreign cell's UE
    presents when it appears as a *cross-cell hidden terminal* in another
    cell's sensing graph.
    """

    ue_ed_threshold_dbm: float = consts.DEFAULT_ED_THRESHOLD_DBM
    enb_ed_threshold_dbm: float = consts.DEFAULT_ED_THRESHOLD_DBM
    wifi_tx_power_dbm: float = consts.DEFAULT_TX_POWER_DBM
    ue_tx_power_dbm: float = consts.DEFAULT_TX_POWER_DBM
    path_loss_exponent: float = 3.0
    activity_low: float = 0.1
    activity_high: float = 0.5
    ue_uplink_activity: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.activity_low <= self.activity_high < 1.0:
            raise SpecError(
                "activity range must satisfy 0 <= low <= high < 1: "
                f"[{self.activity_low}, {self.activity_high}]"
            )
        if not 0.0 <= self.ue_uplink_activity < 1.0:
            raise SpecError(
                f"ue_uplink_activity outside [0,1): {self.ue_uplink_activity}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadioSpec":
        data = _require_mapping(data, "radio")
        allowed = tuple(f.name for f in dataclasses.fields(cls))
        _reject_unknown(data, allowed, "radio")
        return cls(**data)


@dataclass(frozen=True)
class DeploymentSpec:
    """One complete, serializable multi-cell deployment campaign.

    Every cell runs the same ``scheduler`` kind (each cell gets a *fresh*
    instance — per-cell BLU controllers infer per-cell blueprints) under
    the same ``sim`` config (the per-cell eNB busy probability is
    overridden from the deployment's own interference geometry).  ``seed``
    roots a single ``numpy.random.SeedSequence.spawn`` tree from which
    every placement draw, per-cell engine stream, and per-cluster stream
    derives, so no two cells ever share entropy and results are
    bit-identical under any sharding.

    ``coupling_margin_db`` is the cluster-partition safety margin: two
    cells are considered coupled when any transmitter of one is received
    within this many dB of the energy-detection threshold at any sensor of
    the other (or a shared WiFi interferer straddles both).  Raising the
    margin is strictly conservative — it can only merge clusters.

    ``num_channels`` > 1 gives the deployment a channel axis: each cell
    is assigned one of the plan's channels (``channel_assignment`` —
    ``"round-robin"`` stripes by cell id, ``"coloring"`` greedily colors
    the unattenuated coupling graph so coupled neighbours land on
    different channels), ambient WiFi nodes inherit their nearest eNB's
    channel, and all cross-node powers are ACLR-attenuated before
    sensing classification and cluster partitioning — so channelization
    becomes a lever for the partitioner: cells that would couple
    co-channel fall into separate clusters once channelized apart.
    """

    name: str
    placement: PlacementSpec
    ues_per_cell: int = 4
    wifi_per_cell: int = 2
    cell_radius_m: float = 25.0
    radio: RadioSpec = field(default_factory=RadioSpec)
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    scheduler: SchedulerSpec = field(default_factory=lambda: SchedulerSpec("pf"))
    coupling_margin_db: float = 6.0
    num_channels: int = 1
    channel_assignment: str = "round-robin"
    channel_spacing_mhz: float = 20.0
    seed: int = 0
    fast_path: bool = True
    record_series: bool = False
    #: Observability for every cell's run; ``None`` collects nothing.
    obs: Optional[ObsConfig] = None
    #: Seeded fault plan; worker faults apply per *cluster* work item.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("deployment needs a non-empty string name")
        if self.ues_per_cell < 1:
            raise SpecError(
                f"ues_per_cell must be >= 1: {self.ues_per_cell}"
            )
        if self.wifi_per_cell < 0:
            raise SpecError(
                f"wifi_per_cell must be >= 0: {self.wifi_per_cell}"
            )
        if self.cell_radius_m <= 0:
            raise SpecError(
                f"cell_radius_m must be positive: {self.cell_radius_m}"
            )
        if self.coupling_margin_db < 0:
            raise SpecError(
                f"coupling_margin_db must be >= 0: {self.coupling_margin_db}"
            )
        if not isinstance(self.num_channels, int) or isinstance(
            self.num_channels, bool
        ) or self.num_channels < 1:
            raise SpecError(
                f"num_channels must be a positive integer: "
                f"{self.num_channels!r}"
            )
        if self.channel_assignment not in ("round-robin", "coloring"):
            raise SpecError(
                f"channel_assignment must be one of ['coloring', "
                f"'round-robin']: {self.channel_assignment!r}"
            )
        if self.channel_spacing_mhz <= 0:
            raise SpecError(
                f"channel_spacing_mhz must be positive: "
                f"{self.channel_spacing_mhz}"
            )
        if not isinstance(self.seed, int):
            raise SpecError(f"seed must be an int: {self.seed!r}")
        if not isinstance(self.scheduler, SchedulerSpec):
            raise SpecError(
                f"scheduler must be a SchedulerSpec, "
                f"got {type(self.scheduler).__name__}"
            )
        if self.obs is not None and not isinstance(self.obs, ObsConfig):
            raise SpecError(
                f"obs must be an ObsConfig, got {type(self.obs).__name__}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise SpecError(
                f"faults must be a FaultPlan, got {type(self.faults).__name__}"
            )

    @property
    def num_cells(self) -> int:
        """eNB count implied by the placement."""
        return self.placement.num_cells

    @property
    def total_ues(self) -> int:
        """Deployment-wide UE count."""
        return self.num_cells * self.ues_per_cell

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": DEPLOYMENT_KIND,
            "name": self.name,
            "placement": self.placement.to_dict(),
            "ues_per_cell": self.ues_per_cell,
            "wifi_per_cell": self.wifi_per_cell,
            "cell_radius_m": self.cell_radius_m,
            "radio": self.radio.to_dict(),
            "sim": dataclasses.asdict(self.sim),
            "scheduler": self.scheduler.to_dict(),
            "coupling_margin_db": self.coupling_margin_db,
            "num_channels": self.num_channels,
            "channel_assignment": self.channel_assignment,
            "channel_spacing_mhz": self.channel_spacing_mhz,
            "seed": self.seed,
            "fast_path": self.fast_path,
            "record_series": self.record_series,
            "obs": self.obs.to_dict() if self.obs else None,
            "faults": self.faults.to_dict() if self.faults else None,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeploymentSpec":
        data = _require_mapping(data, "deployment")
        kind = data.get("kind", DEPLOYMENT_KIND)
        if kind != DEPLOYMENT_KIND:
            raise SpecError(
                f"not a deployment spec: kind={kind!r} "
                f"(expected {DEPLOYMENT_KIND!r})"
            )
        _reject_unknown(
            data,
            (
                "kind",
                "name",
                "placement",
                "ues_per_cell",
                "wifi_per_cell",
                "cell_radius_m",
                "radio",
                "sim",
                "scheduler",
                "coupling_margin_db",
                "num_channels",
                "channel_assignment",
                "channel_spacing_mhz",
                "seed",
                "fast_path",
                "record_series",
                "obs",
                "faults",
            ),
            "deployment",
        )
        for key in ("name", "placement"):
            if key not in data:
                raise SpecError(f"deployment is missing required field {key!r}")
        sim_raw = _require_mapping(data.get("sim", {}), "sim")
        sim_allowed = tuple(f.name for f in dataclasses.fields(SimulationConfig))
        _reject_unknown(sim_raw, sim_allowed, "sim")
        scheduler_raw = data.get("scheduler", {"kind": "pf"})
        return cls(
            name=data["name"],
            placement=PlacementSpec.from_dict(data["placement"]),
            ues_per_cell=int(data.get("ues_per_cell", 4)),
            wifi_per_cell=int(data.get("wifi_per_cell", 2)),
            cell_radius_m=float(data.get("cell_radius_m", 25.0)),
            radio=RadioSpec.from_dict(data.get("radio", {})),
            sim=SimulationConfig(**sim_raw),
            scheduler=SchedulerSpec.from_dict(scheduler_raw),
            coupling_margin_db=float(data.get("coupling_margin_db", 6.0)),
            num_channels=data.get("num_channels", 1),
            channel_assignment=data.get("channel_assignment", "round-robin"),
            channel_spacing_mhz=float(data.get("channel_spacing_mhz", 20.0)),
            seed=int(data.get("seed", 0)),
            fast_path=bool(data.get("fast_path", True)),
            record_series=bool(data.get("record_series", False)),
            obs=(
                ObsConfig.from_dict(data["obs"])
                if data.get("obs") is not None
                else None
            ),
            faults=(
                FaultPlan.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "DeploymentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid JSON: {error}") from error
        return cls.from_dict(data)

    def replace(self, **changes: Any) -> "DeploymentSpec":
        """A copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)
