"""Interference-cluster partitioning of a multi-cell deployment.

Two cells are *coupled* when a transmitter homed in (or shared with) one
is received within ``margin_db`` dB of the energy-detection threshold
somewhere in the other's sensing footprint — i.e. the coupling-weight
matrix entry satisfies ``W[a, b] >= -margin_db``.  The deployment then
splits into the connected components of this coupling graph.

Soundness argument (why clusters simulate independently): every sensing
or interference relationship the per-cell simulations model — a hidden
terminal edge, an eNB-audible interferer folded into the busy
probability, a shared WiFi node straddling two cells — requires a
received power at or above an ED threshold, and therefore implies a
coupling weight ``>= 0 >= -margin_db`` between the cells involved.  So
every such relationship is an *intra-cluster* relationship; no state in
cluster A's cells depends on anything in cluster B.  Combined with the
per-cell ``SeedSequence`` fan-out (no shared entropy streams), running
clusters in any order, in any process layout, is bit-identical to
running all cells serially.  :func:`verify_partition` checks the
structural half of this argument on a built deployment.

Monotonicity: raising ``margin_db`` only *adds* edges to the coupling
graph, and adding edges only merges connected components — a larger
margin is strictly conservative (the property tests assert this).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DeploymentError

__all__ = [
    "coupling_edges",
    "coupling_clusters",
    "verify_partition",
]


def coupling_edges(
    coupling_db: np.ndarray, margin_db: float
) -> Tuple[Tuple[int, int], ...]:
    """The coupled cell pairs ``(a, b)``, ``a < b``, under ``margin_db``."""
    matrix = _checked_matrix(coupling_db)
    if margin_db < 0:
        raise DeploymentError(f"margin_db must be >= 0: {margin_db}")
    a_idx, b_idx = np.nonzero(np.triu(matrix >= -margin_db, k=1))
    return tuple(zip((int(a) for a in a_idx), (int(b) for b in b_idx)))


def coupling_clusters(
    coupling_db: np.ndarray, margin_db: float
) -> Tuple[Tuple[int, ...], ...]:
    """Partition cells into weakly-coupled interference clusters.

    Connected components of the coupling graph, via union-find.  Clusters
    are canonically ordered: cells sorted within each cluster, clusters
    sorted by their smallest cell — so the result is a pure function of
    the matrix and margin, independent of traversal order.
    """
    matrix = _checked_matrix(coupling_db)
    num_cells = matrix.shape[0]
    parent = list(range(num_cells))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for a, b in coupling_edges(matrix, margin_db):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    groups: dict = {}
    for cell in range(num_cells):
        groups.setdefault(find(cell), []).append(cell)
    clusters = sorted(
        (tuple(sorted(members)) for members in groups.values()),
        key=lambda cluster: cluster[0],
    )
    return tuple(clusters)


def verify_partition(
    coupling_db: np.ndarray,
    margin_db: float,
    clusters: Sequence[Sequence[int]],
) -> None:
    """Prove a cluster assignment sound, or raise :class:`DeploymentError`.

    Checks the two invariants independent simulation rests on:

    1. **True partition** — every cell appears in exactly one cluster, and
       the clusters cover exactly ``0..num_cells-1``.
    2. **No cross-cluster coupling** — no pair of cells in *different*
       clusters has coupling weight ``>= -margin_db``.
    """
    matrix = _checked_matrix(coupling_db)
    num_cells = matrix.shape[0]

    seen: List[int] = []
    for cluster in clusters:
        seen.extend(int(cell) for cell in cluster)
    if sorted(seen) != list(range(num_cells)):
        raise DeploymentError(
            f"clusters are not a partition of {num_cells} cells: "
            f"covered={sorted(seen)}"
        )

    label = np.empty(num_cells, dtype=int)
    for index, cluster in enumerate(clusters):
        for cell in cluster:
            label[cell] = index
    cross = (label[:, None] != label[None, :]) & (matrix >= -margin_db)
    if cross.any():
        a, b = map(int, np.argwhere(cross)[0])
        raise DeploymentError(
            f"cells {a} and {b} are coupled "
            f"({matrix[a, b]:.1f} dB >= {-margin_db:.1f} dB) but assigned "
            f"to different clusters — the partition is unsound"
        )


def _checked_matrix(coupling_db: np.ndarray) -> np.ndarray:
    matrix = np.asarray(coupling_db, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DeploymentError(
            f"coupling matrix must be square: shape {matrix.shape}"
        )
    finite = np.isfinite(matrix)
    if not np.allclose(
        np.where(finite, matrix, 0.0), np.where(finite.T, matrix.T, 0.0)
    ) or not (finite == finite.T).all():
        raise DeploymentError("coupling matrix must be symmetric")
    return matrix
