"""The sharded deployment campaign runner.

A campaign simulates every cell of a deployment under its own per-cell
scheduler instance.  The unit of distribution is an **interference
cluster** (see :mod:`repro.deploy.partition`): one work item per
cluster, fanned out through the resilience layer's
:func:`~repro.resilience.supervisor.supervised_map` with per-cluster
atomic checkpoints, bounded retries, and quarantine of permanently
failing clusters.

Work items are ``(spec_dict, cluster_index)`` — plain data, always
picklable.  Each worker rebuilds the (pure-function-of-the-spec)
deployment, runs its cluster's cells in cell order against the stored
per-cell ``SeedSequence`` streams, and ships the per-cell
:class:`~repro.sim.results.SimulationResult` list back.  Because every
cell's engine stream depends only on the deployment seed tree — never on
which process or cluster shard executed it — sharded execution is
bit-identical to running all cells serially (the regression tests pin
this down).

Worker-level fault injection draws from each cluster's own
``SeedSequence`` child, so fault schedules are per-cluster-deterministic
and independent of how clusters map to processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.deploy.model import Deployment, build_deployment
from repro.deploy.partition import verify_partition
from repro.deploy.spec import DeploymentSpec
from repro.errors import CheckpointError, DeploymentError
from repro.experiments.registry import BuildContext, build_scheduler
from repro.obs.metrics import MetricsSnapshot
from repro.obs.report import collect_snapshot
from repro.resilience.checkpoint import CheckpointStore, QuarantinedCell
from repro.resilience.inject import FaultInjector
from repro.resilience.supervisor import (
    FailedItem,
    SupervisorConfig,
    supervised_map,
)
from repro.sim.engine import CellSimulation
from repro.sim.results import SimulationResult

__all__ = ["CampaignResult", "run_campaign", "resume_campaign"]

#: Manifest ``kind`` for deployment-campaign checkpoints.
DEPLOY_CHECKPOINT_KIND = "deploy"


@dataclass
class CampaignResult:
    """Everything a finished (possibly partially failed) campaign produced."""

    spec: DeploymentSpec
    deployment: Deployment
    #: Per-cell results keyed by cell id; cells of quarantined clusters
    #: are absent.
    cell_results: Dict[int, SimulationResult]
    #: Quarantined clusters keyed by cluster index.
    failed_clusters: Dict[int, FailedItem] = field(default_factory=dict)
    #: Corrupt/torn checkpoint cells that were quarantined and recomputed
    #: during this run — the campaign *degraded* but self-healed.
    quarantined_cells: List[QuarantinedCell] = field(default_factory=list)

    @property
    def num_cells(self) -> int:
        return self.deployment.num_cells

    @property
    def complete(self) -> bool:
        """True when every cell of every cluster produced a result."""
        return len(self.cell_results) == self.deployment.num_cells

    def summaries(self) -> Dict[int, Dict[str, float]]:
        """Per-cell summary metrics, keyed by cell id, in cell order."""
        return {
            cell_id: self.cell_results[cell_id].summary()
            for cell_id in sorted(self.cell_results)
        }

    def per_ue_throughput_bps(self) -> Dict[int, float]:
        """Pooled per-UE throughput under deployment-wide *global* UE ids."""
        pooled: Dict[int, float] = {}
        for cell_id in sorted(self.cell_results):
            cell = self.deployment.cells[cell_id]
            per_ue = self.cell_results[cell_id].per_ue_throughput_bps()
            for local_ue, bps in per_ue.items():
                pooled[cell.global_ue(local_ue)] = bps
        return pooled

    def report(
        self, metrics=("throughput_mbps", "rb_utilization")
    ) -> Dict[str, Any]:
        """Aggregate utilization/fairness report (see
        :func:`repro.analysis.fairness.deployment_report`)."""
        from repro.analysis.fairness import deployment_report

        report = deployment_report(
            self.summaries(), self.per_ue_throughput_bps(), metrics=metrics
        )
        report["num_clusters"] = self.deployment.num_clusters
        report["failed_clusters"] = sorted(self.failed_clusters)
        report["degraded"] = [
            cell.note() for cell in self.quarantined_cells
        ]
        report["cross_cell_hidden_terminals"] = (
            self.deployment.cross_cell_terminal_count()
        )
        return report

    def obs_snapshot(self) -> Optional[MetricsSnapshot]:
        """Deterministic merge of every cell's obs snapshot, in cell order.

        Merge order is ascending cell id — independent of cluster
        completion order or process layout — so the campaign-level
        snapshot is identical for any ``n_jobs``.
        """
        ordered = [
            self.cell_results[cell_id] for cell_id in sorted(self.cell_results)
        ]
        return collect_snapshot(ordered)

    def obs_series(self):
        """Campaign-wide time-series merge, same ordering contract as
        :meth:`obs_snapshot` (``None`` when streaming was off)."""
        from repro.obs.stream import collect_series

        ordered = [
            self.cell_results[cell_id] for cell_id in sorted(self.cell_results)
        ]
        return collect_series(ordered)


def _run_cell(deployment: Deployment, cell_id: int) -> SimulationResult:
    """Simulate one cell of a built deployment with a fresh scheduler."""
    spec = deployment.spec
    cell = deployment.cells[cell_id]
    context = BuildContext(
        num_ues=cell.num_ues,
        topology=cell.topology,
        mean_snr_db=cell.mean_snr_db,
    )
    scheduler = build_scheduler(spec.scheduler, context)
    simulation = CellSimulation(
        topology=cell.topology,
        mean_snr_db=cell.mean_snr_db,
        scheduler=scheduler,
        config=cell.sim_config(spec.sim),
        seed=deployment.cell_sim_seeds[cell_id],
        record_series=spec.record_series,
        fast_path=spec.fast_path,
    )
    obs = spec.obs
    if obs is None or not obs.enabled:
        return simulation.run()
    from repro.obs.session import ObsSession

    obs_scheduler = build_scheduler(spec.scheduler, context)
    session = ObsSession(
        obs,
        phase_probe=lambda: getattr(obs_scheduler, "phase", None),
        run_label=f"cell-{cell_id}",
    )
    simulation = CellSimulation(
        topology=cell.topology,
        mean_snr_db=cell.mean_snr_db,
        scheduler=obs_scheduler,
        config=cell.sim_config(spec.sim),
        seed=deployment.cell_sim_seeds[cell_id],
        record_series=spec.record_series,
        fast_path=spec.fast_path,
        hooks=session.hooks,
    )
    with session.activate():
        result = simulation.run()
    session.finish()
    session.attach(result)
    return result


#: Per-process deployment cache: building a 100-cell deployment is cheap
#: but not free, and a worker may execute many cluster items of the same
#: campaign.  Keyed by the canonical spec JSON; capacity 1 (workers only
#: ever serve one campaign at a time).
_DEPLOYMENT_CACHE: Dict[str, Deployment] = {}


def _cached_deployment(spec_dict: Dict[str, Any]) -> Deployment:
    key = json.dumps(spec_dict, sort_keys=True)
    if key not in _DEPLOYMENT_CACHE:
        _DEPLOYMENT_CACHE.clear()
        _DEPLOYMENT_CACHE[key] = build_deployment(
            DeploymentSpec.from_dict(spec_dict)
        )
    return _DEPLOYMENT_CACHE[key]


#: (spec_dict, cluster_index) — plain data, always picklable.
_ClusterItem = Tuple[Dict[str, Any], int]


def _run_cluster_item(item: _ClusterItem) -> List[Dict[str, Any]]:
    """Worker entry point: run one cluster, return per-cell result states.

    Results cross the process boundary as lossless ``to_state`` dicts
    (rather than live objects) so the same payload is what checkpoints
    store — one serialization, bit-exact either way.
    """
    spec_dict, cluster_index = item
    deployment = _cached_deployment(spec_dict)
    cluster = deployment.clusters[cluster_index]
    return [_run_cell(deployment, cell_id).to_state() for cell_id in cluster]


def _cluster_fault_seed(deployment: Deployment, cluster_index: int) -> int:
    """A stable per-cluster fault seed from the deployment's seed tree."""
    return int(
        deployment.cluster_seeds[cluster_index].generate_state(1)[0]
    )


def run_campaign(
    spec: DeploymentSpec,
    n_jobs: Optional[int] = 1,
    checkpoint_dir=None,
    supervisor: Optional[SupervisorConfig] = None,
    telemetry_dir=None,
) -> CampaignResult:
    """Run a deployment campaign, sharded by interference cluster.

    ``n_jobs`` fans cluster work items over a process pool (``None`` =
    all cores); results are bit-identical for any value.
    ``checkpoint_dir`` persists one atomic file per completed cluster
    plus a manifest, so a killed campaign resumes via
    :func:`resume_campaign` (or ``repro resume``) computing only the
    missing clusters.  ``supervisor`` enables retry/timeout supervision;
    permanently failing clusters are quarantined into
    ``CampaignResult.failed_clusters`` instead of aborting the campaign.
    ``telemetry_dir`` streams the campaign lifecycle into that
    directory's ``telemetry.jsonl`` (see :mod:`repro.obs.telemetry`) for
    ``repro monitor`` — heartbeats, retries, per-cluster completions.
    """
    deployment = build_deployment(spec)
    verify_partition(
        deployment.coupling_db, spec.coupling_margin_db, deployment.clusters
    )
    spec_dict = spec.to_dict()
    num_clusters = deployment.num_clusters

    cluster_states: List[Optional[List[Dict[str, Any]]]] = [None] * num_clusters
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.initialize(
            {
                "kind": DEPLOY_CHECKPOINT_KIND,
                "spec": spec_dict,
                "clusters": [list(cluster) for cluster in deployment.clusters],
            }
        )
        for index in sorted(store.completed()):
            if index < num_clusters:
                # Corrupt/torn cells are quarantined (returned as None)
                # and land back in ``pending`` for recomputation.
                payload = store.load_payload_or_quarantine(index)
                if payload is not None:
                    cluster_states[index] = payload
    pending = [i for i in range(num_clusters) if cluster_states[i] is None]

    telemetry = None
    if telemetry_dir is not None:
        from repro.obs.telemetry import TelemetryLog

        telemetry = TelemetryLog.in_dir(telemetry_dir)
        telemetry.emit(
            "campaign-started",
            campaign=spec.name,
            kind=DEPLOY_CHECKPOINT_KIND,
            clusters=num_clusters,
            cells=deployment.num_cells,
            labels=[f"cluster-{i}" for i in range(num_clusters)],
            completed=[
                f"cluster-{i}"
                for i in range(num_clusters)
                if cluster_states[i] is not None
            ] or None,
        )
        if store is not None:
            for cell in store.quarantined:
                telemetry.emit(
                    "degraded", item=f"cluster-{cell.index}", note=cell.note()
                )

    failed: Dict[int, FailedItem] = {}
    if pending:
        items: List[_ClusterItem] = [(spec_dict, index) for index in pending]

        worker_fault = None
        if spec.faults is not None and spec.faults.has_worker_faults:
            def worker_fault(pos: int, attempt: int):
                cluster_index = pending[pos]
                injector = FaultInjector(
                    spec.faults,
                    seed=_cluster_fault_seed(deployment, cluster_index),
                )
                return injector.worker_fault(cluster_index, attempt)

        def on_result(pos: int, states: List[Dict[str, Any]]) -> None:
            index = pending[pos]
            if store is not None:
                store.save_payload(
                    index, list(deployment.clusters[index]), states
                )
            if telemetry is not None:
                telemetry.emit(
                    "cluster-done",
                    item=f"cluster-{index}",
                    cells=len(deployment.clusters[index]),
                )

        outcome = supervised_map(
            _run_cluster_item,
            items,
            n_jobs=n_jobs,
            config=supervisor,
            worker_fault=worker_fault,
            on_result=on_result if (store or telemetry) else None,
            fail_fast=supervisor is None,
            telemetry=telemetry,
            labels=[f"cluster-{i}" for i in pending],
        )
        for pos, states in enumerate(outcome.results):
            index = pending[pos]
            if isinstance(states, FailedItem):
                failed[index] = states
            else:
                cluster_states[index] = states

    if telemetry is not None:
        telemetry.emit(
            "campaign-done",
            campaign=spec.name,
            failed=sorted(failed) or None,
        )

    cell_results: Dict[int, SimulationResult] = {}
    for index, states in enumerate(cluster_states):
        if states is None:
            continue
        cluster = deployment.clusters[index]
        if len(states) != len(cluster):
            raise DeploymentError(
                f"cluster {index} produced {len(states)} results for "
                f"{len(cluster)} cells"
            )
        for cell_id, state in zip(cluster, states):
            cell_results[cell_id] = SimulationResult.from_state(state)

    return CampaignResult(
        spec=spec,
        deployment=deployment,
        cell_results=cell_results,
        failed_clusters=failed,
        quarantined_cells=list(store.quarantined) if store is not None else [],
    )


def resume_campaign(
    checkpoint_dir,
    n_jobs: Optional[int] = 1,
    supervisor: Optional[SupervisorConfig] = None,
    telemetry_dir=None,
) -> CampaignResult:
    """Finish an interrupted deployment campaign from its manifest alone."""
    store = CheckpointStore(checkpoint_dir)
    manifest = store.load_manifest()
    kind = manifest.get("kind")
    if kind != DEPLOY_CHECKPOINT_KIND:
        raise CheckpointError(
            f"checkpoint manifest has kind {kind!r}; expected "
            f"{DEPLOY_CHECKPOINT_KIND!r}"
        )
    spec = DeploymentSpec.from_dict(manifest["spec"])
    return run_campaign(
        spec, n_jobs=n_jobs, checkpoint_dir=checkpoint_dir,
        supervisor=supervisor, telemetry_dir=telemetry_dir,
    )
