"""The deployment model: many eNBs sharing unlicensed spectrum.

:func:`build_deployment` turns a :class:`~repro.deploy.spec.DeploymentSpec`
into a :class:`Deployment` — seeded eNB/UE/WiFi placement, per-cell
:class:`~repro.topology.graph.InterferenceTopology` construction
(including *cross-cell hidden terminals*), the cell-coupling graph, and
its partition into weakly-coupled interference clusters.

Sensing classification generalizes the single-cell scenario generator
(:mod:`repro.topology.generator`) to a deployment.  For each cell ``c``,
a candidate interferer (an ambient WiFi node, or a UE *homed in another
cell* whose uplink bursts leak into ``c``) is classified by received
power:

* audible at eNB ``c`` (>= the eNB ED threshold): it delays TxOP
  acquisition — folded into the cell's eNB busy probability;
* hidden from eNB ``c`` but audible at >= 1 of ``c``'s UEs (>= the UE ED
  threshold): a hidden terminal of cell ``c``, with one topology edge per
  audible UE — when the transmitter is a foreign UE this is a
  **cross-cell hidden terminal**;
* audible nowhere in ``c``: inert for that cell.

Entropy derives from one ``numpy.random.SeedSequence.spawn`` tree rooted
at ``spec.seed``::

    root ── enb placement ── wifi placement/activity
         ── cells ── cell 0 ── [ue placement, engine stream]
         │        ── cell 1 ── ...
         └─ clusters ── cluster 0 stream, cluster 1 stream, ...

Every stream is spawned exactly once at build time and stored on the
:class:`Deployment`, so two builds of the same spec produce identical
streams, no two cells ever share entropy, and per-cell simulations are
bit-identical no matter which process (or cluster shard) runs them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.deploy.partition import coupling_clusters
from repro.deploy.spec import DeploymentSpec
from repro.errors import DeploymentError
from repro.lte import consts
from repro.sim.config import SimulationConfig
from repro.spectrum.channels import ChannelPlan
from repro.topology.geometry import (
    Position,
    disc_positions,
    grid_positions,
    poisson_positions,
)
from repro.topology.graph import InterferenceTopology

__all__ = [
    "CrossCellTerminal",
    "CellView",
    "Deployment",
    "build_deployment",
]


@dataclass(frozen=True)
class CrossCellTerminal:
    """Provenance of one cross-cell hidden terminal in a cell's topology.

    ``terminal_index`` indexes the host cell's
    :class:`~repro.topology.graph.InterferenceTopology`; the source is UE
    ``source_ue`` (a *global* UE id) homed in ``source_cell``.
    """

    terminal_index: int
    source_cell: int
    source_ue: int


@dataclass(frozen=True)
class CellView:
    """One cell of a deployment, ready to simulate independently.

    UE ids inside ``topology`` / ``mean_snr_db`` are cell-local
    (``0..ues_per_cell-1``); ``ue_ids`` maps local index to global UE id.
    """

    cell_id: int
    enb: Position
    ue_ids: Tuple[int, ...]
    topology: InterferenceTopology
    mean_snr_db: Dict[int, float]
    #: Busy probability of eNB-audible interference (foreign UEs + WiFi),
    #: already combined with the spec-level ``sim.enb_busy_probability``.
    enb_busy_probability: float
    #: WiFi node ids behind each hidden terminal (-1 for cross-cell UEs),
    #: aligned with ``topology`` terminal order.
    terminal_wifi_ids: Tuple[int, ...]
    cross_cell_terminals: Tuple[CrossCellTerminal, ...]

    @property
    def num_ues(self) -> int:
        return len(self.ue_ids)

    def global_ue(self, local_ue: int) -> int:
        """The deployment-wide id of a cell-local UE index."""
        return self.ue_ids[local_ue]

    def sim_config(self, base: SimulationConfig) -> SimulationConfig:
        """The cell's engine config: base with its own eNB busy probability."""
        return dataclasses.replace(
            base, enb_busy_probability=self.enb_busy_probability
        )


@dataclass
class Deployment:
    """A fully built multi-cell deployment with its cluster partition."""

    spec: DeploymentSpec
    enb_positions: Tuple[Position, ...]
    ue_positions: Tuple[Position, ...]
    wifi_positions: Tuple[Position, ...]
    wifi_activity: Tuple[float, ...]
    cells: List[CellView]
    #: Symmetric coupling-weight matrix in dB relative to the ED
    #: thresholds (``>= -margin`` means coupled); ``-inf`` when unrelated.
    coupling_db: np.ndarray
    clusters: Tuple[Tuple[int, ...], ...]
    #: Per-cell engine SeedSequences (spawned once, never re-spawned).
    cell_sim_seeds: Tuple[np.random.SeedSequence, ...]
    #: Per-cell placement SeedSequences (recorded for auditability).
    cell_placement_seeds: Tuple[np.random.SeedSequence, ...]
    #: Per-cluster SeedSequences (fault-injection and any future
    #: cluster-level randomness).
    cluster_seeds: Tuple[np.random.SeedSequence, ...]
    #: Per-cell operating channel (all zeros for 1-channel deployments)
    #: and the channel each ambient WiFi node serves (that of the eNB it
    #: is received strongest at).
    cell_channels: Tuple[int, ...] = ()
    wifi_channels: Tuple[int, ...] = ()

    def cells_on_channel(self, channel: int) -> Tuple[int, ...]:
        """Cell ids assigned to ``channel``."""
        return tuple(
            cell_id
            for cell_id, assigned in enumerate(self.cell_channels)
            if assigned == channel
        )

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def total_ues(self) -> int:
        return len(self.ue_positions)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, cell_id: int) -> int:
        """Index of the cluster containing ``cell_id``."""
        for index, cluster in enumerate(self.clusters):
            if cell_id in cluster:
                return index
        raise DeploymentError(f"cell {cell_id} is in no cluster")

    def cross_cell_terminal_count(self) -> int:
        """Total cross-cell hidden terminals across every cell's graph."""
        return sum(len(cell.cross_cell_terminals) for cell in self.cells)

    def shared_wifi_cells(self) -> Dict[int, Tuple[int, ...]]:
        """``{wifi_id: cells}`` for WiFi nodes hidden-terminal in >= 2 cells."""
        seen: Dict[int, List[int]] = {}
        for cell in self.cells:
            for wifi_id in cell.terminal_wifi_ids:
                if wifi_id >= 0:
                    seen.setdefault(wifi_id, []).append(cell.cell_id)
        return {
            wifi_id: tuple(cells)
            for wifi_id, cells in sorted(seen.items())
            if len(cells) > 1
        }


def _rx_power_dbm(
    tx_power_dbm: float, distance_m: np.ndarray, exponent: float
) -> np.ndarray:
    """Vectorized log-distance received power (mirrors ``PathLossModel``)."""
    d = np.maximum(np.asarray(distance_m, dtype=float), 1.0)
    return tx_power_dbm - (40.0 + 10.0 * exponent * np.log10(d))


def _distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances, shape ``(len(a), len(b))``."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


def _positions_array(positions: Tuple[Position, ...]) -> np.ndarray:
    return np.array([[p.x, p.y] for p in positions], dtype=float)


def _place_enbs(
    spec: DeploymentSpec, rng: np.random.Generator
) -> Tuple[Position, ...]:
    placement = spec.placement
    if placement.kind == "grid":
        rows = int(placement.params.get("rows", 1))
        cols = int(placement.params.get("cols", 1))
        spacing = float(placement.params.get("spacing_m", 120.0))
        return grid_positions(rows, cols, spacing, origin_m=spec.cell_radius_m)
    num_cells = int(placement.params.get("num_cells", 1))
    area = float(placement.params.get("area_m", 500.0))
    return poisson_positions(num_cells, area, area, rng)


def _bounding_box(
    enbs: Tuple[Position, ...], margin_m: float
) -> Tuple[float, float, float, float]:
    xs = [p.x for p in enbs]
    ys = [p.y for p in enbs]
    return (
        min(xs) - margin_m,
        min(ys) - margin_m,
        max(xs) + margin_m,
        max(ys) + margin_m,
    )


def _assign_cell_channels(
    spec: DeploymentSpec, num_cells: int, base_coupling: np.ndarray
) -> Tuple[int, ...]:
    """Per-cell channels: the deployment-level channel-selection lever.

    ``round-robin`` stripes channels by cell id.  ``coloring`` walks
    cells in id order and greedily parks each on the channel least used
    by its already-colored *coupled* neighbours (ties to the lower
    channel index) — classic graph coloring of the unattenuated coupling
    graph, so cells that would contend co-channel are channelized apart
    and the subsequent ACLR-attenuated partition can split them into
    separate clusters.
    """
    n = spec.num_channels
    if spec.channel_assignment == "round-robin":
        return tuple(cell_id % n for cell_id in range(num_cells))
    margin = spec.coupling_margin_db
    channels: List[int] = []
    for cell_id in range(num_cells):
        neighbour_load = [0] * n
        for other, other_channel in enumerate(channels):
            if base_coupling[cell_id, other] >= -margin:
                neighbour_load[other_channel] += 1
        channels.append(int(np.argmin(neighbour_load)))
    return tuple(channels)


def _attenuate_cross_channel(
    plan: ChannelPlan,
    cell_channels: Tuple[int, ...],
    home_cell: np.ndarray,
    ue_at_enb: np.ndarray,
    ue_at_ue: np.ndarray,
    wifi_at_enb: np.ndarray,
    wifi_at_ue: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Tuple[int, ...]]:
    """ACLR-attenuated copies of every received-power map.

    Each entry loses ``aclr_db(listener channel, transmitter channel)``;
    listeners hear through their cell's channel filter (a UE or eNB on
    channel 1 receives a channel-3 transmitter 40+ dB down).  WiFi nodes
    inherit the channel of the eNB they are received strongest at — the
    AP serving that area — and are attenuated like any transmitter.
    Same-channel pairs lose exactly 0.0 dB, so co-channel classification
    is untouched.
    """
    cell_ch = np.asarray(cell_channels, dtype=int)
    ue_ch = cell_ch[home_cell]
    aclr = plan.leakage_matrix_db()

    ue_at_enb = ue_at_enb - aclr[np.ix_(ue_ch, cell_ch)]
    ue_at_ue = ue_at_ue - aclr[np.ix_(ue_ch, ue_ch)]
    if wifi_at_enb.shape[0]:
        wifi_home = wifi_at_enb.argmax(axis=1)
        wifi_ch = cell_ch[wifi_home]
        wifi_at_enb = wifi_at_enb - aclr[np.ix_(wifi_ch, cell_ch)]
        wifi_at_ue = wifi_at_ue - aclr[np.ix_(wifi_ch, ue_ch)]
        wifi_channels = tuple(int(c) for c in wifi_ch)
    else:
        wifi_channels = ()
    return ue_at_enb, ue_at_ue, wifi_at_enb, wifi_at_ue, wifi_channels


def build_deployment(spec: DeploymentSpec) -> Deployment:
    """Build the deployment a spec describes, deterministically from its seed.

    The entire construction — placement, activity draws, per-cell
    classification, coupling, clustering — is a pure function of the
    spec, so workers rebuild an identical deployment from the spec dict
    alone.
    """
    root = np.random.SeedSequence(spec.seed)
    enb_ss, wifi_ss, cells_ss, clusters_ss = root.spawn(4)

    enbs = _place_enbs(spec, np.random.default_rng(enb_ss))
    num_cells = len(enbs)
    if num_cells < 1:
        raise DeploymentError("deployment placed no eNBs")

    cell_children = cells_ss.spawn(num_cells)
    placement_seeds: List[np.random.SeedSequence] = []
    sim_seeds: List[np.random.SeedSequence] = []
    ue_positions: List[Position] = []
    for cell_id in range(num_cells):
        place_ss, sim_ss = cell_children[cell_id].spawn(2)
        placement_seeds.append(place_ss)
        sim_seeds.append(sim_ss)
        ue_positions.extend(
            disc_positions(
                spec.ues_per_cell,
                enbs[cell_id],
                spec.cell_radius_m,
                np.random.default_rng(place_ss),
            )
        )

    wifi_rng = np.random.default_rng(wifi_ss)
    num_wifi = spec.wifi_per_cell * num_cells
    radio = spec.radio
    if num_wifi > 0:
        x0, y0, x1, y1 = _bounding_box(enbs, spec.cell_radius_m)
        xs = wifi_rng.uniform(x0, x1, size=num_wifi)
        ys = wifi_rng.uniform(y0, y1, size=num_wifi)
        wifi_positions = tuple(
            Position(float(x), float(y)) for x, y in zip(xs, ys)
        )
        wifi_activity = tuple(
            float(q)
            for q in wifi_rng.uniform(
                radio.activity_low, radio.activity_high, size=num_wifi
            )
        )
    else:
        wifi_positions = ()
        wifi_activity = ()

    # -- vectorized received-power maps ------------------------------------
    ue_xy = _positions_array(tuple(ue_positions))
    enb_xy = _positions_array(enbs)
    exponent = radio.path_loss_exponent
    # (total_ues, num_cells) and (total_ues, total_ues)
    ue_at_enb = _rx_power_dbm(
        radio.ue_tx_power_dbm, _distances(ue_xy, enb_xy), exponent
    )
    ue_at_ue = _rx_power_dbm(
        radio.ue_tx_power_dbm, _distances(ue_xy, ue_xy), exponent
    )
    if num_wifi > 0:
        wifi_xy = _positions_array(wifi_positions)
        wifi_at_enb = _rx_power_dbm(
            radio.wifi_tx_power_dbm, _distances(wifi_xy, enb_xy), exponent
        )
        wifi_at_ue = _rx_power_dbm(
            radio.wifi_tx_power_dbm, _distances(wifi_xy, ue_xy), exponent
        )
    else:
        wifi_at_enb = np.zeros((0, num_cells))
        wifi_at_ue = np.zeros((0, len(ue_positions)))

    home_cell = np.repeat(np.arange(num_cells), spec.ues_per_cell)
    ue_ed = radio.ue_ed_threshold_dbm
    enb_ed = radio.enb_ed_threshold_dbm

    # -- channel axis ------------------------------------------------------
    # Channelizing attenuates every cross-channel power entry by the
    # plan's ACLR *before* sensing classification and cluster coupling;
    # the 1-channel default skips the whole block, leaving the maps (and
    # therefore every downstream float) untouched.
    cell_channels: Tuple[int, ...] = (0,) * num_cells
    wifi_channels: Tuple[int, ...] = (0,) * num_wifi
    if spec.num_channels > 1:
        plan = ChannelPlan.spaced(
            spec.num_channels, spacing_mhz=spec.channel_spacing_mhz
        )
        base_coupling = _coupling_matrix(
            num_cells, home_cell, ue_at_ue, ue_at_enb, wifi_at_ue,
            wifi_at_enb, ue_ed, enb_ed,
        )
        cell_channels = _assign_cell_channels(spec, num_cells, base_coupling)
        (
            ue_at_enb,
            ue_at_ue,
            wifi_at_enb,
            wifi_at_ue,
            wifi_channels,
        ) = _attenuate_cross_channel(
            plan, cell_channels, home_cell, ue_at_enb, ue_at_ue,
            wifi_at_enb, wifi_at_ue,
        )

    cells: List[CellView] = []
    for cell_id in range(num_cells):
        local = np.flatnonzero(home_cell == cell_id)
        terminals: List[Tuple[float, List[int]]] = []
        terminal_wifi: List[int] = []
        cross: List[CrossCellTerminal] = []
        enb_idle = 1.0 - spec.sim.enb_busy_probability

        # Ambient WiFi interferers, in wifi-id order.
        for wifi_id in range(num_wifi):
            if wifi_at_enb[wifi_id, cell_id] >= enb_ed:
                enb_idle *= 1.0 - wifi_activity[wifi_id]
                continue
            audible = np.flatnonzero(wifi_at_ue[wifi_id, local] >= ue_ed)
            if audible.size:
                terminals.append(
                    (wifi_activity[wifi_id], [int(u) for u in audible])
                )
                terminal_wifi.append(wifi_id)

        # Cross-cell UE transmitters, in global-ue-id order.
        foreign = np.flatnonzero(home_cell != cell_id)
        for ue_global in foreign:
            if ue_at_enb[ue_global, cell_id] >= enb_ed:
                enb_idle *= 1.0 - radio.ue_uplink_activity
                continue
            audible = np.flatnonzero(ue_at_ue[ue_global, local] >= ue_ed)
            if audible.size:
                cross.append(
                    CrossCellTerminal(
                        terminal_index=len(terminals),
                        source_cell=int(home_cell[ue_global]),
                        source_ue=int(ue_global),
                    )
                )
                terminals.append(
                    (radio.ue_uplink_activity, [int(u) for u in audible])
                )
                terminal_wifi.append(-1)

        topology = InterferenceTopology.build(len(local), terminals)
        snrs = {
            int(pos): float(
                ue_at_enb[ue_global, cell_id] - consts.NOISE_FLOOR_10MHZ_DBM
            )
            for pos, ue_global in enumerate(local)
        }
        cells.append(
            CellView(
                cell_id=cell_id,
                enb=enbs[cell_id],
                ue_ids=tuple(int(u) for u in local),
                topology=topology,
                mean_snr_db=snrs,
                enb_busy_probability=min(max(1.0 - enb_idle, 0.0), 0.999),
                terminal_wifi_ids=tuple(terminal_wifi),
                cross_cell_terminals=tuple(cross),
            )
        )

    coupling = _coupling_matrix(
        num_cells, home_cell, ue_at_ue, ue_at_enb, wifi_at_ue, wifi_at_enb,
        ue_ed, enb_ed,
    )
    clusters = coupling_clusters(coupling, spec.coupling_margin_db)
    cluster_seeds = tuple(clusters_ss.spawn(len(clusters)))

    return Deployment(
        spec=spec,
        enb_positions=enbs,
        ue_positions=tuple(ue_positions),
        wifi_positions=wifi_positions,
        wifi_activity=wifi_activity,
        cells=cells,
        coupling_db=coupling,
        clusters=clusters,
        cell_sim_seeds=tuple(sim_seeds),
        cell_placement_seeds=tuple(placement_seeds),
        cluster_seeds=cluster_seeds,
        cell_channels=cell_channels,
        wifi_channels=wifi_channels,
    )


def _coupling_matrix(
    num_cells: int,
    home_cell: np.ndarray,
    ue_at_ue: np.ndarray,
    ue_at_enb: np.ndarray,
    wifi_at_ue: np.ndarray,
    wifi_at_enb: np.ndarray,
    ue_ed: float,
    enb_ed: float,
) -> np.ndarray:
    """The symmetric cell-coupling matrix, in dB relative to ED thresholds.

    ``coupling[a, b]`` is the strongest margin by which any transmitter
    of one cell reaches into the other's sensing footprint (its UEs at
    the UE ED threshold, its eNB at the eNB ED threshold), or — for a
    shared ambient WiFi node ``w`` — the *weaker* of ``w``'s margins into
    the two cells (``w`` couples both only if it reaches both).  A value
    ``>= -margin_db`` makes the cells coupled; the diagonal is ``+inf``.
    """
    total_ues = ue_at_ue.shape[0]
    # margin of UE u's uplink into cell c's sensing footprint: (UEs, cells)
    ue_margin = ue_at_enb - enb_ed
    for cell in range(num_cells):
        members = np.flatnonzero(home_cell == cell)
        if members.size:
            at_ues = ue_at_ue[:, members].max(axis=1) - ue_ed
            ue_margin[:, cell] = np.maximum(ue_margin[:, cell], at_ues)
    # A UE's margin into its own cell is not coupling.
    ue_margin[np.arange(total_ues), home_cell] = -np.inf

    # per-home-cell reduction: strongest member margin into each cell.
    direct = np.full((num_cells, num_cells), -np.inf)
    for cell in range(num_cells):
        members = np.flatnonzero(home_cell == cell)
        if members.size:
            direct[cell, :] = ue_margin[members, :].max(axis=0)
    direct = np.maximum(direct, direct.T)

    coupling = direct
    if wifi_at_ue.shape[0]:
        wifi_margin = wifi_at_enb - enb_ed  # (wifi, cells)
        for cell in range(num_cells):
            members = np.flatnonzero(home_cell == cell)
            if members.size:
                at_ues = wifi_at_ue[:, members].max(axis=1) - ue_ed
                wifi_margin[:, cell] = np.maximum(wifi_margin[:, cell], at_ues)
        # Shared-interferer coupling: min of the two per-cell margins,
        # maximized over WiFi nodes.
        shared = np.minimum(
            wifi_margin[:, :, None], wifi_margin[:, None, :]
        ).max(axis=0)
        np.fill_diagonal(shared, -np.inf)
        coupling = np.maximum(coupling, shared)

    np.fill_diagonal(coupling, np.inf)
    return coupling
