"""Multi-cell deployments: placement, cross-cell hidden terminals,
interference-cluster partitioning, and the sharded campaign runner.

This package generalizes the repo's single-cell world to a deployment of
many eNBs sharing unlicensed spectrum — the scale-out layer under the
ROADMAP's "millions of users" north star:

* :mod:`repro.deploy.spec` — :class:`DeploymentSpec`, the serializable
  description of a deployment campaign (placement process, radio model,
  per-cell populations, scheduler, seed);
* :mod:`repro.deploy.model` — :func:`build_deployment`, which places
  nodes, builds each cell's sensing graph (including *cross-cell hidden
  terminals*), and derives the cell-coupling matrix;
* :mod:`repro.deploy.partition` — weakly-coupled interference clusters
  and the soundness check that lets them simulate independently;
* :mod:`repro.deploy.runner` — the cluster-sharded campaign runner with
  checkpoint/resume and fault tolerance.
"""

from repro.deploy.model import (
    CellView,
    CrossCellTerminal,
    Deployment,
    build_deployment,
)
from repro.deploy.partition import (
    coupling_clusters,
    coupling_edges,
    verify_partition,
)
from repro.deploy.runner import CampaignResult, resume_campaign, run_campaign
from repro.deploy.spec import (
    DEPLOYMENT_KIND,
    DeploymentSpec,
    PlacementSpec,
    RadioSpec,
)

__all__ = [
    "DEPLOYMENT_KIND",
    "PlacementSpec",
    "RadioSpec",
    "DeploymentSpec",
    "CrossCellTerminal",
    "CellView",
    "Deployment",
    "build_deployment",
    "coupling_edges",
    "coupling_clusters",
    "verify_partition",
    "CampaignResult",
    "run_campaign",
    "resume_campaign",
]
