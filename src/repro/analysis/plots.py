"""Terminal plots: bar charts and CDF curves rendered as ASCII.

Benchmarks and examples run headless; these helpers render the paper's
figure shapes (gain bars, accuracy CDFs) directly in the terminal so the
reproduction can be eyeballed without a plotting stack.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

import numpy as np

from repro.analysis.cdf import empirical_cdf
from repro.errors import ConfigurationError

__all__ = ["bar_chart", "cdf_plot", "sparkline"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bar chart of labelled values (non-negative)."""
    if not values:
        raise ConfigurationError("bar chart of no values")
    if width < 4:
        raise ConfigurationError(f"width too small: {width}")
    for label, value in values.items():
        if value < 0:
            raise ConfigurationError(f"negative bar value for {label!r}: {value}")
    peak = max(values.values()) or 1.0
    label_width = max(len(str(label)) for label in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        filled = value / peak * width
        whole = int(filled)
        frac = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        lines.append(f"{str(label).ljust(label_width)} |{bar.ljust(width)}| {value:.3f}")
    return "\n".join(lines)


def cdf_plot(
    values: Sequence[float],
    width: int = 50,
    height: int = 12,
    title: str = "",
) -> str:
    """An ASCII empirical-CDF curve (x: value, y: cumulative fraction)."""
    if height < 3 or width < 8:
        raise ConfigurationError("cdf plot too small to render")
    xs, ys = empirical_cdf(values)
    lo, hi = float(xs[0]), float(xs[-1])
    span = hi - lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - lo) / span * (width - 1))
        row = int((1.0 - y) * (height - 1))
        grid[row][column] = "*"
    lines: List[str] = [title] if title else []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<{width // 2}.3f}{hi:>{width // 2}.3f}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend of a series (e.g. utilization over time)."""
    if len(values) == 0:
        raise ConfigurationError("sparkline of no values")
    array = np.asarray(values, dtype=float)
    lo, hi = float(array.min()), float(array.max())
    span = hi - lo or 1.0
    ticks = "▁▂▃▄▅▆▇█"
    return "".join(
        ticks[min(int((v - lo) / span * (len(ticks) - 1)), len(ticks) - 1)]
        for v in array
    )
