"""Plain-text tables for benchmark output (paper-style result rows)."""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table; floats get 3 decimals."""
    if not headers:
        raise ConfigurationError("table needs headers")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    results: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str],
    baseline: str = "",
    title: str = "",
) -> str:
    """Tabulate named result summaries; optionally add x-over-baseline columns."""
    headers = ["scheduler"] + list(metrics)
    if baseline:
        headers += [f"{m} (x {baseline})" for m in metrics]
    rows = []
    for name, summary in results.items():
        row: List[object] = [name] + [summary[m] for m in metrics]
        if baseline:
            base = results[baseline]
            for m in metrics:
                row.append(summary[m] / base[m] if base[m] else float("inf"))
        rows.append(row)
    return format_table(headers, rows, title=title)
