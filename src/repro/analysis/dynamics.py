"""Analysis of adaptation runs: regret, recovery and episode tables.

The static analysis modules compare whole-run aggregates; under churn the
interesting quantity is *windowed*: how much utilization was lost between
the environment changing and the controller's new blueprint going live,
relative to a dynamics-aware oracle that held the true blueprint all along.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.analysis.tables import format_table
from repro.dynamics.metrics import DynamicsMetrics
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult

__all__ = [
    "windowed_utilization",
    "utilization_regret",
    "recovery_ratio",
    "dynamics_report",
]


def windowed_utilization(
    result: SimulationResult,
    start: int = 0,
    end: Optional[int] = None,
) -> float:
    """Mean per-subframe RB utilization over ``[start, end)`` of the series.

    Requires the run to have been recorded with ``record_series=True``
    (indices are UL subframes with at least one allocated RB).
    """
    series = result.utilization_series
    if not series:
        raise ConfigurationError(
            "no utilization series recorded; run with record_series=True"
        )
    window = series[start:end]
    if not window:
        raise ConfigurationError(
            f"empty utilization window [{start}, {end}) of {len(series)}"
        )
    return sum(window) / len(window)


def utilization_regret(
    result: SimulationResult,
    oracle: SimulationResult,
    start: int = 0,
    end: Optional[int] = None,
) -> float:
    """Oracle-minus-achieved mean utilization over a window (>= 0 in
    expectation; small negative values just mean the oracle got unlucky)."""
    return windowed_utilization(oracle, start, end) - windowed_utilization(
        result, start, end
    )


def recovery_ratio(
    adaptive: SimulationResult,
    reference: SimulationResult,
    start: int = 0,
    end: Optional[int] = None,
) -> float:
    """Post-change utilization of the adaptive run over the reference's.

    The acceptance metric of the churn demo: >= 0.9 against a from-scratch
    re-blueprint means partial re-measurement recovered (at least) 90% of
    the utilization at a fraction of the measurement cost.
    """
    ref = windowed_utilization(reference, start, end)
    if ref <= 0.0:
        return float("inf")
    return windowed_utilization(adaptive, start, end) / ref


def dynamics_report(
    results: Mapping[str, SimulationResult],
    metrics_by_name: Mapping[str, DynamicsMetrics] = {},
    change_subframe: Optional[int] = None,
    title: str = "dynamics",
) -> str:
    """One row per run: throughput, utilization, and adaptation telemetry."""
    headers = [
        "run",
        "throughput_mbps",
        "rb_utilization",
        "detections",
        "detect_delay",
        "reconv_sf",
        "remeasure_sf",
    ]
    rows = []
    for name, result in results.items():
        summary = result.summary()
        telemetry = metrics_by_name.get(name)
        if telemetry is None:
            rows.append(
                [name, summary["throughput_mbps"], summary["rb_utilization"],
                 "-", "-", "-", "-"]
            )
            continue
        stats = telemetry.summary()
        delay: object = "-"
        if change_subframe is not None:
            measured = telemetry.detection_delay(change_subframe)
            delay = measured if measured is not None else "miss"
        rows.append(
            [
                name,
                summary["throughput_mbps"],
                summary["rb_utilization"],
                stats["detections"],
                delay,
                stats["mean_reconvergence_subframes"],
                stats["partial_measurement_subframes"],
            ]
        )
    return format_table(headers, rows, title=title)
