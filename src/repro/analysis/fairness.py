"""Deployment-scale fairness and per-cell distribution analytics.

The deployment report answers the questions a multi-cell campaign
raises that single-cell tables cannot: how evenly is capacity shared
*across cells* (Jain fairness over per-cell throughput), how evenly
*across every UE in the deployment* (Jain over the pooled per-UE
throughputs), and what the per-cell metric distributions look like
(CDF percentiles over cells rather than over subframes).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence, Tuple

from repro.analysis.cdf import percentile
from repro.core.scheduling.fairness import jain_fairness_index
from repro.errors import ConfigurationError

__all__ = [
    "jain_fairness",
    "per_cell_metric",
    "cell_cdf",
    "cdf_percentiles",
    "deployment_report",
]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index over a sample: 1 fair, ``1/n`` maximally unfair.

    The analysis-layer face of
    :func:`~repro.core.scheduling.fairness.jain_fairness_index`, applied
    to per-cell or pooled per-UE metrics rather than per-UE delivered
    bits inside one cell.
    """
    if len(values) == 0:
        raise ConfigurationError("fairness index of an empty sequence")
    negatives = [v for v in values if v < 0]
    if negatives:
        raise ConfigurationError(
            f"fairness index needs non-negative values: {negatives[:3]}"
        )
    return jain_fairness_index(list(values))


def per_cell_metric(
    summaries: Mapping[int, Mapping[str, float]], metric: str
) -> Dict[int, float]:
    """Extract one summary metric per cell, keyed by cell id.

    ``summaries`` is ``{cell_id: result.summary()}`` (what
    :meth:`~repro.deploy.runner.CampaignResult.summaries` returns).
    """
    if not summaries:
        raise ConfigurationError("no cell summaries")
    out: Dict[int, float] = {}
    for cell_id in sorted(summaries):
        summary = summaries[cell_id]
        if metric not in summary:
            raise ConfigurationError(
                f"cell {cell_id} summary has no metric {metric!r}; "
                f"has: {sorted(summary)}"
            )
        out[int(cell_id)] = float(summary[metric])
    return out


def cell_cdf(
    summaries: Mapping[int, Mapping[str, float]], metric: str
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Empirical CDF of one metric across cells: ``(values, fractions)``."""
    from repro.analysis.cdf import empirical_cdf

    values = list(per_cell_metric(summaries, metric).values())
    sorted_values, fractions = empirical_cdf(values)
    return tuple(float(v) for v in sorted_values), tuple(
        float(f) for f in fractions
    )


def cdf_percentiles(
    values: Sequence[float], qs: Sequence[float] = (10.0, 50.0, 90.0)
) -> Dict[str, float]:
    """Named percentiles of a sample: ``{"p10": ..., "p50": ..., ...}``."""
    return {f"p{q:g}": percentile(values, q) for q in qs}


def deployment_report(
    summaries: Mapping[int, Mapping[str, float]],
    per_ue_throughput_bps: Mapping[int, float],
    metrics: Sequence[str] = ("throughput_mbps", "rb_utilization"),
) -> Dict[str, Any]:
    """Aggregate utilization/fairness report for a deployment campaign.

    ``summaries`` maps cell id to that cell's summary dict;
    ``per_ue_throughput_bps`` pools every UE in the deployment under
    *global* UE ids.  Returns a JSON-ready dict with:

    * ``num_cells`` / ``num_ues`` — population actually reported on;
    * ``cell_fairness`` — Jain index over per-cell throughput;
    * ``ue_fairness`` — Jain index over pooled per-UE throughput;
    * ``aggregate_throughput_mbps`` — deployment-wide sum;
    * ``mean_rb_utilization`` — mean of per-cell utilization;
    * ``per_metric`` — per-cell mean + p10/p50/p90 for each ``metrics``.
    """
    if not per_ue_throughput_bps:
        raise ConfigurationError("no per-UE throughputs")
    cell_tput = per_cell_metric(summaries, "throughput_mbps")
    cell_util = per_cell_metric(summaries, "rb_utilization")
    ue_values = [
        float(per_ue_throughput_bps[ue]) for ue in sorted(per_ue_throughput_bps)
    ]
    per_metric: Dict[str, Dict[str, float]] = {}
    for metric in metrics:
        values = list(per_cell_metric(summaries, metric).values())
        entry = {"mean": float(sum(values) / len(values))}
        entry.update(cdf_percentiles(values))
        per_metric[metric] = entry
    return {
        "num_cells": len(summaries),
        "num_ues": len(ue_values),
        "aggregate_throughput_mbps": float(sum(cell_tput.values())),
        "mean_rb_utilization": float(
            sum(cell_util.values()) / len(cell_util)
        ),
        "cell_fairness": jain_fairness(list(cell_tput.values())),
        "ue_fairness": jain_fairness(ue_values),
        "per_metric": per_metric,
    }
