"""Result analysis helpers: CDFs and report tables."""

from repro.analysis.cdf import cdf_at, empirical_cdf, fraction_at_least, percentile
from repro.analysis.channels import channel_assignment_report, per_channel_metrics
from repro.analysis.fairness import (
    cdf_percentiles,
    cell_cdf,
    deployment_report,
    jain_fairness,
    per_cell_metric,
)
from repro.analysis.dynamics import (
    dynamics_report,
    recovery_ratio,
    utilization_regret,
    windowed_utilization,
)
from repro.analysis.plots import bar_chart, cdf_plot, sparkline
from repro.analysis.report import comparison_report, sweep_report
from repro.analysis.tables import format_comparison, format_table

__all__ = [
    "bar_chart",
    "cdf_at",
    "cdf_percentiles",
    "cdf_plot",
    "cell_cdf",
    "channel_assignment_report",
    "comparison_report",
    "deployment_report",
    "dynamics_report",
    "empirical_cdf",
    "format_comparison",
    "format_table",
    "fraction_at_least",
    "jain_fairness",
    "per_cell_metric",
    "per_channel_metrics",
    "percentile",
    "recovery_ratio",
    "sparkline",
    "sweep_report",
    "utilization_regret",
    "windowed_utilization",
]
