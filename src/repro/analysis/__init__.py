"""Result analysis helpers: CDFs and report tables."""

from repro.analysis.cdf import cdf_at, empirical_cdf, fraction_at_least, percentile
from repro.analysis.channels import channel_assignment_report, per_channel_metrics
from repro.analysis.fairness import (
    cdf_percentiles,
    cell_cdf,
    deployment_report,
    jain_fairness,
    per_cell_metric,
)
from repro.analysis.dynamics import (
    dynamics_report,
    recovery_ratio,
    utilization_regret,
    windowed_utilization,
)
from repro.analysis.plots import bar_chart, cdf_plot, sparkline
from repro.analysis.report import comparison_report, sweep_report
from repro.analysis.tables import format_comparison, format_table
from repro.analysis.timeseries import (
    detection_to_recovery,
    detection_windows,
    format_timeseries_report,
    timeseries_report,
    utilization_timeline,
    windows_around,
)

__all__ = [
    "bar_chart",
    "cdf_at",
    "cdf_percentiles",
    "cdf_plot",
    "cell_cdf",
    "channel_assignment_report",
    "comparison_report",
    "deployment_report",
    "detection_to_recovery",
    "detection_windows",
    "dynamics_report",
    "empirical_cdf",
    "format_comparison",
    "format_table",
    "format_timeseries_report",
    "fraction_at_least",
    "jain_fairness",
    "per_cell_metric",
    "per_channel_metrics",
    "percentile",
    "recovery_ratio",
    "sparkline",
    "sweep_report",
    "timeseries_report",
    "utilization_regret",
    "utilization_timeline",
    "windowed_utilization",
    "windows_around",
]
