"""Markdown experiment reports.

Turns a dictionary of named :class:`~repro.sim.results.SimulationResult`
objects (one comparison run) into a self-contained markdown section —
the building block for regenerating an EXPERIMENTS.md-style document from
fresh runs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult

__all__ = ["comparison_report", "sweep_report"]

_DEFAULT_METRICS = (
    "throughput_mbps",
    "rb_utilization",
    "grant_blocked",
    "grant_collided",
    "jain_index",
)


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        lines.append("| " + " | ".join(render(c) for c in row) + " |")
    return "\n".join(lines)


def comparison_report(
    results: Mapping[str, SimulationResult],
    title: str,
    baseline: str = "pf",
    metrics: Sequence[str] = _DEFAULT_METRICS,
    notes: Optional[str] = None,
) -> str:
    """One markdown section for a scheduler comparison."""
    if not results:
        raise ConfigurationError("no results to report")
    if baseline not in results:
        raise ConfigurationError(f"baseline {baseline!r} not among results")
    summaries = {name: result.summary() for name, result in results.items()}
    base = summaries[baseline]

    headers = ["scheduler"] + list(metrics) + [f"throughput vs {baseline}"]
    rows: List[List[object]] = []
    for name, summary in summaries.items():
        gain = (
            summary["throughput_mbps"] / base["throughput_mbps"]
            if base["throughput_mbps"]
            else float("inf")
        )
        rows.append([name] + [summary[m] for m in metrics] + [f"{gain:.2f}x"])

    parts = [f"## {title}", "", _markdown_table(headers, rows)]
    if notes:
        parts += ["", notes]
    return "\n".join(parts) + "\n"


def sweep_report(
    points: Mapping[object, Mapping[str, SimulationResult]],
    title: str,
    metric: str = "throughput_mbps",
    baseline: str = "pf",
) -> str:
    """One markdown section for a parameter sweep (rows = sweep values)."""
    if not points:
        raise ConfigurationError("no sweep points to report")
    scheduler_names: List[str] = []
    for results in points.values():
        for name in results:
            if name not in scheduler_names:
                scheduler_names.append(name)
        if baseline not in results:
            raise ConfigurationError(f"baseline {baseline!r} missing at a point")

    headers = ["parameter"] + [f"{n} {metric}" for n in scheduler_names] + [
        f"best gain vs {baseline}"
    ]
    rows: List[List[object]] = []
    for parameter, results in points.items():
        summaries = {n: r.summary()[metric] for n, r in results.items()}
        base_value = summaries[baseline]
        others = [v for n, v in summaries.items() if n != baseline]
        if not others:
            gain_cell = "-"
        elif not base_value:
            gain_cell = "inf"
        else:
            gain_cell = f"{max(others) / base_value:.2f}x"
        rows.append(
            [parameter]
            + [summaries.get(n, float("nan")) for n in scheduler_names]
            + [gain_cell]
        )
    return "\n".join([f"## {title}", "", _markdown_table(headers, rows)]) + "\n"
