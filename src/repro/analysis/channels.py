"""Per-channel result analysis: assignment tables and metric extraction.

The channel axis produces two things worth reading after a run: *where*
the UEs were parked (and how clear each channel's blueprint said it was),
and *what happened* per channel (grants by outcome, silencing events —
the ``engine.channel_*`` labeled families of an observability snapshot).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.analysis.tables import format_table
from repro.topology.multichannel import MultiChannelTopology

__all__ = ["channel_assignment_report", "per_channel_metrics"]


def channel_assignment_report(
    topology: MultiChannelTopology,
    ue_channels: Sequence[int],
    title: str = "channel assignment",
) -> str:
    """ASCII table: per channel, population, occupancy, blueprint access.

    ``access`` is the mean blueprint access probability of the UEs
    *assigned* to the channel (1.0 when the channel is empty of both UEs
    and audible terminals).
    """
    rows = []
    for channel in range(topology.num_channels):
        ues = [u for u, c in enumerate(ue_channels) if c == channel]
        view = topology.channel_view(channel)
        access = (
            sum(view.access_probability(u) for u in ues) / len(ues)
            if ues
            else 1.0
        )
        rows.append(
            [
                channel,
                f"{topology.plan.centers_mhz[channel]:.0f}",
                len(ues),
                len(topology.terminals_on(channel)),
                float(topology.channel_busy_probability(channel)),
                float(access),
            ]
        )
    return format_table(
        ["channel", "center_mhz", "ues", "terminals", "busy_prob", "access"],
        rows,
        title=title,
    )


def per_channel_metrics(snapshot: Any) -> Optional[Dict[str, Dict[str, Any]]]:
    """Extract the ``engine.channel_*`` families from a metrics snapshot.

    Accepts a :class:`~repro.obs.MetricsSnapshot` (or any object with a
    compatible ``get``).  Returns ``{channel: {"ues": n, "silenced": n,
    "outcomes": {name: count}}}`` keyed by channel label, or ``None`` when
    the run carried no channel axis.
    """
    ues = snapshot.get("engine.channel_ues")
    if ues is None:
        return None
    channels: Dict[str, Dict[str, Any]] = {}

    def bucket(channel: str) -> Dict[str, Any]:
        return channels.setdefault(
            channel, {"ues": 0, "silenced": 0, "outcomes": {}}
        )

    for labels, data in ues["series"].items():
        bucket(labels[0])["ues"] = data["value"]
    silenced = snapshot.get("engine.channel_silenced")
    if silenced is not None:
        for labels, data in silenced["series"].items():
            bucket(labels[0])["silenced"] = data["value"]
    outcomes = snapshot.get("engine.channel_grant_outcomes")
    if outcomes is not None:
        for labels, data in outcomes["series"].items():
            channel, outcome = labels
            bucket(channel)["outcomes"][outcome] = data["value"]
    return channels
