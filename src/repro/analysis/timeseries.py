"""Windowed time-series reports over streamed ``obs_series`` frames.

The stream layer (:mod:`repro.obs.stream`) produces columnar
:class:`~repro.obs.stream.TimeSeriesFrame` payloads — one row per
subframe window.  This module turns them into the reports the paper's
dynamics story needs: utilization-vs-time around churn events, and
detection-to-recovery timelines showing how long the controller spends
re-measuring after each drift detection.

Everything here is pure data-in/data-out over a frame (or its dict
form): no engine, no registry, no clock — so the reports are identical
whether the frame came from a live run, a checkpoint resume, or a
parallel-worker merge.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ObsError
from repro.obs.stream import TimeSeriesFrame

__all__ = [
    "detection_to_recovery",
    "detection_windows",
    "format_timeseries_report",
    "timeseries_report",
    "utilization_timeline",
    "windows_around",
]

_Frame = Union[TimeSeriesFrame, Mapping[str, Any]]

#: Counter column the drift detector increments (see repro.obs hooks).
DRIFT_COLUMN = "dynamics.drift_detections"

#: Phase label column written by the stream recorder's phase probe.
PHASE_COLUMN = "phase"

#: Phase names that count as "recovered" (normal speculative operation).
_RECOVERED_PHASES = frozenset({"speculative"})


def _as_frame(frame: _Frame) -> TimeSeriesFrame:
    if isinstance(frame, TimeSeriesFrame):
        return frame
    return TimeSeriesFrame.from_dict(frame)


def utilization_timeline(frame: _Frame) -> List[Dict[str, Any]]:
    """Per-window utilization rows: ``{window_start, utilization, phase?}``.

    Utilization is the window's mean RB utilization derived from the
    streamed histogram deltas (0.0 for windows with no UL subframe).
    Raises :class:`~repro.errors.ObsError` when the frame did not stream
    the ``engine.rb_utilization`` family.
    """
    frame = _as_frame(frame)
    utilization = frame.utilization()
    if not utilization and frame.num_rows:
        raise ObsError(
            "frame has no engine.rb_utilization columns; was the family "
            "excluded from stream_families?"
        )
    starts = frame.window_starts()
    phases = (
        frame.column(PHASE_COLUMN) if PHASE_COLUMN in frame.columns else None
    )
    rows: List[Dict[str, Any]] = []
    for i, (start, value) in enumerate(zip(starts, utilization)):
        row: Dict[str, Any] = {
            "window_start": start,
            "utilization": value,
        }
        if phases is not None:
            row["phase"] = phases[i]
        rows.append(row)
    return rows


def detection_windows(frame: _Frame) -> List[int]:
    """Row indices of windows in which the drift detector fired."""
    frame = _as_frame(frame)
    if DRIFT_COLUMN not in frame.columns:
        return []
    return [
        index
        for index, delta in enumerate(frame.column(DRIFT_COLUMN))
        if delta > 0
    ]


def windows_around(
    frame: _Frame,
    row: int,
    before: int = 3,
    after: int = 5,
) -> List[Dict[str, Any]]:
    """Utilization rows in ``[row - before, row + after]``, clipped.

    The churn-event zoom: call with a detection window's row index to
    see utilization collapse and recover around it.
    """
    frame = _as_frame(frame)
    if not 0 <= row < frame.num_rows:
        raise ObsError(
            f"row {row} out of range for a {frame.num_rows}-row frame"
        )
    timeline = utilization_timeline(frame)
    lo = max(0, row - before)
    hi = min(frame.num_rows, row + after + 1)
    rows = []
    for index in range(lo, hi):
        entry = dict(timeline[index])
        entry["offset"] = index - row
        rows.append(entry)
    return rows


def detection_to_recovery(frame: _Frame) -> List[Dict[str, Any]]:
    """Detection-to-recovery timeline, one entry per drift detection.

    For each window where the drift detector fired, finds the first
    subsequent window whose controller phase is back to normal
    (``speculative``).  ``recovery_windows`` is that distance in windows
    (``None`` when the run ended first); ``recovery_subframes`` scales it
    by the frame's window size.  Frames without a phase column (PF and
    other phase-less schedulers) return detections with no recovery info.
    """
    frame = _as_frame(frame)
    detections = detection_windows(frame)
    phases = (
        frame.column(PHASE_COLUMN) if PHASE_COLUMN in frame.columns else None
    )
    starts = frame.window_starts()
    entries: List[Dict[str, Any]] = []
    for row in detections:
        entry: Dict[str, Any] = {
            "window": row,
            "window_start": starts[row],
            "recovery_windows": None,
            "recovery_subframes": None,
        }
        if phases is not None:
            for later in range(row + 1, frame.num_rows):
                if phases[later] in _RECOVERED_PHASES:
                    entry["recovery_windows"] = later - row
                    entry["recovery_subframes"] = (later - row) * frame.window
                    break
        entries.append(entry)
    return entries


def timeseries_report(frame: _Frame) -> Dict[str, Any]:
    """Headline stats for one streamed frame.

    ``utilization`` min/mean/max over windows, the number of drift
    detections with their mean recovery distance, and the per-phase
    window counts.
    """
    frame = _as_frame(frame)
    utilization = frame.utilization()
    report: Dict[str, Any] = {
        "windows": frame.num_rows,
        "window_size": frame.window,
        "columns": len(frame.columns) - 1,
    }
    if utilization:
        report["utilization"] = {
            "min": min(utilization),
            "mean": sum(utilization) / len(utilization),
            "max": max(utilization),
        }
    recoveries = detection_to_recovery(frame)
    report["drift_detections"] = len(recoveries)
    recovered = [
        entry["recovery_windows"]
        for entry in recoveries
        if entry["recovery_windows"] is not None
    ]
    report["mean_recovery_windows"] = (
        sum(recovered) / len(recovered) if recovered else None
    )
    if PHASE_COLUMN in frame.columns:
        counts: Dict[str, int] = {}
        for phase in frame.column(PHASE_COLUMN):
            if phase:
                counts[phase] = counts.get(phase, 0) + 1
        report["phase_windows"] = counts
    return report


def format_timeseries_report(
    frames: Mapping[str, _Frame],
    sparkline_width: int = 40,
) -> str:
    """Render per-run frame reports as the repo's standard ASCII table.

    One row per run: window count, utilization min/mean/max with a
    sparkline of the timeline, drift detections and mean recovery.
    """
    from repro.analysis.plots import sparkline
    from repro.analysis.tables import format_table

    rows: List[Sequence[Any]] = []
    for name in frames:
        frame = _as_frame(frames[name])
        report = timeseries_report(frame)
        utilization = frame.utilization()
        if len(utilization) > sparkline_width:
            # Downsample by striding so the sparkline stays terminal-width.
            stride = -(-len(utilization) // sparkline_width)
            utilization = utilization[::stride]
        util = report.get("utilization")
        recovery: Optional[float] = report["mean_recovery_windows"]
        rows.append(
            [
                name,
                report["windows"],
                util["min"] if util else float("nan"),
                util["mean"] if util else float("nan"),
                util["max"] if util else float("nan"),
                sparkline(utilization) if utilization else "-",
                report["drift_detections"],
                f"{recovery:.1f}w" if recovery is not None else "-",
            ]
        )
    return format_table(
        [
            "run",
            "windows",
            "util min",
            "util mean",
            "util max",
            "timeline",
            "detections",
            "recovery",
        ],
        rows,
        title="Streamed time series (per window)",
    )
