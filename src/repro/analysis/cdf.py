"""Empirical CDFs — the presentation form of Fig. 14."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["empirical_cdf", "cdf_at", "fraction_at_least", "percentile"]


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fractions)``."""
    if len(values) == 0:
        raise ConfigurationError("CDF of an empty sample")
    sorted_values = np.sort(np.asarray(values, dtype=float))
    fractions = np.arange(1, len(sorted_values) + 1) / len(sorted_values)
    return sorted_values, fractions


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """``P(X <= threshold)`` under the empirical distribution."""
    if len(values) == 0:
        raise ConfigurationError("CDF of an empty sample")
    array = np.asarray(values, dtype=float)
    return float((array <= threshold).mean())


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    """``P(X >= threshold)`` — e.g. 'accuracy is 100% for 70% of cases'."""
    if len(values) == 0:
        raise ConfigurationError("fraction of an empty sample")
    array = np.asarray(values, dtype=float)
    return float((array >= threshold).mean())


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100)."""
    if len(values) == 0:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile outside [0,100]: {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))
