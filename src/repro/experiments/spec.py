"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single serializable description of one
experiment: which scenario to build (topology + SNR draw), which
schedulers to compare (by registry kind), the :class:`SimulationConfig`,
an optional environment timeline, and the seed.  Specs are frozen and
round-trip losslessly through ``to_dict``/``from_dict`` (and therefore
JSON), so an experiment can live in a ``specs/*.json`` file, travel to a
worker process, or be archived next to its results.

Validation is strict: unknown keys, unknown kinds, and malformed values
raise :class:`~repro.errors.SpecError` (a ``ConfigurationError``
subclass), never a bare ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SpecError
from repro.obs.config import ObsConfig
from repro.resilience.faults import FaultPlan
from repro.sim.config import SimulationConfig
from repro.spectrum.channels import ChannelPlan

__all__ = [
    "ChannelSpec",
    "ScenarioSpec",
    "SchedulerSpec",
    "TimelineSpec",
    "ExperimentSpec",
]


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, Mapping):
        raise SpecError(f"{where} must be a mapping, got {type(value).__name__}")
    bad = [key for key in value if not isinstance(key, str)]
    if bad:
        raise SpecError(f"{where} has non-string keys: {bad}")
    return dict(value)


def _require_kind(data: Mapping[str, Any], where: str) -> str:
    kind = data.get("kind")
    if not isinstance(kind, str) or not kind:
        raise SpecError(f"{where} needs a non-empty string 'kind'")
    return kind


def _reject_unknown(data: Mapping[str, Any], allowed: Tuple[str, ...], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"unknown field(s) {unknown} in {where}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """Reference to a registered topology scenario plus its SNR draw.

    ``kind`` names a builder in the scenario registry (``fig1``,
    ``testbed``, ``skewed``, ``generated``); ``params`` are its keyword
    arguments.  ``snr`` describes the per-UE mean-SNR assignment:
    ``{"kind": "uniform", ...}``, ``{"kind": "fixed", "snr_db": ...}`` or
    ``{"kind": "explicit", "by_ue": {"0": 20.0, ...}}``.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    snr: Dict[str, Any] = field(default_factory=lambda: {"kind": "uniform"})

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params), "snr": dict(self.snr)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        data = _require_mapping(data, "scenario")
        _reject_unknown(data, ("kind", "params", "snr"), "scenario")
        kind = _require_kind(data, "scenario")
        params = _require_mapping(data.get("params", {}), "scenario.params")
        snr = _require_mapping(data.get("snr", {"kind": "uniform"}), "scenario.snr")
        _require_kind(snr, "scenario.snr")
        return cls(kind=kind, params=params, snr=snr)


@dataclass(frozen=True)
class SchedulerSpec:
    """Reference to a registered scheduler/controller kind."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str = "scheduler") -> "SchedulerSpec":
        data = _require_mapping(data, where)
        _reject_unknown(data, ("kind", "params"), where)
        kind = _require_kind(data, where)
        params = _require_mapping(data.get("params", {}), f"{where}.params")
        return cls(kind=kind, params=params)


@dataclass(frozen=True)
class TimelineSpec:
    """Reference to a registered environment-timeline builder."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimelineSpec":
        data = _require_mapping(data, "timeline")
        _reject_unknown(data, ("kind", "params"), "timeline")
        kind = _require_kind(data, "timeline")
        params = _require_mapping(data.get("params", {}), "timeline.params")
        return cls(kind=kind, params=params)


_CHANNEL_ASSIGNMENTS = ("static", "blueprint")


@dataclass(frozen=True)
class ChannelSpec:
    """The channel axis of an experiment: plan, homes, and assignment.

    ``plan`` defines the channels themselves (centers + ACLR model);
    ``terminal_channels``/``terminal_margins_db`` place the scenario's
    hidden terminals onto home channels (empty tuples mean all on
    channel 0 with zero margin).  ``assignment`` chooses how UEs get
    their channel: ``"static"`` parks every UE on ``channel`` (or on the
    explicit ``ue_channels`` list), ``"blueprint"`` lets the scheduler's
    channel-selection stage pick per-UE channels from the blueprint
    (``load_penalty`` spreads UEs over equally-clear channels).

    The default ``ChannelSpec()`` is the 1-channel plan with everything
    on channel 0 — bit-exact with a spec that has no channel block.
    """

    plan: ChannelPlan = field(default_factory=ChannelPlan.default)
    terminal_channels: Tuple[int, ...] = ()
    terminal_margins_db: Tuple[float, ...] = ()
    assignment: str = "static"
    channel: int = 0
    ue_channels: Optional[Tuple[int, ...]] = None
    load_penalty: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.plan, ChannelPlan):
            raise SpecError(
                f"channels.plan must be a ChannelPlan, "
                f"got {type(self.plan).__name__}"
            )
        object.__setattr__(
            self, "terminal_channels", tuple(int(c) for c in self.terminal_channels)
        )
        object.__setattr__(
            self,
            "terminal_margins_db",
            tuple(float(m) for m in self.terminal_margins_db),
        )
        if self.ue_channels is not None:
            object.__setattr__(
                self, "ue_channels", tuple(int(c) for c in self.ue_channels)
            )
        if self.assignment not in _CHANNEL_ASSIGNMENTS:
            raise SpecError(
                f"channels.assignment must be one of "
                f"{sorted(_CHANNEL_ASSIGNMENTS)}: {self.assignment!r}"
            )
        if not 0 <= self.channel < self.plan.num_channels:
            raise SpecError(
                f"channels.channel {self.channel} outside plan with "
                f"{self.plan.num_channels} channel(s)"
            )
        for home in self.terminal_channels:
            if not 0 <= home < self.plan.num_channels:
                raise SpecError(
                    f"channels.terminal_channels entry {home} outside plan "
                    f"with {self.plan.num_channels} channel(s)"
                )
        for margin in self.terminal_margins_db:
            if margin < 0.0:
                raise SpecError(
                    f"channels.terminal_margins_db must be >= 0: {margin}"
                )
        if self.ue_channels is not None:
            for assigned in self.ue_channels:
                if not 0 <= assigned < self.plan.num_channels:
                    raise SpecError(
                        f"channels.ue_channels entry {assigned} outside plan "
                        f"with {self.plan.num_channels} channel(s)"
                    )
        if self.load_penalty < 0.0:
            raise SpecError(
                f"channels.load_penalty must be >= 0: {self.load_penalty}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "terminal_channels": list(self.terminal_channels),
            "terminal_margins_db": list(self.terminal_margins_db),
            "assignment": self.assignment,
            "channel": self.channel,
            "ue_channels": (
                list(self.ue_channels) if self.ue_channels is not None else None
            ),
            "load_penalty": self.load_penalty,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChannelSpec":
        data = _require_mapping(data, "channels")
        _reject_unknown(
            data,
            (
                "plan",
                "terminal_channels",
                "terminal_margins_db",
                "assignment",
                "channel",
                "ue_channels",
                "load_penalty",
            ),
            "channels",
        )
        plan_raw = data.get("plan")
        plan = (
            ChannelPlan.from_dict(_require_mapping(plan_raw, "channels.plan"))
            if plan_raw is not None
            else ChannelPlan.default()
        )
        channel = data.get("channel", 0)
        if not isinstance(channel, int) or isinstance(channel, bool):
            raise SpecError(f"channels.channel must be an int: {channel!r}")
        ue_channels = data.get("ue_channels")
        return cls(
            plan=plan,
            terminal_channels=tuple(data.get("terminal_channels", ())),
            terminal_margins_db=tuple(data.get("terminal_margins_db", ())),
            assignment=data.get("assignment", "static"),
            channel=channel,
            ue_channels=tuple(ue_channels) if ue_channels is not None else None,
            load_penalty=float(data.get("load_penalty", 0.0)),
        )


_SIM_FIELDS = tuple(f.name for f in dataclasses.fields(SimulationConfig))


def _sim_config_from_dict(data: Mapping[str, Any]) -> SimulationConfig:
    data = _require_mapping(data, "sim")
    _reject_unknown(data, _SIM_FIELDS, "sim")
    return SimulationConfig(**data)


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, serializable experiment description.

    ``schedulers`` maps display names (the keys of the result dict) to
    :class:`SchedulerSpec` registry references.  ``seed`` drives every
    source of randomness in a run; all schedulers face the identical
    seeded world (the matched-conditions contract of ``sim.runner``).
    """

    name: str
    scenario: ScenarioSpec
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    schedulers: Dict[str, SchedulerSpec] = field(default_factory=dict)
    timeline: Optional[TimelineSpec] = None
    seed: Optional[int] = 0
    record_series: bool = False
    fast_path: bool = True
    #: Observability (metrics/tracing) for every run of this spec;
    #: ``None`` — the default — collects nothing.
    obs: Optional[ObsConfig] = None
    #: Seeded fault plan (``repro.resilience``) applied to every run;
    #: ``None`` — the default — injects nothing.
    faults: Optional[FaultPlan] = None
    #: Channel plan + per-UE assignment policy; ``None`` — the default —
    #: is the implicit 1-channel world (bit-exact with older specs).
    channels: Optional[ChannelSpec] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("experiment needs a non-empty string name")
        if not self.schedulers:
            raise SpecError(f"experiment {self.name!r} lists no schedulers")
        for label, scheduler in self.schedulers.items():
            if not isinstance(scheduler, SchedulerSpec):
                raise SpecError(
                    f"scheduler {label!r} must be a SchedulerSpec, "
                    f"got {type(scheduler).__name__}"
                )
        if self.obs is not None and not isinstance(self.obs, ObsConfig):
            raise SpecError(
                f"obs must be an ObsConfig, got {type(self.obs).__name__}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise SpecError(
                f"faults must be a FaultPlan, got {type(self.faults).__name__}"
            )
        if self.channels is not None and not isinstance(self.channels, ChannelSpec):
            raise SpecError(
                f"channels must be a ChannelSpec, "
                f"got {type(self.channels).__name__}"
            )

    @property
    def scheduler_names(self) -> Tuple[str, ...]:
        return tuple(self.schedulers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenario": self.scenario.to_dict(),
            "sim": dataclasses.asdict(self.sim),
            "schedulers": {
                label: scheduler.to_dict()
                for label, scheduler in self.schedulers.items()
            },
            "timeline": self.timeline.to_dict() if self.timeline else None,
            "seed": self.seed,
            "record_series": self.record_series,
            "fast_path": self.fast_path,
            "obs": self.obs.to_dict() if self.obs else None,
            "faults": self.faults.to_dict() if self.faults else None,
            "channels": self.channels.to_dict() if self.channels else None,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        data = _require_mapping(data, "experiment")
        _reject_unknown(
            data,
            (
                "name",
                "scenario",
                "sim",
                "schedulers",
                "timeline",
                "seed",
                "record_series",
                "fast_path",
                "obs",
                "faults",
                "channels",
            ),
            "experiment",
        )
        for key in ("name", "scenario", "schedulers"):
            if key not in data:
                raise SpecError(f"experiment is missing required field {key!r}")
        schedulers_raw = _require_mapping(data["schedulers"], "schedulers")
        schedulers = {
            label: SchedulerSpec.from_dict(entry, where=f"schedulers[{label!r}]")
            for label, entry in schedulers_raw.items()
        }
        timeline_raw = data.get("timeline")
        seed = data.get("seed", 0)
        if seed is not None and not isinstance(seed, int):
            raise SpecError(f"seed must be an int or null: {seed!r}")
        return cls(
            name=data["name"],
            scenario=ScenarioSpec.from_dict(data["scenario"]),
            sim=_sim_config_from_dict(data.get("sim", {})),
            schedulers=schedulers,
            timeline=(
                TimelineSpec.from_dict(timeline_raw)
                if timeline_raw is not None
                else None
            ),
            seed=seed,
            record_series=bool(data.get("record_series", False)),
            fast_path=bool(data.get("fast_path", True)),
            obs=(
                ObsConfig.from_dict(data["obs"])
                if data.get("obs") is not None
                else None
            ),
            faults=(
                FaultPlan.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
            channels=(
                ChannelSpec.from_dict(data["channels"])
                if data.get("channels") is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid JSON: {error}") from error
        return cls.from_dict(data)

    def replace(self, **changes: Any) -> "ExperimentSpec":
        """A copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)
