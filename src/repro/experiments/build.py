"""Build and execute :class:`ExperimentSpec` objects.

``build_experiment`` resolves a spec through the registries into an
:class:`ExperimentPlan` — the concrete topology, SNR map, timeline, and
per-name scheduler builders — and the plan runs the matched-conditions
comparison.  Parallel execution ships the *spec dict* to each worker
(always picklable, unlike closure-based scheduler factories) and rebuilds
the plan there, so ``n_jobs`` never degrades to the serial fallback and
results stay identical to ``n_jobs=1``.

Serial runs additionally capture the live scheduler instances on the
plan (``plan.schedulers``) so callers can inspect controller state after
the run — e.g. ``AdaptiveBLUController.metrics`` for the dynamics report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.channels import build_channel_assigner
from repro.errors import CheckpointError, SpecError
from repro.experiments.registry import (
    BuildContext,
    build_scheduler,
    build_snrs,
    build_timeline,
    build_topology,
)
from repro.experiments.spec import ExperimentSpec
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.inject import FaultInjector
from repro.resilience.supervisor import (
    FailedItem,
    SupervisorConfig,
    supervised_map,
)
from repro.sim.engine import CellSimulation
from repro.sim.results import SimulationResult
from repro.sim.runner import ReplicatedMetric, SweepPoint, map_jobs
from repro.topology.graph import InterferenceTopology
from repro.topology.multichannel import MultiChannelTopology

__all__ = [
    "ExperimentPlan",
    "build_experiment",
    "resume_checkpoint",
    "run_experiment",
    "run_experiment_grid",
    "run_experiment_replications",
    "run_experiment_sweep",
]


@dataclass
class ExperimentPlan:
    """A spec resolved against the registries, ready to run."""

    spec: ExperimentSpec
    topology: InterferenceTopology
    mean_snr_db: Dict[int, float]
    timeline: Optional[object]
    #: The channel-resolved world behind ``topology`` when the spec has a
    #: channel block: the shared terminal population across the plan's
    #: channels (``multichannel``) and the per-UE channel assignment that
    #: produced the effective topology.  ``None``/``None`` for 1-channel
    #: (channel-free) specs — the engine then sees the base topology
    #: untouched.
    multichannel: Optional[MultiChannelTopology] = None
    ue_channels: Optional[Tuple[int, ...]] = None
    #: Scheduler instances captured by the most recent serial ``run()``;
    #: lets callers read post-run controller state (dynamics metrics).
    schedulers: Dict[str, UplinkScheduler] = field(default_factory=dict)

    @property
    def context(self) -> BuildContext:
        return BuildContext(
            num_ues=self.topology.num_ues,
            topology=self.topology,
            mean_snr_db=self.mean_snr_db,
            timeline=self.timeline,
        )

    def build_scheduler(self, name: str) -> UplinkScheduler:
        """A fresh scheduler instance for one named entry of the spec."""
        if name not in self.spec.schedulers:
            raise SpecError(
                f"experiment {self.spec.name!r} has no scheduler {name!r}; "
                f"has: {list(self.spec.scheduler_names)}"
            )
        return build_scheduler(self.spec.schedulers[name], self.context)

    def simulation(
        self,
        name: str,
        *,
        seed: Optional[int] = None,
        fast_path: Optional[bool] = None,
        record_series: Optional[bool] = None,
        phase_timer=None,
        hooks=None,
        scheduler: Optional[UplinkScheduler] = None,
        **engine_overrides,
    ) -> CellSimulation:
        """One fully configured engine for a named scheduler entry.

        Keyword overrides exist for harness code (benchmarks force the
        engine path and attach timers; examples attach traffic sources or
        joint activity models); experiment results themselves should come
        from :meth:`run` so the spec stays the single source of truth.
        """
        return CellSimulation(
            topology=self.topology,
            mean_snr_db=self.mean_snr_db,
            scheduler=(
                scheduler if scheduler is not None else self.build_scheduler(name)
            ),
            config=self.spec.sim,
            seed=self.spec.seed if seed is None else seed,
            record_series=(
                self.spec.record_series if record_series is None else record_series
            ),
            fast_path=self.spec.fast_path if fast_path is None else fast_path,
            timeline=self.timeline,
            phase_timer=phase_timer,
            hooks=hooks,
            **engine_overrides,
        )

    def _fault_injector(self, seed: Optional[int]) -> Optional[FaultInjector]:
        """The run-level fault injector for one run's effective seed.

        Built identically in the parent and in every worker (from the
        same ``(plan, seed)``), so faulted runs stay bit-identical
        serial vs parallel.  ``None`` when the spec has no run faults.
        """
        faults = self.spec.faults
        if faults is None or not faults.has_run_faults:
            return None
        effective = self.spec.seed if seed is None else seed
        return FaultInjector(faults, seed=effective)

    def run_one(
        self, name: str, *, seed: Optional[int] = None, capture: bool = True
    ) -> SimulationResult:
        scheduler = self.build_scheduler(name)
        if capture:
            self.schedulers[name] = scheduler
        injector = self._fault_injector(seed)
        fault_hooks = None
        if injector is not None:
            fault_hooks = injector.hooks()
            attach = getattr(scheduler, "set_fault_injector", None)
            if attach is not None:
                attach(injector)
        obs = self.spec.obs
        if obs is None or not obs.enabled:
            return self.simulation(
                name, seed=seed, scheduler=scheduler, hooks=fault_hooks
            ).run()
        # Observability on: a fresh per-run session provides the hooks and
        # the active registry; its snapshot (and trace) ride on the result,
        # so worker processes ship telemetry back through map_jobs.
        from repro.obs.session import ObsSession
        from repro.sim.stages import CompositeHooks

        session = ObsSession(
            obs,
            ue_channels=self.ue_channels,
            phase_probe=lambda: getattr(scheduler, "phase", None),
            run_label=name,
        )
        hooks = session.hooks
        if fault_hooks is not None:
            # Fault hooks run first so the metrics hooks observe the
            # faulted (consistent) world at subframe end.
            children = [fault_hooks] + (
                [hooks] if hooks is not None else []
            )
            hooks = CompositeHooks(children)
        simulation = self.simulation(
            name, seed=seed, scheduler=scheduler, hooks=hooks
        )
        with session.activate():
            result = simulation.run()
        session.finish()
        session.attach(result)
        return result

    def run(self, n_jobs: Optional[int] = 1) -> Dict[str, SimulationResult]:
        """Run every scheduler under identical seeded conditions."""
        names = list(self.spec.scheduler_names)
        if n_jobs is not None and n_jobs != 1 and len(names) > 1:
            items = [(self.spec.to_dict(), name, None) for name in names]
            results = map_jobs(_run_spec_item, items, n_jobs)
            return dict(zip(names, results))
        return {name: self.run_one(name) for name in names}


def build_experiment(spec: ExperimentSpec) -> ExperimentPlan:
    """Resolve a spec through the registries; raises SpecError on any gap.

    With a channel block, the scenario's topology becomes the shared
    terminal population of a :class:`MultiChannelTopology`; the spec's
    assignment policy resolves per-UE channels *here* (the channel
    selection stage ahead of the RB loop), and the engine — along with
    every scheduler built from the plan's context — runs on the
    *effective* topology that assignment induces.  The effective
    topology keeps every terminal (identical engine RNG consumption),
    so a 1-channel plan is bit-exact with a channel-free spec.
    """
    topology = build_topology(spec.scenario)
    multichannel: Optional[MultiChannelTopology] = None
    ue_channels: Optional[Tuple[int, ...]] = None
    if spec.channels is not None:
        multichannel = MultiChannelTopology.from_base(
            topology,
            spec.channels.plan,
            terminal_channels=spec.channels.terminal_channels,
            terminal_margins_db=spec.channels.terminal_margins_db,
        )
        assigner = build_channel_assigner(
            spec.channels.assignment,
            channel=spec.channels.channel,
            ue_channels=spec.channels.ue_channels,
            load_penalty=spec.channels.load_penalty,
        )
        ue_channels = assigner.assign(multichannel)
        topology = multichannel.effective_topology(ue_channels)
    return ExperimentPlan(
        spec=spec,
        topology=topology,
        mean_snr_db=build_snrs(spec.scenario, topology.num_ues),
        timeline=build_timeline(spec.timeline),
        multichannel=multichannel,
        ue_channels=ue_channels,
    )


#: (spec_dict, scheduler_name, seed_override) — plain data, always picklable.
_SpecItem = Tuple[dict, str, Optional[int]]


def _run_spec_item(item: _SpecItem) -> SimulationResult:
    """Worker entry point: rebuild the plan from the spec dict and run."""
    spec_dict, name, seed = item
    plan = build_experiment(ExperimentSpec.from_dict(spec_dict))
    return plan.run_one(name, seed=seed, capture=False)


def run_experiment(
    spec: ExperimentSpec, n_jobs: Optional[int] = 1
) -> Dict[str, SimulationResult]:
    """Build and run a spec; results keyed by the spec's scheduler names."""
    return build_experiment(spec).run(n_jobs=n_jobs)


def _execute_cells(
    items: List[_SpecItem],
    pending: List[int],
    results: List[object],
    labelled: Sequence[Tuple[object, object]],
    store: Optional[CheckpointStore],
    supervisor: Optional[SupervisorConfig],
    n_jobs: Optional[int],
    worker_fault,
    telemetry=None,
    cell_labels: Optional[Sequence[str]] = None,
) -> None:
    """Run the pending cells, saving each into ``store`` as it completes.

    ``items[pos]`` corresponds to original cell index ``pending[pos]``;
    worker-fault lookups and checkpoint filenames use the *original*
    index so fault plans and cell files are stable across resumes.
    ``telemetry``/``cell_labels`` stream item lifecycle events into a
    :class:`~repro.obs.telemetry.TelemetryLog` (labels aligned with
    ``pending``).
    """
    if (store is None and supervisor is None and worker_fault is None
            and telemetry is None):
        for pos, result in enumerate(map_jobs(_run_spec_item, items, n_jobs)):
            results[pending[pos]] = result
        return

    on_result = None
    if store is not None:
        def on_result(pos: int, result) -> None:
            index = pending[pos]
            store.save_cell(index, list(labelled[index]), result)

    shifted_fault = None
    if worker_fault is not None:
        def shifted_fault(pos: int, attempt: int):
            return worker_fault(pending[pos], attempt)

    outcome = supervised_map(
        _run_spec_item,
        items,
        n_jobs=n_jobs,
        config=supervisor,
        worker_fault=shifted_fault,
        on_result=on_result,
        fail_fast=supervisor is None,
        telemetry=telemetry,
        labels=cell_labels,
    )
    for pos, result in enumerate(outcome.results):
        results[pending[pos]] = result


def _cell_label(name: object, seed: object) -> str:
    """The stable telemetry item label for one (scheduler, seed) cell."""
    return f"{name}@{seed if seed is not None else 'spec'}"


def run_experiment_grid(
    spec: ExperimentSpec,
    seeds: Sequence[Optional[int]],
    n_jobs: Optional[int] = 1,
    checkpoint_dir=None,
    supervisor: Optional[SupervisorConfig] = None,
    telemetry_dir=None,
) -> List[Tuple[str, Optional[int], SimulationResult]]:
    """Run every (scheduler, seed) combination as one flat batch.

    The raw-result primitive under replications: returns
    ``(scheduler_name, seed, result)`` triples in seed-major order,
    identical for any ``n_jobs``.  When the spec enables observability,
    each result carries its run's ``obs_snapshot``, so callers can
    :func:`~repro.obs.report.collect_snapshot` across the whole grid.

    ``checkpoint_dir`` persists one atomic result file per completed
    cell (plus a manifest); re-running the same grid loads completed
    cells from disk and computes only the missing ones, bit-identically
    to an uninterrupted run.  ``supervisor`` enables retry/timeout
    supervision; permanently failing cells come back as
    :class:`~repro.resilience.FailedItem` in the result slot instead of
    aborting the grid.
    """
    if not seeds:
        raise SpecError("need at least one seed")
    names = list(spec.scheduler_names)
    spec_dict = spec.to_dict()
    labelled = [(name, seed) for seed in seeds for name in names]
    results: List[object] = [None] * len(labelled)
    pending = list(range(len(labelled)))
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.initialize(
            {
                "kind": "grid",
                "spec": spec_dict,
                "seeds": list(seeds),
                "cells": [[name, seed] for name, seed in labelled],
            }
        )
        for index in sorted(store.completed()):
            if index < len(labelled):
                # Corrupt cells quarantine to None and rejoin ``pending``.
                results[index] = store.load_cell_or_quarantine(index)
        pending = [i for i in range(len(labelled)) if results[i] is None]
    worker_fault = None
    if spec.faults is not None and spec.faults.has_worker_faults:
        worker_fault = FaultInjector(spec.faults, seed=spec.seed).worker_fault
    telemetry = None
    if telemetry_dir is not None:
        from repro.obs.telemetry import TelemetryLog

        telemetry = TelemetryLog.in_dir(telemetry_dir)
        telemetry.emit(
            "campaign-started",
            campaign=spec.name,
            kind="grid",
            labels=[_cell_label(name, seed) for name, seed in labelled],
            completed=[
                _cell_label(*labelled[i])
                for i in range(len(labelled))
                if i not in pending
            ] or None,
        )
        if store is not None:
            for cell in store.quarantined:
                telemetry.emit(
                    "degraded",
                    item=_cell_label(*labelled[cell.index]),
                    note=cell.note(),
                )
    items: List[_SpecItem] = [
        (spec_dict, *labelled[index]) for index in pending
    ]
    if items:
        _execute_cells(
            items, pending, results, labelled, store, supervisor, n_jobs,
            worker_fault, telemetry=telemetry,
            cell_labels=[_cell_label(*labelled[i]) for i in pending],
        )
    if telemetry is not None:
        telemetry.emit("campaign-done", campaign=spec.name)
    return [
        (name, seed, results[index])
        for index, (name, seed) in enumerate(labelled)
    ]


def run_experiment_replications(
    spec: ExperimentSpec,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metrics: Sequence[str] = ("throughput_mbps", "rb_utilization"),
    n_jobs: Optional[int] = 1,
    checkpoint_dir=None,
    supervisor: Optional[SupervisorConfig] = None,
) -> Dict[str, Dict[str, ReplicatedMetric]]:
    """Repeat a spec over seeds; mean ± std per scheduler and metric.

    With a ``supervisor``, cells quarantined as failed are excluded from
    the aggregates (their seeds simply contribute no sample).
    """
    names = list(spec.scheduler_names)
    grid = run_experiment_grid(
        spec, seeds, n_jobs=n_jobs, checkpoint_dir=checkpoint_dir,
        supervisor=supervisor,
    )

    samples: Dict[str, Dict[str, List[float]]] = {
        name: {metric: [] for metric in metrics} for name in names
    }
    for name, _seed, result in grid:
        if result is None or isinstance(result, FailedItem):
            continue
        summary = result.summary()
        for metric in metrics:
            samples[name][metric].append(summary[metric])
    report: Dict[str, Dict[str, ReplicatedMetric]] = {}
    for name, by_metric in samples.items():
        report[name] = {}
        for metric, values in by_metric.items():
            if not values:
                report[name][metric] = ReplicatedMetric(
                    mean=float("nan"), std=0.0, samples=0
                )
                continue
            array = np.asarray(values, dtype=float)
            report[name][metric] = ReplicatedMetric(
                mean=float(array.mean()),
                std=float(array.std(ddof=1)) if len(array) > 1 else 0.0,
                samples=len(array),
            )
    return report


def run_experiment_sweep(
    specs: Sequence[ExperimentSpec],
    parameters: Optional[Sequence[object]] = None,
    n_jobs: Optional[int] = 1,
    checkpoint_dir=None,
    supervisor: Optional[SupervisorConfig] = None,
    telemetry_dir=None,
) -> List[SweepPoint]:
    """Run several specs as one flat batch of (spec, scheduler) jobs.

    ``parameters`` labels the sweep points (defaults to the spec names);
    with ``n_jobs > 1`` all runs across all points fan out together, so
    parallelism helps even when one end of the sweep dominates.

    ``checkpoint_dir``/``supervisor`` behave as in
    :func:`run_experiment_grid` (checkpointing a sweep requires the
    ``parameters`` labels to be JSON-serializable).  Cells quarantined
    by the supervisor are omitted from their point's ``results``.
    """
    if not specs:
        raise SpecError("sweep needs at least one spec")
    if parameters is None:
        parameters = [spec.name for spec in specs]
    if len(parameters) != len(specs):
        raise SpecError(
            f"{len(parameters)} parameters for {len(specs)} specs"
        )
    labelled: List[Tuple[int, str]] = []
    items_all: List[_SpecItem] = []
    points = [
        SweepPoint(parameter=parameter, results={}) for parameter in parameters
    ]
    for index, spec in enumerate(specs):
        spec_dict = spec.to_dict()
        for name in spec.scheduler_names:
            labelled.append((index, name))
            items_all.append((spec_dict, name, None))
    results: List[object] = [None] * len(labelled)
    pending = list(range(len(labelled)))
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        try:
            manifest = {
                "kind": "sweep",
                "specs": [spec.to_dict() for spec in specs],
                "parameters": list(parameters),
                "cells": [[index, name] for index, name in labelled],
            }
            store.initialize(manifest)
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"sweep parameters must be JSON-serializable to "
                f"checkpoint: {error}"
            ) from error
        for index in sorted(store.completed()):
            if index < len(labelled):
                results[index] = store.load_cell_or_quarantine(index)
        pending = [i for i in range(len(labelled)) if results[i] is None]
    telemetry = None
    sweep_labels = [
        f"{parameters[index]}/{name}" for index, name in labelled
    ]
    if telemetry_dir is not None:
        from repro.obs.telemetry import TelemetryLog

        telemetry = TelemetryLog.in_dir(telemetry_dir)
        telemetry.emit(
            "campaign-started",
            campaign=specs[0].name,
            kind="sweep",
            labels=sweep_labels,
            completed=[
                sweep_labels[i]
                for i in range(len(labelled))
                if i not in pending
            ] or None,
        )
        if store is not None:
            for cell in store.quarantined:
                telemetry.emit(
                    "degraded",
                    item=sweep_labels[cell.index],
                    note=cell.note(),
                )
    items = [items_all[index] for index in pending]
    if items:
        _execute_cells(
            items, pending, results, labelled, store, supervisor, n_jobs,
            worker_fault=None, telemetry=telemetry,
            cell_labels=[sweep_labels[i] for i in pending],
        )
    if telemetry is not None:
        telemetry.emit("campaign-done", campaign=specs[0].name)
    for (index, name), result in zip(labelled, results):
        if result is None or isinstance(result, FailedItem):
            continue
        points[index].results[name] = result
    return points


def resume_checkpoint(
    checkpoint_dir,
    n_jobs: Optional[int] = 1,
    supervisor: Optional[SupervisorConfig] = None,
    telemetry_dir=None,
):
    """Finish an interrupted checkpointed run from its manifest alone.

    Reads ``manifest.json``, rebuilds the spec(s), and re-invokes the
    matching runner with the same checkpoint directory — completed cells
    load from disk, missing cells are computed.  Returns ``("grid",
    triples)``, ``("sweep", points)``, or ``("deploy", campaign)``
    depending on what was checkpointed.
    """
    store = CheckpointStore(checkpoint_dir)
    manifest = store.load_manifest()
    kind = manifest.get("kind")
    if kind == "deploy":
        from repro.deploy.runner import resume_campaign

        return "deploy", resume_campaign(
            checkpoint_dir, n_jobs=n_jobs, supervisor=supervisor,
            telemetry_dir=telemetry_dir,
        )
    if kind == "grid":
        spec = ExperimentSpec.from_dict(manifest["spec"])
        seeds = manifest["seeds"]
        return "grid", run_experiment_grid(
            spec, seeds, n_jobs=n_jobs, checkpoint_dir=checkpoint_dir,
            supervisor=supervisor, telemetry_dir=telemetry_dir,
        )
    if kind == "sweep":
        specs = [ExperimentSpec.from_dict(entry) for entry in manifest["specs"]]
        return "sweep", run_experiment_sweep(
            specs, parameters=manifest["parameters"], n_jobs=n_jobs,
            checkpoint_dir=checkpoint_dir, supervisor=supervisor,
            telemetry_dir=telemetry_dir,
        )
    raise CheckpointError(
        f"checkpoint manifest has unknown kind {kind!r}; "
        "expected 'grid', 'sweep', or 'deploy'"
    )
