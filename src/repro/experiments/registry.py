"""Scenario, SNR, timeline, and scheduler registries.

Every spec ``kind`` resolves here.  Registries map string kinds to
builder functions so new scenarios/schedulers are one decorated function,
and the spec layer (plus ``repro validate-specs``) can enumerate and
validate what exists without importing entry-point code.

Scheduler builders receive a :class:`BuildContext` — the already-built
topology, SNR map, optional timeline, and cell size — because several
schedulers are topology-aware (perfect-knowledge providers, the staged
oracle's blueprint stages derived from the timeline).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.controller import BLUConfig, BLUController
from repro.core.blueprint.inference import InferenceConfig
from repro.core.joint.provider import TopologyJointProvider
from repro.core.scheduling.access_aware import AccessAwareScheduler
from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.oracle import OracleScheduler
from repro.core.scheduling.pf import ProportionalFairScheduler
from repro.core.scheduling.single_user import SingleUserScheduler
from repro.core.scheduling.speculative import SpeculativeScheduler
from repro.errors import ReproError, SpecError
from repro.experiments.spec import ScenarioSpec, SchedulerSpec, TimelineSpec
from repro.topology.graph import InterferenceTopology
from repro.topology.scenarios import (
    channel_drift_timeline,
    client_churn_timeline,
    duty_cycle_drift_timeline,
    fig1_topology,
    hidden_node_churn_timeline,
    skewed_topology,
    testbed_topology,
    uniform_snrs,
)

__all__ = [
    "BuildContext",
    "register_scenario",
    "register_scheduler",
    "register_timeline",
    "scenario_kinds",
    "scheduler_kinds",
    "timeline_kinds",
    "build_topology",
    "build_snrs",
    "build_timeline",
    "build_scheduler",
    "timeline_blueprint_stages",
]


@dataclass(frozen=True)
class BuildContext:
    """What a scheduler builder may depend on besides its own params."""

    num_ues: int
    topology: InterferenceTopology
    mean_snr_db: Mapping[int, float]
    timeline: Optional[object] = None  # EnvironmentTimeline


_SCENARIOS: Dict[str, Callable[..., InterferenceTopology]] = {}
_SCHEDULERS: Dict[str, Callable[..., UplinkScheduler]] = {}
_TIMELINES: Dict[str, Callable[..., object]] = {}


def register_scenario(kind: str):
    """Register ``fn(**params) -> InterferenceTopology`` under ``kind``."""

    def decorator(fn):
        _SCENARIOS[kind] = fn
        return fn

    return decorator


def register_scheduler(kind: str):
    """Register ``fn(ctx, **params) -> UplinkScheduler`` under ``kind``."""

    def decorator(fn):
        _SCHEDULERS[kind] = fn
        return fn

    return decorator


def register_timeline(kind: str):
    """Register ``fn(**params) -> EnvironmentTimeline`` under ``kind``."""

    def decorator(fn):
        _TIMELINES[kind] = fn
        return fn

    return decorator


def scenario_kinds() -> Tuple[str, ...]:
    """Registered scenario kinds, sorted."""
    return tuple(sorted(_SCENARIOS))


def scheduler_kinds() -> Tuple[str, ...]:
    """Registered scheduler kinds, sorted."""
    return tuple(sorted(_SCHEDULERS))


def timeline_kinds() -> Tuple[str, ...]:
    """Registered timeline kinds, sorted."""
    return tuple(sorted(_TIMELINES))


def _call_builder(fn: Callable, what: str, params: Mapping[str, Any], *args):
    """Invoke a registered builder; bad params become SpecError."""
    try:
        return fn(*args, **params)
    except TypeError as error:
        # Unknown/missing keyword arguments land here; the builder's own
        # signature is the schema.
        raise SpecError(f"{what}: {error}") from error
    except SpecError:
        raise
    except ReproError as error:
        raise SpecError(f"{what}: {error}") from error


# -- scenarios ---------------------------------------------------------------


register_scenario("fig1")(fig1_topology)
register_scenario("testbed")(testbed_topology)
register_scenario("skewed")(skewed_topology)


@register_scenario("generated")
def _generated_scenario(seed: Optional[int] = None, **config) -> InterferenceTopology:
    """A random enterprise deployment; ``config`` = ScenarioConfig fields."""
    from repro.topology.generator import ScenarioConfig, generate_scenario

    scenario_config = _config_from_params(
        ScenarioConfig, config, "scenario 'generated'"
    )
    return generate_scenario(scenario_config, seed=seed).topology


@register_scenario("explicit")
def _explicit_scenario(num_ues: int, terminals) -> InterferenceTopology:
    """A literal blueprint: ``terminals`` is ``[[q, [ue, ...]], ...]``.

    The bridge from any externally-derived topology (geometric scenario,
    measured deployment) into a serializable spec.
    """
    try:
        parsed = [
            (float(q), [int(ue) for ue in ues]) for q, ues in terminals
        ]
    except (TypeError, ValueError) as error:
        raise SpecError(
            f"scenario 'explicit' terminals are malformed: {error}"
        ) from error
    return InterferenceTopology.build(num_ues, parsed)


def build_topology(spec: ScenarioSpec) -> InterferenceTopology:
    """Resolve a scenario spec into its interference topology."""
    if spec.kind not in _SCENARIOS:
        raise SpecError(
            f"unknown scenario kind {spec.kind!r}; "
            f"registered: {list(scenario_kinds())}"
        )
    return _call_builder(
        _SCENARIOS[spec.kind], f"scenario {spec.kind!r}", spec.params
    )


def build_snrs(spec: ScenarioSpec, num_ues: int) -> Dict[int, float]:
    """Resolve a scenario spec's SNR entry into per-UE mean SNRs."""
    snr = dict(spec.snr)
    kind = snr.pop("kind")
    if kind == "uniform":
        return _call_builder(uniform_snrs, "snr 'uniform'", snr, num_ues)
    if kind == "fixed":
        extra = sorted(set(snr) - {"snr_db"})
        if extra:
            raise SpecError(f"snr 'fixed' got unknown field(s) {extra}")
        snr_db = float(snr.get("snr_db", 20.0))
        return {ue: snr_db for ue in range(num_ues)}
    if kind == "explicit":
        extra = sorted(set(snr) - {"by_ue"})
        if extra:
            raise SpecError(f"snr 'explicit' got unknown field(s) {extra}")
        by_ue = snr.get("by_ue")
        if not isinstance(by_ue, Mapping):
            raise SpecError("snr 'explicit' needs a 'by_ue' mapping")
        try:
            parsed = {int(ue): float(db) for ue, db in by_ue.items()}
        except (TypeError, ValueError) as error:
            raise SpecError(f"snr 'explicit' by_ue is malformed: {error}") from error
        missing = sorted(set(range(num_ues)) - set(parsed))
        if missing:
            raise SpecError(f"snr 'explicit' misses UEs {missing}")
        return parsed
    raise SpecError(
        f"unknown snr kind {kind!r}; known: ['explicit', 'fixed', 'uniform']"
    )


# -- timelines ---------------------------------------------------------------


register_timeline("hidden-node-churn")(hidden_node_churn_timeline)
register_timeline("duty-cycle-drift")(duty_cycle_drift_timeline)
register_timeline("channel-duty-drift")(channel_drift_timeline)
register_timeline("client-churn")(client_churn_timeline)


def build_timeline(spec: Optional[TimelineSpec]):
    """Resolve a timeline spec into an environment timeline (or None)."""
    if spec is None:
        return None
    if spec.kind not in _TIMELINES:
        raise SpecError(
            f"unknown timeline kind {spec.kind!r}; "
            f"registered: {list(timeline_kinds())}"
        )
    params = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in spec.params.items()
    }
    return _call_builder(_TIMELINES[spec.kind], f"timeline {spec.kind!r}", params)


def timeline_blueprint_stages(
    topology: InterferenceTopology, timeline
) -> List[Tuple[int, InterferenceTopology]]:
    """Derive the true ``(start_subframe, topology)`` stages from a timeline.

    Binds a throwaway runtime and steps it through every event time,
    collecting the topology whenever a structural event changes it — the
    stage list the dynamics-aware oracle schedules against.
    """
    stages: List[Tuple[int, InterferenceTopology]] = [(0, topology)]
    if timeline is None:
        return stages
    runtime = timeline.runtime(topology)
    for at in sorted({event.at for event in timeline.events}):
        update = runtime.step(at)
        if update is not None and update.topology is not None:
            stages.append((at, update.topology))
    return stages


# -- schedulers --------------------------------------------------------------


def _config_from_params(cls, params: Mapping[str, Any], where: str):
    """Build a (nested) config dataclass from a spec params mapping."""
    allowed = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise SpecError(
            f"{where} got unknown field(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )
    kwargs: Dict[str, Any] = {}
    for key, value in params.items():
        if key == "inference" and isinstance(value, Mapping):
            value = _config_from_params(
                InferenceConfig, value, f"{where}.inference"
            )
        kwargs[key] = value
    try:
        return cls(**kwargs)
    except ReproError as error:
        raise SpecError(f"{where}: {error}") from error


def _blu_config(params: Mapping[str, Any], where: str) -> BLUConfig:
    return _config_from_params(BLUConfig, params, where)


@register_scheduler("pf")
def _pf(ctx: BuildContext) -> UplinkScheduler:
    return ProportionalFairScheduler()


@register_scheduler("single-user")
def _single_user(ctx: BuildContext) -> UplinkScheduler:
    return SingleUserScheduler()


@register_scheduler("oracle")
def _oracle(ctx: BuildContext) -> UplinkScheduler:
    return OracleScheduler()


@register_scheduler("access-aware")
def _access_aware(ctx: BuildContext) -> UplinkScheduler:
    return AccessAwareScheduler(TopologyJointProvider(ctx.topology))


@register_scheduler("speculative")
def _speculative(
    ctx: BuildContext, overschedule_factor: float = 2.0
) -> UplinkScheduler:
    return SpeculativeScheduler(
        TopologyJointProvider(ctx.topology),
        overschedule_factor=overschedule_factor,
    )


@register_scheduler("blu")
def _blu(ctx: BuildContext, **params) -> UplinkScheduler:
    return BLUController(ctx.num_ues, _blu_config(params, "scheduler 'blu'"))


@register_scheduler("blu-adaptive")
def _blu_adaptive(
    ctx: BuildContext,
    blu: Optional[Mapping[str, Any]] = None,
    adaptive: Optional[Mapping[str, Any]] = None,
) -> UplinkScheduler:
    from repro.dynamics.adapt import AdaptiveBLUController, AdaptiveConfig

    return AdaptiveBLUController(
        ctx.num_ues,
        _blu_config(blu or {}, "scheduler 'blu-adaptive'.blu"),
        _config_from_params(
            AdaptiveConfig, adaptive or {}, "scheduler 'blu-adaptive'.adaptive"
        ),
    )


@register_scheduler("blu-restart")
def _blu_restart(
    ctx: BuildContext,
    restart_at: int = 0,
    blu: Optional[Mapping[str, Any]] = None,
) -> UplinkScheduler:
    from repro.dynamics.adapt import FullRestartController

    return FullRestartController(
        ctx.num_ues,
        _blu_config(blu or {}, "scheduler 'blu-restart'.blu"),
        restart_at=restart_at,
    )


@register_scheduler("staged-oracle")
def _staged_oracle(
    ctx: BuildContext, overschedule_factor: float = 2.0
) -> UplinkScheduler:
    from repro.dynamics.adapt import StagedBlueprintScheduler

    return StagedBlueprintScheduler(
        timeline_blueprint_stages(ctx.topology, ctx.timeline),
        overschedule_factor=overschedule_factor,
    )


def build_scheduler(spec: SchedulerSpec, ctx: BuildContext) -> UplinkScheduler:
    """Resolve a scheduler spec into a fresh scheduler instance."""
    if spec.kind not in _SCHEDULERS:
        raise SpecError(
            f"unknown scheduler kind {spec.kind!r}; "
            f"registered: {list(scheduler_kinds())}"
        )
    return _call_builder(
        _SCHEDULERS[spec.kind], f"scheduler {spec.kind!r}", spec.params, ctx
    )
