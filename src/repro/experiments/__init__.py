"""Declarative experiment specs: serialize, validate, build, run.

The one-stop shape for "an experiment" across the repo:

* :class:`ExperimentSpec` — frozen, JSON-round-trippable description
  (scenario + sim config + schedulers + optional timeline + seed).
* Registries — string kinds for scenarios, SNR draws, timelines, and
  schedulers; extensible via ``register_*`` decorators.
* :func:`build_experiment` / :func:`run_experiment` — resolve a spec into
  an :class:`ExperimentPlan` and run the matched-seed comparison, with
  spec-level parallelism (``n_jobs``) that never hits a pickle fallback.
"""

from repro.experiments.build import (
    ExperimentPlan,
    build_experiment,
    resume_checkpoint,
    run_experiment,
    run_experiment_grid,
    run_experiment_replications,
    run_experiment_sweep,
)
from repro.experiments.registry import (
    BuildContext,
    build_scheduler,
    build_snrs,
    build_timeline,
    build_topology,
    register_scenario,
    register_scheduler,
    register_timeline,
    scenario_kinds,
    scheduler_kinds,
    timeline_kinds,
    timeline_blueprint_stages,
)
from repro.experiments.spec import (
    ChannelSpec,
    ExperimentSpec,
    ScenarioSpec,
    SchedulerSpec,
    TimelineSpec,
)

__all__ = [
    "BuildContext",
    "ChannelSpec",
    "ExperimentPlan",
    "ExperimentSpec",
    "ScenarioSpec",
    "SchedulerSpec",
    "TimelineSpec",
    "build_experiment",
    "build_scheduler",
    "build_snrs",
    "build_timeline",
    "build_topology",
    "register_scenario",
    "register_scheduler",
    "register_timeline",
    "resume_checkpoint",
    "run_experiment",
    "run_experiment_grid",
    "run_experiment_replications",
    "run_experiment_sweep",
    "scenario_kinds",
    "scheduler_kinds",
    "timeline_kinds",
    "timeline_blueprint_stages",
]
