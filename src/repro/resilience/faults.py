"""Typed, spec-declarable fault descriptions.

A :class:`FaultPlan` is the serializable half of fault injection: an
ordered tuple of typed fault descriptions that rides on an
:class:`~repro.experiments.spec.ExperimentSpec` (``"faults"`` field) and
round-trips losslessly through ``to_dict``/``from_dict`` — same strict
validation contract as the spec layer (unknown kinds, unknown fields and
out-of-range values raise :class:`~repro.errors.SpecError`).

The executable half lives in :mod:`repro.resilience.inject`: a
:class:`~repro.resilience.inject.FaultInjector` binds a plan to a run
seed and draws every random decision from a per-fault RNG seeded by
``(seed, fault index)``, so fault runs are bit-reproducible and identical
serial vs parallel.

Fault taxonomy (see ``docs/RESILIENCE.md``):

========================  =====================================================
kind                      effect
========================  =====================================================
``report-loss``           a whole per-subframe access report is dropped before
                          the controller sees it, with probability ``prob``
``report-corrupt``        each scheduled UE's accessed/blocked membership flips
                          with probability ``prob``
``estimator-bias``        directional corruption: negative ``bias`` suppresses
                          observed accesses, positive fabricates them
``solver-divergence``     the listed blueprint inferences are forced to report
                          non-convergence (infinite residual, unsatisfied)
``cca-stuck-busy``        one UE's CCA is stuck busy for ``duration`` subframes
                          starting at ``start`` (silenced at the engine level)
``worker-crash``          the listed grid cells crash their first ``attempts``
                          execution attempts in ``supervised_map``
``worker-hang``           the listed grid cells sleep ``seconds`` on their
                          first ``attempts`` attempts (trips the supervisor's
                          per-item timeout)
========================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SpecError

__all__ = [
    "FaultPlan",
    "ReportLossFault",
    "ReportCorruptFault",
    "EstimatorBiasFault",
    "SolverDivergenceFault",
    "CcaStuckBusyFault",
    "WorkerCrashFault",
    "WorkerHangFault",
]


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, Mapping):
        raise SpecError(f"{where} must be a mapping, got {type(value).__name__}")
    return dict(value)


def _check_prob(value: Any, where: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SpecError(f"{where} must be a number in (0, 1]: {value!r}")
    if not 0.0 < float(value) <= 1.0:
        raise SpecError(f"{where} must be in (0, 1]: {value}")
    return float(value)


def _check_subframe(value: Any, where: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise SpecError(f"{where} must be a subframe index >= 0: {value!r}")
    return int(value)


def _check_indices(value: Any, where: str) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)):
        raise SpecError(f"{where} must be a list of indices: {value!r}")
    out = []
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool) or item < 0:
            raise SpecError(f"{where} entries must be ints >= 0: {item!r}")
        out.append(int(item))
    return tuple(out)


def _window_to_dict(start: int, end: Optional[int]) -> Dict[str, Any]:
    return {"start": start, "end": end}


class _Fault:
    """Shared serialization for all fault dataclasses (strict, symmetric)."""

    kind: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump: ``kind`` plus every dataclass field."""
        out: Dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):  # type: ignore[arg-type]
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], where: str) -> "_Fault":
        """Rebuild one fault, rejecting unknown fields."""
        allowed = {"kind"} | {spec.name for spec in fields(cls)}  # type: ignore[arg-type]
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise SpecError(
                f"unknown field(s) {unknown} in {where}; allowed: {sorted(allowed)}"
            )
        kwargs = {key: value for key, value in data.items() if key != "kind"}
        try:
            return cls(**kwargs)  # type: ignore[call-arg]
        except TypeError as error:
            raise SpecError(f"{where}: {error}") from error


@dataclass(frozen=True)
class ReportLossFault(_Fault):
    """Drop whole access reports with probability ``prob`` inside
    the ``[start, end)`` subframe window (``end=None`` = forever)."""

    prob: float = 0.1
    start: int = 0
    end: Optional[int] = None
    label: str = ""
    kind = "report-loss"

    def __post_init__(self) -> None:
        _check_prob(self.prob, f"{self.kind}.prob")
        _check_window(self.start, self.end, self.kind)


@dataclass(frozen=True)
class ReportCorruptFault(_Fault):
    """Flip each scheduled UE's accessed-membership with probability
    ``prob`` (optionally only for the listed ``ues``)."""

    prob: float = 0.1
    ues: Optional[Tuple[int, ...]] = None
    start: int = 0
    end: Optional[int] = None
    label: str = ""
    kind = "report-corrupt"

    def __post_init__(self) -> None:
        _check_prob(self.prob, f"{self.kind}.prob")
        _check_window(self.start, self.end, self.kind)
        if self.ues is not None:
            object.__setattr__(
                self, "ues", _check_indices(self.ues, f"{self.kind}.ues")
            )


@dataclass(frozen=True)
class EstimatorBiasFault(_Fault):
    """Directional report corruption: ``bias < 0`` removes true accesses
    with probability ``|bias|``; ``bias > 0`` fabricates accesses for
    scheduled-but-silenced UEs with probability ``bias``."""

    bias: float = -0.2
    ues: Optional[Tuple[int, ...]] = None
    start: int = 0
    end: Optional[int] = None
    label: str = ""
    kind = "estimator-bias"

    def __post_init__(self) -> None:
        if (
            not isinstance(self.bias, (int, float))
            or isinstance(self.bias, bool)
            or not -1.0 <= float(self.bias) <= 1.0
            or float(self.bias) == 0.0
        ):
            raise SpecError(
                f"{self.kind}.bias must be a nonzero number in [-1, 1]: "
                f"{self.bias!r}"
            )
        _check_window(self.start, self.end, self.kind)
        if self.ues is not None:
            object.__setattr__(
                self, "ues", _check_indices(self.ues, f"{self.kind}.ues")
            )


@dataclass(frozen=True)
class SolverDivergenceFault(_Fault):
    """Force the listed blueprint inferences (0-based, in controller
    order) to report non-convergence; ``inferences=None`` hits all."""

    inferences: Optional[Tuple[int, ...]] = None
    label: str = ""
    kind = "solver-divergence"

    def __post_init__(self) -> None:
        if self.inferences is not None:
            object.__setattr__(
                self,
                "inferences",
                _check_indices(self.inferences, f"{self.kind}.inferences"),
            )

    def hits(self, inference_index: int) -> bool:
        """Whether this fault diverges the given inference."""
        return self.inferences is None or inference_index in self.inferences


@dataclass(frozen=True)
class CcaStuckBusyFault(_Fault):
    """One UE's CCA reads busy for ``duration`` subframes from ``start``:
    the UE is silenced at the engine level even when scheduled."""

    ue: int = 0
    start: int = 0
    duration: int = 100
    label: str = ""
    kind = "cca-stuck-busy"

    def __post_init__(self) -> None:
        if not isinstance(self.ue, int) or isinstance(self.ue, bool) or self.ue < 0:
            raise SpecError(f"{self.kind}.ue must be a UE id >= 0: {self.ue!r}")
        _check_subframe(self.start, f"{self.kind}.start")
        if not isinstance(self.duration, int) or self.duration < 1:
            raise SpecError(
                f"{self.kind}.duration must be a positive subframe count: "
                f"{self.duration!r}"
            )

    def active(self, subframe: int) -> bool:
        """Whether the stuck-busy window covers ``subframe``."""
        return self.start <= subframe < self.start + self.duration


@dataclass(frozen=True)
class WorkerCrashFault(_Fault):
    """Crash the listed grid cells' first ``attempts`` execution attempts
    (raises :class:`~repro.errors.WorkerFailure` inside the worker)."""

    cells: Tuple[int, ...] = ()
    attempts: int = 1
    label: str = ""
    kind = "worker-crash"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cells", _check_indices(self.cells, f"{self.kind}.cells")
        )
        if not isinstance(self.attempts, int) or self.attempts < 1:
            raise SpecError(
                f"{self.kind}.attempts must be >= 1: {self.attempts!r}"
            )


@dataclass(frozen=True)
class WorkerHangFault(_Fault):
    """Make the listed grid cells sleep ``seconds`` before executing, on
    their first ``attempts`` attempts — trips the supervisor timeout."""

    cells: Tuple[int, ...] = ()
    seconds: float = 1.0
    attempts: int = 1
    label: str = ""
    kind = "worker-hang"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cells", _check_indices(self.cells, f"{self.kind}.cells")
        )
        if (
            not isinstance(self.seconds, (int, float))
            or isinstance(self.seconds, bool)
            or float(self.seconds) <= 0.0
        ):
            raise SpecError(
                f"{self.kind}.seconds must be positive: {self.seconds!r}"
            )
        if not isinstance(self.attempts, int) or self.attempts < 1:
            raise SpecError(
                f"{self.kind}.attempts must be >= 1: {self.attempts!r}"
            )


def _check_window(start: int, end: Optional[int], kind: str) -> None:
    _check_subframe(start, f"{kind}.start")
    if end is not None:
        _check_subframe(end, f"{kind}.end")
        if end <= start:
            raise SpecError(f"{kind}: end ({end}) must be > start ({start})")


def _in_window(subframe: int, start: int, end: Optional[int]) -> bool:
    return start <= subframe and (end is None or subframe < end)


_FAULT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        ReportLossFault,
        ReportCorruptFault,
        EstimatorBiasFault,
        SolverDivergenceFault,
        CcaStuckBusyFault,
        WorkerCrashFault,
        WorkerHangFault,
    )
}

#: Fault kinds applied inside a simulation run (vs the execution layer).
_RUN_KINDS = frozenset(
    ("report-loss", "report-corrupt", "estimator-bias", "solver-divergence",
     "cca-stuck-busy")
)
#: Fault kinds applied by the supervised runner, outside the simulation.
_WORKER_KINDS = frozenset(("worker-crash", "worker-hang"))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of typed faults, one experiment's adversity.

    The *position* of a fault in the tuple is its fault id: the injector
    seeds that fault's private RNG from ``(run seed, position)``, so
    reordering the plan changes the realization but re-running the same
    plan + seed is bit-reproducible, serial or parallel.
    """

    faults: Tuple[_Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for index, fault in enumerate(self.faults):
            if not isinstance(fault, _Fault):
                raise SpecError(
                    f"faults[{index}] must be a fault object, "
                    f"got {type(fault).__name__}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def has_run_faults(self) -> bool:
        """Whether any fault acts inside a simulation run."""
        return any(fault.kind in _RUN_KINDS for fault in self.faults)

    @property
    def has_worker_faults(self) -> bool:
        """Whether any fault acts on the execution layer (crash/hang)."""
        return any(fault.kind in _WORKER_KINDS for fault in self.faults)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump, symmetric with :meth:`from_dict`."""
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Strict rebuild: unknown kinds/fields raise ``SpecError``."""
        data = _require_mapping(data, "faults")
        unknown = sorted(set(data) - {"faults"})
        if unknown:
            raise SpecError(
                f"unknown field(s) {unknown} in faults; allowed: ['faults']"
            )
        raw = data.get("faults", [])
        if not isinstance(raw, (list, tuple)):
            raise SpecError(
                f"faults.faults must be a list, got {type(raw).__name__}"
            )
        faults = []
        for index, entry in enumerate(raw):
            where = f"faults[{index}]"
            entry = _require_mapping(entry, where)
            kind = entry.get("kind")
            if kind not in _FAULT_KINDS:
                raise SpecError(
                    f"{where} has unknown kind {kind!r}; "
                    f"known: {sorted(_FAULT_KINDS)}"
                )
            faults.append(_FAULT_KINDS[kind].from_dict(entry, where))
        return cls(faults=tuple(faults))

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dict` dump as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON fault plan (raises ``SpecError`` on bad JSON)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid JSON: {error}") from error
        return cls.from_dict(data)
