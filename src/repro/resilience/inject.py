"""Bind a :class:`FaultPlan` to a run seed and inject it.

A :class:`FaultInjector` is the executable form of a fault plan.  It is
built once per run (in ``ExperimentPlan.run_one`` or by the supervised
grid) and exposes one seam per fault family:

* :meth:`hooks` — a :class:`FaultHooks` (``SimHooks``) that applies
  CCA-stuck-busy faults at the engine's interference stage;
* :meth:`apply_observation` — transforms (or drops) each per-subframe
  access report before the BLU controller sees it;
* :meth:`solver_diverges` — tells the controller which blueprint
  inferences must report non-convergence;
* :meth:`worker_fault` — tells the supervised runner which grid cells
  crash or hang, and on which attempts.

Determinism: every random decision comes from a private per-fault
generator seeded by ``SeedSequence([run_seed, fault_index])`` — never
from the engine's RNG stream.  The engine therefore draws exactly the
same activity/fading samples with or without a plan, and a faulted run
is bit-identical serial vs parallel (each worker rebuilds the same
injector from the same ``(plan, seed)``).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.resilience.faults import (
    CcaStuckBusyFault,
    EstimatorBiasFault,
    FaultPlan,
    ReportCorruptFault,
    ReportLossFault,
    SolverDivergenceFault,
    WorkerCrashFault,
    WorkerHangFault,
    _in_window,
)
from repro.sim.stages import SimHooks, SubframeContext, SubframeStage

__all__ = ["FaultInjector", "FaultHooks"]


def _seed_entropy(seed: Optional[int]) -> int:
    """Non-negative entropy word for ``SeedSequence`` from a run seed."""
    if seed is None:
        return 0
    return int(seed) % (2**63)


class FaultHooks(SimHooks):
    """Applies engine-level faults through the SimHooks seam.

    This is the one sanctioned exception to the "hooks observe, never
    mutate" contract documented on :class:`~repro.sim.stages.SimHooks`:
    right after the interference stage computes ``ctx.silenced``, the
    fault hook adds the stuck-busy UEs, so the schedule-clearing and
    transmit stages (and the obs metrics, which read ``silenced`` at
    subframe end) all see one consistent, faulted world.
    """

    def __init__(self, faults: Tuple[CcaStuckBusyFault, ...]) -> None:
        self._faults = tuple(faults)

    def on_stage_end(self, stage: SubframeStage, ctx: SubframeContext) -> None:
        if stage.name != "interference":
            return
        for fault in self._faults:
            if fault.active(ctx.subframe):
                ctx.silenced.add(fault.ue)


class FaultInjector:
    """A fault plan bound to one run's seed; see module docstring."""

    def __init__(self, plan: FaultPlan, seed: Optional[int] = None) -> None:
        self.plan = plan
        self.seed = seed
        entropy = _seed_entropy(seed)
        # One private generator per observation-level fault, keyed by the
        # fault's position in the plan (its fault id).
        self._report_faults: List[Tuple[object, np.random.Generator]] = []
        self._cca: List[CcaStuckBusyFault] = []
        self._divergence: List[SolverDivergenceFault] = []
        self._worker: List[object] = []
        for index, fault in enumerate(plan.faults):
            if isinstance(
                fault, (ReportLossFault, ReportCorruptFault, EstimatorBiasFault)
            ):
                rng = np.random.default_rng(
                    np.random.SeedSequence([entropy, index])
                )
                self._report_faults.append((fault, rng))
            elif isinstance(fault, CcaStuckBusyFault):
                self._cca.append(fault)
            elif isinstance(fault, SolverDivergenceFault):
                self._divergence.append(fault)
            elif isinstance(fault, (WorkerCrashFault, WorkerHangFault)):
                self._worker.append(fault)

    # -- engine seam -------------------------------------------------------

    def hooks(self) -> Optional[FaultHooks]:
        """Engine hooks for CCA faults, or ``None`` when there are none."""
        if not self._cca:
            return None
        return FaultHooks(tuple(self._cca))

    # -- controller seams --------------------------------------------------

    def apply_observation(self, observation):
        """Transform one access report; ``None`` means the report is lost.

        Applies report-level faults in plan order.  Each fault consumes
        its own RNG stream only while its window is active, so adding a
        fault never perturbs another fault's draws.
        """
        for fault, rng in self._report_faults:
            if not _in_window(observation.subframe, fault.start, fault.end):
                continue
            if isinstance(fault, ReportLossFault):
                if rng.random() < fault.prob:
                    return None
                continue
            targets = sorted(observation.scheduled)
            if fault.ues is not None:
                allowed = set(fault.ues)
                targets = [ue for ue in targets if ue in allowed]
            if not targets:
                continue
            accessed = set(observation.accessed)
            if isinstance(fault, ReportCorruptFault):
                for ue in targets:
                    if rng.random() < fault.prob:
                        accessed.symmetric_difference_update({ue})
            else:  # EstimatorBiasFault
                magnitude = abs(fault.bias)
                for ue in targets:
                    if fault.bias < 0 and ue in accessed:
                        if rng.random() < magnitude:
                            accessed.discard(ue)
                    elif fault.bias > 0 and ue not in accessed:
                        if rng.random() < magnitude:
                            accessed.add(ue)
            if accessed != set(observation.accessed):
                observation = self._rebuild(observation, accessed)
        return observation

    @staticmethod
    def _rebuild(observation, accessed: set):
        """A copy of the observation with a consistent accessed set."""
        accessed_f = frozenset(accessed)
        return dataclasses.replace(
            observation,
            accessed=accessed_f,
            blocked=frozenset(observation.scheduled) - accessed_f,
            collided=frozenset(observation.collided) & accessed_f,
            faded=frozenset(observation.faded) & accessed_f,
            decoded=frozenset(observation.decoded) & accessed_f,
        )

    def solver_diverges(self, inference_index: int) -> bool:
        """Whether the ``inference_index``-th inference is forced to fail."""
        return any(fault.hits(inference_index) for fault in self._divergence)

    # -- execution-layer seam ----------------------------------------------

    def worker_fault(
        self, index: int, attempt: int
    ) -> Optional[Tuple[str, float]]:
        """Injected behaviour for grid cell ``index`` on ``attempt``
        (0-based): ``("crash", 0)``, ``("hang", seconds)`` or ``None``."""
        for fault in self._worker:
            if index in fault.cells and attempt < fault.attempts:
                if isinstance(fault, WorkerCrashFault):
                    return ("crash", 0.0)
                return ("hang", float(fault.seconds))
        return None

    @property
    def has_run_faults(self) -> bool:
        """Whether this injector does anything inside a simulation run."""
        return bool(self._report_faults or self._cca or self._divergence)
