"""Campaign invariant auditor: prove a checkpoint directory is healthy.

:func:`audit_campaign` inspects one ``--checkpoint-dir`` directory (any
manifest kind — grid, sweep, or deploy) after a run, resume, or chaos
round and checks the invariants the resilience layer promises:

* **manifest-valid** — ``manifest.json`` parses, carries a supported
  format version, and lists the expected cells.
* **no-lost-cells** — every cell the manifest promises exists on disk
  (skippable via ``expect_complete=False`` for mid-flight audits).
* **no-orphan-cells** — no cell file outside the manifest's range: an
  orphan means results from a different or stale run are mixed in.
* **cells-intact** — every cell file parses, passes its sha256 integrity
  digest, and records the index and label the manifest assigns it
  (a label mismatch means cell files were shuffled or renamed).
* **resume-equals-fresh** — with ``reference_dir``, every cell record is
  bit-exact with the same cell of a fault-free reference run: recovery
  recomputed corrupted cells to *identical* payloads, not merely
  plausible ones.  Observation payloads (``obs_trace`` and friends,
  which carry wall-clock data) are excluded, mirroring
  ``SimulationResult``'s own ``compare=False`` equality contract.
* **telemetry-lifecycle** — with ``telemetry_dir``, every item's last
  ``item-started`` event reaches a terminal event (``item-done``,
  ``cluster-done``, or ``quarantine``), or the item is listed as
  already-completed by a later ``campaign-started`` resume event (a
  kill can tear the terminal line of an item whose checkpoint already
  landed — the resume then reports it completed without re-running it).

The result is an :class:`AuditReport` of passed checks and violations —
plain data, JSON-ready — which the ``repro chaos`` driver folds into its
machine-readable verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import CheckpointError
from repro.resilience.checkpoint import CheckpointStore

__all__ = ["AuditReport", "audit_campaign"]

#: Telemetry event types that terminate an ``item-started``.
_TERMINAL_EVENTS = frozenset({"item-done", "cluster-done", "quarantine"})

#: Observation payloads riding on serialized results.  ``SimulationResult``
#: declares these ``compare=False`` — they carry wall-clock data (trace
#: timestamps, timing metrics) that two bit-identical simulations do not
#: share, so bit-exactness comparisons must ignore them.
_OBSERVATION_KEYS = frozenset({"obs_snapshot", "obs_trace", "obs_series"})


def comparable_state(value: Any) -> Any:
    """``value`` with observation payloads recursively stripped.

    Used by the resume-equals-fresh checks (here and in
    :mod:`repro.resilience.chaos`) so comparisons follow the same
    equality contract as ``SimulationResult`` itself.
    """
    if isinstance(value, dict):
        return {
            key: comparable_state(item)
            for key, item in value.items()
            if key not in _OBSERVATION_KEYS
        }
    if isinstance(value, list):
        return [comparable_state(item) for item in value]
    return value


@dataclass
class AuditReport:
    """Outcome of one :func:`audit_campaign` pass — plain, JSON-ready."""

    directory: str
    #: Names of invariant checks that ran and passed.
    checks: List[str] = field(default_factory=list)
    #: Human-readable descriptions of every invariant violation found.
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump (no timestamps — reports are reproducible)."""
        return {
            "directory": self.directory,
            "checks": list(self.checks),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def _expected_labels(manifest: Dict[str, Any]) -> Optional[List[List[Any]]]:
    """The ordered cell labels a manifest promises, or ``None`` if the
    manifest kind is unknown (no structural expectations possible)."""
    kind = manifest.get("kind")
    if kind in ("grid", "sweep"):
        cells = manifest.get("cells")
        if isinstance(cells, list):
            return [list(cell) for cell in cells]
        return None
    if kind == "deploy":
        clusters = manifest.get("clusters")
        if isinstance(clusters, list):
            return [list(cluster) for cluster in clusters]
        return None
    return None


def _audit_cells(
    store: CheckpointStore,
    expected: List[List[Any]],
    expect_complete: bool,
    report: AuditReport,
) -> Dict[int, Dict[str, Any]]:
    """Check presence, range, integrity, and labels; return good records."""
    num_items = len(expected)
    present = store.completed()

    orphans = sorted(index for index in present if index >= num_items)
    if orphans:
        report.violations.append(
            f"orphan cell files beyond the manifest's {num_items} items: "
            f"{orphans}"
        )
    else:
        report.checks.append("no-orphan-cells")

    if expect_complete:
        lost = sorted(set(range(num_items)) - present)
        if lost:
            report.violations.append(f"lost cells (no file on disk): {lost}")
        else:
            report.checks.append("no-lost-cells")

    records: Dict[int, Dict[str, Any]] = {}
    intact = True
    for index in sorted(present):
        if index >= num_items:
            continue
        try:
            record = store._read_record(index)
        except CheckpointError as error:
            intact = False
            report.violations.append(str(error))
            continue
        if record is None:  # pragma: no cover - raced removal
            continue
        if record.get("label") != expected[index]:
            intact = False
            report.violations.append(
                f"cell {index} records label {record.get('label')!r} but the "
                f"manifest assigns {expected[index]!r}"
            )
            continue
        records[index] = record
    if intact:
        report.checks.append("cells-intact")
    return records


def _reference_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """A record as compared across runs: no observation payloads, and no
    digest — the digest covers those payloads, so it differs whenever
    they do; per-record integrity is the cells-intact check's job."""
    view = comparable_state(record)
    view.pop("sha256", None)
    return view


def _audit_reference(
    records: Dict[int, Dict[str, Any]],
    reference_dir,
    report: AuditReport,
) -> None:
    """Bit-exactness of every cell record against a fault-free run."""
    reference = CheckpointStore(reference_dir)
    exact = True
    for index, record in sorted(records.items()):
        try:
            expected = reference._read_record(index)
        except CheckpointError as error:
            exact = False
            report.violations.append(f"reference run unusable: {error}")
            continue
        if expected is None:
            exact = False
            report.violations.append(
                f"cell {index} has no counterpart in the reference run at "
                f"{reference.directory}"
            )
            continue
        if _reference_view(record) != _reference_view(expected):
            exact = False
            report.violations.append(
                f"cell {index} differs from the fault-free reference run "
                "(resume-equals-fresh violated)"
            )
    if exact:
        report.checks.append("resume-equals-fresh")


def _audit_telemetry(telemetry_dir, report: AuditReport) -> None:
    """Every item's last start reaches a terminal event or a resume's
    completed list; see module docstring for why the latter counts."""
    from repro.obs.telemetry import read_telemetry

    events = read_telemetry(telemetry_dir)
    last_start: Dict[str, int] = {}
    terminal_at: Dict[str, List[int]] = {}
    completed_at: Dict[str, List[int]] = {}
    for position, event in enumerate(events):
        etype = event.get("type")
        item = event.get("item")
        if etype == "item-started" and isinstance(item, str):
            last_start[item] = position
        elif etype in _TERMINAL_EVENTS and isinstance(item, str):
            terminal_at.setdefault(item, []).append(position)
        elif etype == "campaign-started":
            for label in event.get("completed") or []:
                if isinstance(label, str):
                    completed_at.setdefault(label, []).append(position)

    consistent = True
    for item, started in sorted(last_start.items()):
        ended = any(pos > started for pos in terminal_at.get(item, []))
        resumed_past = any(
            pos > started for pos in completed_at.get(item, [])
        )
        if not ended and not resumed_past:
            consistent = False
            report.violations.append(
                f"telemetry: item {item!r} started (event {started}) but "
                "never reached a terminal event or a resume's completed list"
            )
    if consistent:
        report.checks.append("telemetry-lifecycle")


def audit_campaign(
    checkpoint_dir,
    reference_dir=None,
    telemetry_dir=None,
    expect_complete: bool = True,
) -> AuditReport:
    """Audit one checkpoint directory against the resilience invariants.

    ``reference_dir`` (a fault-free run of the same spec) enables the
    resume-equals-fresh bit-exactness check; ``telemetry_dir`` (often the
    same directory) enables the lifecycle-consistency check.  With
    ``expect_complete=False`` missing cells are allowed — the audit of a
    run that is still (legitimately) in flight.  Never raises on a bad
    directory: every problem becomes a violation in the report.
    """
    checkpoint_dir = Path(checkpoint_dir)
    report = AuditReport(directory=str(checkpoint_dir))
    store = CheckpointStore(checkpoint_dir)

    try:
        manifest = store.load_manifest()
    except CheckpointError as error:
        report.violations.append(f"manifest invalid: {error}")
        return report
    report.checks.append("manifest-valid")

    expected = _expected_labels(manifest)
    if expected is None:
        report.violations.append(
            f"manifest kind {manifest.get('kind')!r} lists no auditable "
            "cells (expected grid/sweep 'cells' or deploy 'clusters')"
        )
        return report

    records = _audit_cells(store, expected, expect_complete, report)
    if reference_dir is not None:
        _audit_reference(records, reference_dir, report)
    if telemetry_dir is not None:
        _audit_telemetry(telemetry_dir, report)
    return report
