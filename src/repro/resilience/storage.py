"""Durable file primitives with a chaos-injectable fault seam.

Every durable write in the repo — checkpoint manifests and cells
(:mod:`repro.resilience.checkpoint`) and telemetry event lines
(:mod:`repro.obs.telemetry`) — flows through the two primitives here:

* :func:`atomic_write_json` / :func:`atomic_write_text` — the full
  crash-consistent replace sequence: write a same-directory temp file,
  ``fsync`` it, ``os.replace`` over the target, then ``fsync`` the
  directory.  A reader sees the old file or the new one, never half of
  either, and a *completed* write survives power loss, not just process
  kill (the directory fsync is what makes the rename itself durable).
* :func:`append_line` — one flushed ``write()`` of one line on an
  append-mode handle; atomic for lines under ``PIPE_BUF``.

Both primitives consult the process-local **storage interceptor** first.
The interceptor is the seam :mod:`repro.resilience.chaos` uses to inject
seeded storage faults — torn writes, bit flips, ``ENOSPC``/``EIO``,
fsync loss — into exactly these code paths, so the recovery machinery is
exercised against the failures it claims to survive.  With no
interceptor installed (the default, and the only configuration
production runs use) the primitives add nothing but the fsyncs.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

__all__ = [
    "StorageInterceptor",
    "append_line",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "set_storage_interceptor",
    "storage_interceptor",
    "use_storage_interceptor",
]


class StorageInterceptor:
    """Base class for storage-fault seams; every hook is a no-op here.

    Subclasses (see :class:`repro.resilience.chaos.StorageChaos`)
    override the hooks to perturb durable writes:

    * :meth:`intercept_write` may raise an ``OSError`` (disk fault),
      perform a *faulted* version of the write itself and return ``True``
      (torn write, fsync loss), or return ``False`` to let the normal
      durable write proceed.
    * :meth:`post_write` runs after a successful replace — the hook for
      silent on-disk corruption (bit flips) the writer never notices.
    * :meth:`intercept_append` may rewrite an appended line, or return
      ``None`` to drop it.
    """

    def intercept_write(self, path: Path, data: str) -> bool:
        """Return ``True`` when the fault consumed the write."""
        return False

    def post_write(self, path: Path) -> None:
        """Observe (or corrupt) ``path`` after a completed write."""

    def intercept_append(self, path: Path, line: str) -> Optional[str]:
        """Return the line to append, or ``None`` to drop it."""
        return line


#: The process-local interceptor; ``None`` (the default) = no faults.
_INTERCEPTOR: Optional[StorageInterceptor] = None


def storage_interceptor() -> Optional[StorageInterceptor]:
    """The active storage interceptor, or ``None``."""
    return _INTERCEPTOR


def set_storage_interceptor(
    interceptor: Optional[StorageInterceptor],
) -> Optional[StorageInterceptor]:
    """Install (or clear, with ``None``) the interceptor; returns the old."""
    global _INTERCEPTOR
    previous = _INTERCEPTOR
    _INTERCEPTOR = interceptor
    return previous


@contextmanager
def use_storage_interceptor(
    interceptor: Optional[StorageInterceptor],
) -> Iterator[Optional[StorageInterceptor]]:
    """Scope ``interceptor`` as the active one; restores the previous."""
    previous = set_storage_interceptor(interceptor)
    try:
        yield interceptor
    finally:
        set_storage_interceptor(previous)


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory's entry table so a completed rename is durable.

    Best-effort: platforms that cannot fsync a directory handle simply
    skip it (the rename is still atomic, just not power-loss durable).
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path], data: str, durable: bool = True
) -> None:
    """Atomically (and, with ``durable``, power-loss-safely) write a file.

    Temp file in the same directory → ``fsync`` → ``os.replace`` →
    directory ``fsync``.  On any failure the temp file is removed, so a
    failed write leaves the target untouched and the directory clean.
    """
    path = Path(path)
    interceptor = _INTERCEPTOR
    if interceptor is not None and interceptor.intercept_write(path, data):
        return
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(path.parent)
    if interceptor is not None:
        interceptor.post_write(path)


def atomic_write_json(
    path: Union[str, Path], payload: Any, durable: bool = True
) -> None:
    """:func:`atomic_write_text` of ``payload`` as indented JSON."""
    atomic_write_text(
        path, json.dumps(payload, indent=2) + "\n", durable=durable
    )


def append_line(path: Union[str, Path], line: str) -> None:
    """Append one line with a single flushed ``write()`` (O_APPEND-atomic)."""
    path = Path(path)
    interceptor = _INTERCEPTOR
    if interceptor is not None:
        intercepted = interceptor.intercept_append(path, line)
        if intercepted is None:
            return
        line = intercepted
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
