"""Supervised execution of independent work items.

:func:`supervised_map` is the resilient core under
:func:`repro.sim.runner.map_jobs`: it maps a function over self-contained
work items — serially or over a ``ProcessPoolExecutor`` — while giving
each item a configurable per-attempt timeout and bounded retries with
exponential backoff + deterministic jitter.  Items that keep failing are
*quarantined* into structured :class:`FailedItem` records instead of
aborting the batch, so one poisoned cell cannot take down an overnight
grid.  Retry/timeout/failure counts are emitted into the active obs
registry (``resilience.*`` counters) when observability is on.

Semantics worth knowing:

* Work items must be deterministic given their own payload (the
  matched-seed contract): a retried item recomputes the identical
  result, so supervision never changes *what* is computed, only whether
  a transient crash is survived.
* A timed-out item's worker process cannot be killed through the
  ``concurrent.futures`` API; the supervisor abandons the future,
  counts the timeout, and resubmits.  The abandoned worker keeps its
  pool slot until it finishes — acceptable for hangs that eventually
  return, documented as a limitation for true livelocks.
* In serial mode (``n_jobs=1``) there is no way to interrupt a running
  call, so ``timeout_s`` is not enforced; injected hangs simply delay
  the (identical) result.
* With ``fail_fast=True`` (how :func:`~repro.sim.runner.map_jobs` runs
  when no supervisor config is given) the first *permanent* failure
  re-raises its original exception, preserving the historical strict
  behaviour.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ResilienceError, WorkerFailure
from repro.obs.metrics import active_registry
from repro.obs.telemetry import TelemetryLog, use_telemetry

__all__ = [
    "SupervisorConfig",
    "FailedItem",
    "SupervisedOutcome",
    "supervised_map",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout policy for one supervised batch.

    ``max_retries`` bounds *additional* attempts after the first (so an
    item runs at most ``max_retries + 1`` times).  The backoff before
    retry ``r`` (1-based) is ``backoff_base_s * backoff_factor**(r-1)``,
    stretched by up to ``backoff_jitter`` of itself using a jitter drawn
    deterministically from ``(item index, attempt)`` — reproducible, yet
    desynchronized across items.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 0
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ResilienceError(
                f"timeout_s must be positive or None: {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0: {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ResilienceError(
                f"backoff_base_s must be >= 0: {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ResilienceError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ResilienceError(
                f"backoff_jitter must be in [0, 1]: {self.backoff_jitter}"
            )


@dataclass
class FailedItem:
    """A quarantined work item: what failed, how often, for how long.

    Takes the item's slot in ``SupervisedOutcome.results`` so positional
    alignment with the input sequence survives partial failure.  The
    original exception rides along (``exception``, excluded from
    comparison) so strict callers can re-raise it.
    """

    index: int
    error_type: str
    message: str
    attempts: int
    elapsed_s: float
    timed_out: bool = False
    exception: Optional[BaseException] = field(
        default=None, compare=False, repr=False
    )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record (drops the live exception object)."""
        return {
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "timed_out": self.timed_out,
        }


@dataclass
class SupervisedOutcome:
    """Everything a supervised batch produced.

    ``results`` is positionally aligned with the input items; failed
    slots hold their :class:`FailedItem` (also collected in
    ``failures``).
    """

    results: List[Any]
    failures: List[FailedItem] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0

    @property
    def ok(self) -> bool:
        """Whether every item eventually succeeded."""
        return not self.failures


def _resolve_jobs(n_jobs: Optional[int]) -> int:
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ResilienceError(f"n_jobs must be >= 1 or -1: {n_jobs}")
    return int(n_jobs)


def _heartbeat_loop(
    telemetry: TelemetryLog,
    label: str,
    attempt: int,
    started: float,
    stop: threading.Event,
) -> None:
    """Daemon-thread body: beat until told to stop (or the process dies)."""
    pid = os.getpid()
    while not stop.wait(telemetry.heartbeat_s):
        try:
            telemetry.emit(
                "heartbeat",
                item=label,
                attempt=attempt,
                pid=pid,
                elapsed_s=round(time.perf_counter() - started, 3),
            )
        except OSError:  # pragma: no cover - telemetry dir vanished
            return


def _injected_call(
    fn,
    item,
    kind: Optional[str],
    seconds: float,
    telemetry: Optional[TelemetryLog] = None,
    label: Optional[str] = None,
    attempt: int = 0,
):
    """Run one item, honouring an injected worker fault.

    Module-level so it pickles into pool workers.  ``kind`` is ``None``
    (no fault), ``"crash"`` or ``"hang"`` — see
    :class:`~repro.resilience.faults.WorkerCrashFault` /
    :class:`~repro.resilience.faults.WorkerHangFault`.

    With ``telemetry`` attached, emits ``item-started`` and periodic
    ``heartbeat`` events from a daemon thread — started *before* fault
    injection, so even an injected hang keeps beating (with growing
    ``elapsed_s``) and shows up live in ``repro monitor``.  The log is
    scoped via :func:`~repro.obs.telemetry.use_telemetry` around ``fn``
    so obs sessions inside can stream run-level progress.  Heartbeats
    only observe: they never touch ``fn``'s inputs or the engine RNG
    stream, so results stay bit-exact with telemetry off.
    """
    if telemetry is None:
        if kind == "crash":
            raise WorkerFailure("injected worker crash (fault plan)")
        if kind == "hang" and seconds > 0:
            time.sleep(seconds)
        return fn(item)
    started = time.perf_counter()
    telemetry.emit(
        "item-started", item=label, attempt=attempt, pid=os.getpid()
    )
    stop = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(telemetry, label, attempt, started, stop),
        daemon=True,
    )
    beater.start()
    try:
        if kind == "crash":
            raise WorkerFailure("injected worker crash (fault plan)")
        if kind == "hang" and seconds > 0:
            time.sleep(seconds)
        with use_telemetry(telemetry):
            return fn(item)
    finally:
        stop.set()
        beater.join(timeout=telemetry.heartbeat_s * 4)


def _backoff_delay(config: SupervisorConfig, index: int, attempt: int) -> float:
    """Deterministic-jitter exponential backoff before retry ``attempt``."""
    if config.backoff_base_s <= 0:
        return 0.0
    delay = config.backoff_base_s * config.backoff_factor ** (attempt - 1)
    jitter = Random((index + 1) * 2654435761 + attempt).random()
    return delay * (1.0 + config.backoff_jitter * jitter)


class _Counters:
    """Lazy handles on the ``resilience.*`` obs counters (no-ops when
    observability is off)."""

    def __init__(self) -> None:
        registry = active_registry()
        if registry is None:
            self.retries = self.timeouts = self.failures = self.completed = None
            return
        self.retries = registry.counter(
            "resilience.retries", help="supervised work-item retry attempts"
        )
        self.timeouts = registry.counter(
            "resilience.timeouts", help="supervised work-item attempt timeouts"
        )
        self.failures = registry.counter(
            "resilience.failures",
            help="work items quarantined after exhausting retries",
        )
        self.completed = registry.counter(
            "resilience.items_completed",
            help="supervised work items that produced a result",
        )

    @staticmethod
    def inc(counter) -> None:
        if counter is not None:
            counter.inc()


WorkerFaultFn = Callable[[int, int], Optional[Tuple[str, float]]]


def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    n_jobs: Optional[int] = 1,
    config: Optional[SupervisorConfig] = None,
    worker_fault: Optional[WorkerFaultFn] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    fail_fast: bool = False,
    telemetry: Optional[TelemetryLog] = None,
    labels: Optional[Sequence[Any]] = None,
) -> SupervisedOutcome:
    """Map ``fn`` over items under supervision; see the module docstring.

    ``worker_fault(index, attempt)`` optionally injects crash/hang
    faults (from a :class:`~repro.resilience.inject.FaultInjector`).
    ``on_result(index, result)`` fires in the parent as each item
    completes — the checkpoint layer saves cells here, so progress
    survives a kill even mid-batch.

    ``telemetry`` streams the batch's lifecycle into a
    :class:`~repro.obs.telemetry.TelemetryLog`: ``item-started`` and
    periodic ``heartbeat`` events from inside each worker, ``retry`` /
    ``timeout`` / ``quarantine`` / ``item-done`` from the parent as it
    reacts.  ``labels`` names items in those events (positionally
    aligned; defaults to the item index).
    """
    config = SupervisorConfig() if config is None else config
    items = list(items)
    outcome = SupervisedOutcome(results=[None] * len(items))
    if not items:
        return outcome
    if labels is not None and len(labels) != len(items):
        raise ResilienceError(
            f"labels length {len(labels)} != items length {len(items)}"
        )
    names = [
        str(labels[i]) if labels is not None else str(i)
        for i in range(len(items))
    ]
    counters = _Counters()
    jobs = min(_resolve_jobs(n_jobs), len(items))
    if jobs <= 1:
        _serial_loop(fn, items, config, worker_fault, on_result, fail_fast,
                     outcome, counters, telemetry, names)
    else:
        _pool_loop(fn, items, jobs, config, worker_fault, on_result, fail_fast,
                   outcome, counters, telemetry, names)
    return outcome


def _fault_for(worker_fault, index: int, attempt: int):
    fault = worker_fault(index, attempt) if worker_fault is not None else None
    return fault if fault is not None else (None, 0.0)


def _record_failure(
    outcome: SupervisedOutcome,
    counters: _Counters,
    fail_fast: bool,
    index: int,
    attempts: int,
    elapsed_s: float,
    error: BaseException,
    timed_out: bool,
    telemetry: Optional[TelemetryLog] = None,
    label: Optional[str] = None,
) -> None:
    if fail_fast:
        raise error
    failed = FailedItem(
        index=index,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempts,
        elapsed_s=elapsed_s,
        timed_out=timed_out,
        exception=error,
    )
    outcome.results[index] = failed
    outcome.failures.append(failed)
    counters.inc(counters.failures)
    if telemetry is not None:
        telemetry.emit(
            "quarantine",
            item=label,
            attempts=attempts,
            error=f"{type(error).__name__}: {error}",
            timed_out=timed_out or None,
        )


def _serial_loop(fn, items, config, worker_fault, on_result, fail_fast,
                 outcome, counters, telemetry=None, names=None) -> None:
    for index, item in enumerate(items):
        label = names[index] if names is not None else str(index)
        started = time.perf_counter()
        attempt = 0
        while True:
            kind, seconds = _fault_for(worker_fault, index, attempt)
            try:
                result = _injected_call(
                    fn, item, kind, seconds, telemetry, label, attempt
                )
            except Exception as error:  # noqa: BLE001 - supervised boundary
                if attempt < config.max_retries:
                    attempt += 1
                    outcome.retries += 1
                    counters.inc(counters.retries)
                    if telemetry is not None:
                        telemetry.emit("retry", item=label, attempt=attempt)
                    delay = _backoff_delay(config, index, attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                _record_failure(
                    outcome, counters, fail_fast, index, attempt + 1,
                    time.perf_counter() - started, error, timed_out=False,
                    telemetry=telemetry, label=label,
                )
                break
            outcome.results[index] = result
            counters.inc(counters.completed)
            if telemetry is not None:
                telemetry.emit(
                    "item-done",
                    item=label,
                    attempts=attempt + 1,
                    elapsed_s=round(time.perf_counter() - started, 3),
                )
            if on_result is not None:
                on_result(index, result)
            break


def _pool_loop(fn, items, jobs, config, worker_fault, on_result, fail_fast,
               outcome, counters, telemetry=None, names=None) -> None:
    pool = ProcessPoolExecutor(max_workers=jobs)
    abandoned = False

    def label_of(index: int) -> str:
        return names[index] if names is not None else str(index)

    try:
        # future -> (index, attempt, item_started, attempt_deadline)
        running: Dict[Any, Tuple[int, int, float, Optional[float]]] = {}
        # (due_monotonic, index, attempt, item_started) min-heap
        retry_queue: List[Tuple[float, int, int, float]] = []

        def submit(index: int, attempt: int, item_started: float) -> None:
            kind, seconds = _fault_for(worker_fault, index, attempt)
            future = pool.submit(
                _injected_call, fn, items[index], kind, seconds,
                telemetry, label_of(index), attempt,
            )
            deadline = (
                None if config.timeout_s is None
                else time.monotonic() + config.timeout_s
            )
            running[future] = (index, attempt, item_started, deadline)

        def fail_or_retry(index, attempt, item_started, error, timed_out):
            if attempt < config.max_retries:
                outcome.retries += 1
                counters.inc(counters.retries)
                if telemetry is not None:
                    telemetry.emit(
                        "retry", item=label_of(index), attempt=attempt + 1
                    )
                due = time.monotonic() + _backoff_delay(
                    config, index, attempt + 1
                )
                heapq.heappush(
                    retry_queue, (due, index, attempt + 1, item_started)
                )
                return
            _record_failure(
                outcome, counters, fail_fast, index, attempt + 1,
                time.perf_counter() - item_started, error, timed_out,
                telemetry=telemetry, label=label_of(index),
            )

        for index in range(len(items)):
            submit(index, 0, time.perf_counter())

        while running or retry_queue:
            now = time.monotonic()
            while retry_queue and retry_queue[0][0] <= now:
                _, index, attempt, item_started = heapq.heappop(retry_queue)
                submit(index, attempt, item_started)
            # Sleep until the nearest attempt deadline or retry due time.
            bounds = [
                deadline - now
                for (_, _, _, deadline) in running.values()
                if deadline is not None
            ]
            if retry_queue:
                bounds.append(retry_queue[0][0] - now)
            wait_s = max(0.0, min(bounds)) if bounds else None
            if not running:
                time.sleep(wait_s or 0.0)
                continue
            done, _pending = futures_wait(
                set(running), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            for future in done:
                index, attempt, item_started, _deadline = running.pop(future)
                error = future.exception()
                if error is None:
                    result = future.result()
                    outcome.results[index] = result
                    counters.inc(counters.completed)
                    if telemetry is not None:
                        telemetry.emit(
                            "item-done",
                            item=label_of(index),
                            attempts=attempt + 1,
                            elapsed_s=round(
                                time.perf_counter() - item_started, 3
                            ),
                        )
                    if on_result is not None:
                        on_result(index, result)
                else:
                    fail_or_retry(
                        index, attempt, item_started, error, timed_out=False
                    )
            now = time.monotonic()
            expired = [
                future
                for future, (_, _, _, deadline) in running.items()
                if deadline is not None and deadline <= now
            ]
            for future in expired:
                index, attempt, item_started, _deadline = running.pop(future)
                # The worker cannot be killed; abandon the future (its
                # eventual completion is ignored) and count the timeout.
                future.cancel()
                abandoned = True
                outcome.timeouts += 1
                counters.inc(counters.timeouts)
                if telemetry is not None:
                    telemetry.emit(
                        "timeout",
                        item=label_of(index),
                        attempt=attempt + 1,
                        timeout_s=config.timeout_s,
                    )
                error = ResilienceError(
                    f"work item {index} timed out after {config.timeout_s}s "
                    f"(attempt {attempt + 1})"
                )
                fail_or_retry(
                    index, attempt, item_started, error, timed_out=True
                )
    finally:
        # Abandoned (hung) workers must not block the caller: skip the
        # join and let them exit on their own once the hang clears.
        pool.shutdown(wait=not abandoned, cancel_futures=True)
