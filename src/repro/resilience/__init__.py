"""repro.resilience — operating through adversity, systematically.

Four pillars (see ``docs/RESILIENCE.md``):

* **Fault injection** — :class:`FaultPlan` declares typed, seeded faults
  (report loss/corruption, estimator bias, solver divergence, CCA
  stuck-busy, worker crash/hang) on an experiment spec;
  :class:`FaultInjector` applies them deterministically per
  ``(seed, fault id)``, so faulted runs stay bit-reproducible.
* **Supervised execution** — :func:`supervised_map` gives every work
  item a timeout and bounded retries with backoff, quarantining
  permanent failures into :class:`FailedItem` records instead of
  aborting the grid.
* **Checkpoint/resume** — :class:`CheckpointStore` persists one atomic,
  sha256-digested result file per completed grid cell plus a versioned
  manifest; interrupted runs resume from exactly the missing cells
  (``repro resume``), and corrupt/torn cells are quarantined and
  recomputed instead of crashing the resume.
* **Storage chaos** — :func:`run_chaos` adversarially exercises the
  checkpoint guarantees: seeded rounds of kill points × storage faults
  (torn writes, bit flips, fsync loss, ``ENOSPC``/``EIO``) injected at
  the :mod:`~repro.resilience.storage` seam, each round recovered and
  audited by :func:`audit_campaign` (``repro chaos``).
* **Graceful degradation** — lives in
  :class:`~repro.core.controller.BLUController`: inference health gating
  with a ``DEGRADED`` fallback-to-PF phase (knobs on ``BLUConfig``).
"""

from repro.resilience.audit import AuditReport, audit_campaign
from repro.resilience.chaos import (
    STORAGE_FAULT_KINDS,
    ChaosRound,
    ChaosSchedule,
    ChaosVerdict,
    SimulatedKill,
    StorageChaos,
    derive_schedule,
    run_chaos,
)
from repro.resilience.checkpoint import CheckpointStore, QuarantinedCell
from repro.resilience.faults import (
    CcaStuckBusyFault,
    EstimatorBiasFault,
    FaultPlan,
    ReportCorruptFault,
    ReportLossFault,
    SolverDivergenceFault,
    WorkerCrashFault,
    WorkerHangFault,
)
from repro.resilience.inject import FaultHooks, FaultInjector
from repro.resilience.storage import (
    StorageInterceptor,
    atomic_write_json,
    atomic_write_text,
    set_storage_interceptor,
    storage_interceptor,
    use_storage_interceptor,
)
from repro.resilience.supervisor import (
    FailedItem,
    SupervisedOutcome,
    SupervisorConfig,
    supervised_map,
)

__all__ = [
    "STORAGE_FAULT_KINDS",
    "AuditReport",
    "CcaStuckBusyFault",
    "ChaosRound",
    "ChaosSchedule",
    "ChaosVerdict",
    "CheckpointStore",
    "EstimatorBiasFault",
    "FailedItem",
    "FaultHooks",
    "FaultInjector",
    "FaultPlan",
    "QuarantinedCell",
    "ReportCorruptFault",
    "ReportLossFault",
    "SimulatedKill",
    "SolverDivergenceFault",
    "StorageChaos",
    "StorageInterceptor",
    "SupervisedOutcome",
    "SupervisorConfig",
    "WorkerCrashFault",
    "WorkerHangFault",
    "atomic_write_json",
    "atomic_write_text",
    "audit_campaign",
    "derive_schedule",
    "run_chaos",
    "set_storage_interceptor",
    "storage_interceptor",
    "supervised_map",
    "use_storage_interceptor",
]
