"""repro.resilience — operating through adversity, systematically.

Four pillars (see ``docs/RESILIENCE.md``):

* **Fault injection** — :class:`FaultPlan` declares typed, seeded faults
  (report loss/corruption, estimator bias, solver divergence, CCA
  stuck-busy, worker crash/hang) on an experiment spec;
  :class:`FaultInjector` applies them deterministically per
  ``(seed, fault id)``, so faulted runs stay bit-reproducible.
* **Supervised execution** — :func:`supervised_map` gives every work
  item a timeout and bounded retries with backoff, quarantining
  permanent failures into :class:`FailedItem` records instead of
  aborting the grid.
* **Checkpoint/resume** — :class:`CheckpointStore` persists one atomic
  result file per completed grid cell plus a manifest; interrupted runs
  resume from exactly the missing cells (``repro resume``).
* **Graceful degradation** — lives in
  :class:`~repro.core.controller.BLUController`: inference health gating
  with a ``DEGRADED`` fallback-to-PF phase (knobs on ``BLUConfig``).
"""

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import (
    CcaStuckBusyFault,
    EstimatorBiasFault,
    FaultPlan,
    ReportCorruptFault,
    ReportLossFault,
    SolverDivergenceFault,
    WorkerCrashFault,
    WorkerHangFault,
)
from repro.resilience.inject import FaultHooks, FaultInjector
from repro.resilience.supervisor import (
    FailedItem,
    SupervisedOutcome,
    SupervisorConfig,
    supervised_map,
)

__all__ = [
    "CcaStuckBusyFault",
    "CheckpointStore",
    "EstimatorBiasFault",
    "FailedItem",
    "FaultHooks",
    "FaultInjector",
    "FaultPlan",
    "ReportCorruptFault",
    "ReportLossFault",
    "SolverDivergenceFault",
    "SupervisedOutcome",
    "SupervisorConfig",
    "WorkerCrashFault",
    "WorkerHangFault",
    "supervised_map",
]
