"""Atomic, integrity-checked per-cell checkpointing for experiment runs.

Layout of a checkpoint directory::

    manifest.json        what is being run: format version, kind
                         (grid/sweep/deploy), the full spec dict(s),
                         seeds/parameters, and the ordered cell labels —
                         enough for ``repro resume`` to finish the run
                         with no other inputs
    cell-00000.json      one completed cell: index, label, the lossless
                         result payload, and a sha256 digest of all three
    cell-00001.json      ...
    quarantine/          corrupt/torn cells moved aside by
                         :meth:`CheckpointStore.load_cell_or_quarantine`
                         so resume recomputes them instead of crashing

Durability contract (pinned by ``tests/resilience/``):

* Every write goes through
  :func:`repro.resilience.storage.atomic_write_json` — temp file +
  fsync + ``os.replace`` + directory fsync — so a kill *or power loss*
  mid-write never leaves a truncated cell, and a completed cell is
  actually on the platter, not just in the page cache.
* Every cell record carries a sha256 digest over its canonical JSON;
  loading verifies it, so silent corruption (bit rot, torn writes that
  happen to stay parseable) is detected, not propagated into results.
* The strict loaders (:meth:`~CheckpointStore.load_cell`,
  :meth:`~CheckpointStore.load_payload`) raise
  :class:`~repro.errors.CheckpointError` naming the offending path.
  The recovery loaders (``*_or_quarantine``) instead move the bad file
  into ``quarantine/``, record a :class:`QuarantinedCell`, and return
  ``None`` — the runner then recomputes exactly that cell, and the
  incident surfaces as a DEGRADED note in deploy reports and
  ``repro monitor`` rather than crashing the resume.

Results round-trip bit-exactly — Python's shortest ``repr`` float
serialization is lossless — which is what the resume-equals-fresh
regression tests (and the :mod:`repro.resilience.chaos` auditor) pin
down.

Re-running against an existing directory validates the manifest first: a
different spec, seed list, or cell ordering raises
:class:`~repro.errors.CheckpointError` rather than silently mixing
results from two different experiments.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from repro.errors import CheckpointError
from repro.resilience.storage import atomic_write_json
from repro.sim.results import SimulationResult

__all__ = ["CheckpointStore", "QuarantinedCell"]

_MANIFEST = "manifest.json"
_CELL_PREFIX = "cell-"
_QUARANTINE_DIR = "quarantine"

#: Manifest format written by this code; version 1 (pre-digest) stores
#: remain resumable.
MANIFEST_VERSION = 2
SUPPORTED_MANIFEST_VERSIONS = (1, 2)


def _atomic_write_json(path: Path, payload: Any) -> None:
    """Durably write JSON: old file or new file, never half — and the
    completed write survives power loss (fsync file + directory)."""
    atomic_write_json(path, payload, durable=True)


def _normalize(payload: Any) -> Any:
    """Round ``payload`` through JSON so tuples/ints compare canonically."""
    return json.loads(json.dumps(payload))


def _digest(record: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON of a record (digest field excluded)."""
    undigested = {key: value for key, value in record.items() if key != "sha256"}
    canonical = json.dumps(undigested, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class QuarantinedCell:
    """One corrupt/torn cell file moved aside instead of crashing resume."""

    index: int
    path: str
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready record for reports and telemetry."""
        return {"index": self.index, "path": self.path, "reason": self.reason}

    def note(self) -> str:
        """One-line human-readable DEGRADED note."""
        return (
            f"checkpoint cell {self.index} quarantined and recomputed: "
            f"{self.reason}"
        )


class CheckpointStore:
    """One checkpoint directory: a manifest plus atomic, digested cells."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        #: Cells this instance quarantined (recovery loaders only).
        self.quarantined: List[QuarantinedCell] = []

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Location of this store's ``manifest.json``."""
        return self.directory / _MANIFEST

    def initialize(self, manifest: Mapping[str, Any]) -> Dict[str, Any]:
        """Create the directory + manifest, or validate an existing one.

        Raises :class:`CheckpointError` when the directory already holds
        a manifest for a *different* run — checkpoints never mix.  The
        comparison ignores the format ``version`` so version-1 stores
        resume under version-2 code.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = _normalize({"version": MANIFEST_VERSION, **manifest})
        path = self.manifest_path
        if path.exists():
            stored = self.load_manifest()
            if {k: v for k, v in stored.items() if k != "version"} != {
                k: v for k, v in payload.items() if k != "version"
            }:
                raise CheckpointError(
                    f"checkpoint directory {self.directory} belongs to a "
                    "different run (manifest mismatch); use a fresh "
                    "directory or resume with the original spec"
                )
            return stored
        _atomic_write_json(path, payload)
        return payload

    def load_manifest(self) -> Dict[str, Any]:
        """Read and parse the manifest; raises on absence or corruption."""
        path = self.manifest_path
        if not path.is_file():
            raise CheckpointError(
                f"no checkpoint manifest at {path}; expected a directory "
                "previously written by a --checkpoint-dir run (holding "
                "manifest.json and cell-*.json files)"
            )
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"corrupt checkpoint manifest {path}: {error}"
            ) from error
        if not isinstance(data, dict):
            raise CheckpointError(f"checkpoint manifest {path} is not an object")
        # Version-1 manifests predate the ``version`` field entirely.
        version = data.get("version", 1)
        if version not in SUPPORTED_MANIFEST_VERSIONS:
            raise CheckpointError(
                f"checkpoint manifest {path} has unsupported version "
                f"{version!r}; supported: {list(SUPPORTED_MANIFEST_VERSIONS)}"
            )
        return data

    # -- cells -------------------------------------------------------------

    def cell_path(self, index: int) -> Path:
        """File that holds (or will hold) cell ``index``."""
        return self.directory / f"{_CELL_PREFIX}{index:05d}.json"

    def _write_record(self, index: int, record: Dict[str, Any]) -> None:
        record["sha256"] = _digest(record)
        _atomic_write_json(self.cell_path(index), record)

    def _read_record(self, index: int) -> Optional[Dict[str, Any]]:
        """Load + integrity-check one cell record; ``None`` if absent.

        Raises :class:`CheckpointError` naming the offending path on a
        truncated/garbage file, a digest mismatch, or an index that does
        not match the filename.
        """
        path = self.cell_path(index)
        if not path.is_file():
            return None
        try:
            text = path.read_text()
        except OSError as error:
            raise CheckpointError(
                f"unreadable checkpoint cell {path}: {error}"
            ) from error
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"corrupt checkpoint cell {path}: {error}"
            ) from error
        if not isinstance(record, dict):
            raise CheckpointError(
                f"corrupt checkpoint cell {path}: not an object"
            )
        stored = record.get("sha256")
        if stored is not None and stored != _digest(record):
            raise CheckpointError(
                f"checkpoint cell {path} failed its sha256 integrity check "
                "(silent corruption or torn write)"
            )
        if record.get("index") != index:
            raise CheckpointError(
                f"checkpoint cell {path} claims index {record.get('index')!r}"
            )
        return record

    def save_cell(
        self,
        index: int,
        label: Sequence[Any],
        result: SimulationResult,
    ) -> None:
        """Durably persist one completed cell (with integrity digest)."""
        self._write_record(
            index,
            {"index": index, "label": list(label), "result": result.to_state()},
        )

    def load_cell(self, index: int) -> Optional[SimulationResult]:
        """The stored result for cell ``index``, or ``None`` if absent.

        Strict: raises :class:`CheckpointError` naming the path on any
        corruption.  Use :meth:`load_cell_or_quarantine` on recovery
        paths that should heal instead of crash.
        """
        record = self._read_record(index)
        if record is None:
            return None
        try:
            return SimulationResult.from_state(record["result"])
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"corrupt checkpoint cell {self.cell_path(index)}: {error}"
            ) from error

    def save_payload(self, index: int, label: Sequence[Any], payload: Any) -> None:
        """Durably persist one completed item with an arbitrary JSON payload.

        The generic sibling of :meth:`save_cell` for runners whose work
        items are not single ``SimulationResult`` objects (the deployment
        campaign checkpoints one interference *cluster* — several cells'
        results — per file).
        """
        self._write_record(
            index, {"index": index, "label": list(label), "payload": payload}
        )

    def load_payload(self, index: int) -> Optional[Any]:
        """The stored payload for item ``index``, or ``None`` if absent.

        Strict, like :meth:`load_cell`.
        """
        record = self._read_record(index)
        if record is None:
            return None
        try:
            return record["payload"]
        except KeyError as error:
            raise CheckpointError(
                f"corrupt checkpoint cell {self.cell_path(index)}: {error}"
            ) from error

    # -- quarantine --------------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt cells are moved aside."""
        return self.directory / _QUARANTINE_DIR

    def quarantine_cell(self, index: int, reason: str) -> QuarantinedCell:
        """Move a bad cell file into ``quarantine/`` and record it."""
        source = self.cell_path(index)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / source.name
        suffix = 1
        while target.exists():
            suffix += 1
            target = self.quarantine_dir / f"{source.name}.{suffix}"
        try:
            os.replace(source, target)
        except OSError:  # pragma: no cover - raced removal
            pass
        record = QuarantinedCell(index=index, path=str(target), reason=reason)
        self.quarantined.append(record)
        return record

    def _load_or_quarantine(self, index: int, loader) -> Optional[Any]:
        try:
            return loader(index)
        except CheckpointError as error:
            self.quarantine_cell(index, str(error))
            return None

    def load_cell_or_quarantine(self, index: int) -> Optional[SimulationResult]:
        """Like :meth:`load_cell`, but corrupt cells are quarantined and
        reported as ``None`` (= recompute) instead of raising."""
        return self._load_or_quarantine(index, self.load_cell)

    def load_payload_or_quarantine(self, index: int) -> Optional[Any]:
        """Like :meth:`load_payload`, but quarantines instead of raising."""
        return self._load_or_quarantine(index, self.load_payload)

    def quarantined_files(self) -> List[Path]:
        """Every file ever moved into this directory's quarantine."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(
            path for path in self.quarantine_dir.iterdir() if path.is_file()
        )

    def completed(self) -> Set[int]:
        """Indices of every cell file present in the directory."""
        indices: Set[int] = set()
        for path in self.directory.glob(f"{_CELL_PREFIX}*.json"):
            stem = path.stem[len(_CELL_PREFIX):]
            if stem.isdigit():
                indices.add(int(stem))
        return indices
