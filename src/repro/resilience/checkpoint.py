"""Atomic per-cell checkpointing for experiment grids and sweeps.

Layout of a checkpoint directory::

    manifest.json        what is being run: kind (grid/sweep), the full
                         spec dict(s), seeds/parameters, and the ordered
                         cell labels — enough for ``repro resume`` to
                         finish the run with no other inputs
    cell-00000.json      one completed cell: its label plus the full
                         lossless SimulationResult state
    cell-00001.json      ...

Every write is atomic (temp file + ``os.replace`` in the same
directory), so a kill mid-write never leaves a truncated cell: the cell
is either fully present or absent, and a resumed run recomputes exactly
the absent cells.  Results round-trip bit-exactly — Python's shortest
``repr`` float serialization is lossless — which is what the
resume-equals-fresh regression test pins down.

Re-running against an existing directory validates the manifest first: a
different spec, seed list, or cell ordering raises
:class:`~repro.errors.CheckpointError` rather than silently mixing
results from two different experiments.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Set

from repro.errors import CheckpointError
from repro.sim.results import SimulationResult

__all__ = ["CheckpointStore"]

_MANIFEST = "manifest.json"
_CELL_PREFIX = "cell-"


def _atomic_write_json(path: Path, payload: Any) -> None:
    """Write JSON so readers see the old file or the new one, never half."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


def _normalize(payload: Any) -> Any:
    """Round ``payload`` through JSON so tuples/ints compare canonically."""
    return json.loads(json.dumps(payload))


class CheckpointStore:
    """One checkpoint directory: a manifest plus atomic cell files."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Location of this store's ``manifest.json``."""
        return self.directory / _MANIFEST

    def initialize(self, manifest: Mapping[str, Any]) -> Dict[str, Any]:
        """Create the directory + manifest, or validate an existing one.

        Raises :class:`CheckpointError` when the directory already holds
        a manifest for a *different* run — checkpoints never mix.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = _normalize({"version": 1, **manifest})
        path = self.manifest_path
        if path.exists():
            stored = self.load_manifest()
            if stored != payload:
                raise CheckpointError(
                    f"checkpoint directory {self.directory} belongs to a "
                    "different run (manifest mismatch); use a fresh "
                    "directory or resume with the original spec"
                )
            return stored
        _atomic_write_json(path, payload)
        return payload

    def load_manifest(self) -> Dict[str, Any]:
        """Read and parse the manifest; raises on absence or corruption."""
        path = self.manifest_path
        if not path.is_file():
            raise CheckpointError(
                f"no checkpoint manifest at {path}; nothing to resume"
            )
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"corrupt checkpoint manifest {path}: {error}"
            ) from error
        if not isinstance(data, dict):
            raise CheckpointError(f"checkpoint manifest {path} is not an object")
        return data

    # -- cells -------------------------------------------------------------

    def cell_path(self, index: int) -> Path:
        """File that holds (or will hold) cell ``index``."""
        return self.directory / f"{_CELL_PREFIX}{index:05d}.json"

    def save_cell(
        self,
        index: int,
        label: Sequence[Any],
        result: SimulationResult,
    ) -> None:
        """Atomically persist one completed cell."""
        _atomic_write_json(
            self.cell_path(index),
            {"index": index, "label": list(label), "result": result.to_state()},
        )

    def load_cell(self, index: int) -> Optional[SimulationResult]:
        """The stored result for cell ``index``, or ``None`` if absent."""
        path = self.cell_path(index)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text())
            return SimulationResult.from_state(data["result"])
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise CheckpointError(
                f"corrupt checkpoint cell {path}: {error}"
            ) from error

    def save_payload(self, index: int, label: Sequence[Any], payload: Any) -> None:
        """Atomically persist one completed item with an arbitrary JSON payload.

        The generic sibling of :meth:`save_cell` for runners whose work
        items are not single ``SimulationResult`` objects (the deployment
        campaign checkpoints one interference *cluster* — several cells'
        results — per file).
        """
        _atomic_write_json(
            self.cell_path(index),
            {"index": index, "label": list(label), "payload": payload},
        )

    def load_payload(self, index: int) -> Optional[Any]:
        """The stored payload for item ``index``, or ``None`` if absent."""
        path = self.cell_path(index)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text())
            return data["payload"]
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise CheckpointError(
                f"corrupt checkpoint cell {path}: {error}"
            ) from error

    def completed(self) -> Set[int]:
        """Indices of every cell file present in the directory."""
        indices: Set[int] = set()
        for path in self.directory.glob(f"{_CELL_PREFIX}*.json"):
            stem = path.stem[len(_CELL_PREFIX):]
            if stem.isdigit():
                indices.add(int(stem))
        return indices
