"""Seeded storage/IO chaos rounds against the checkpoint machinery.

The promise of :mod:`repro.resilience.checkpoint` — kill the process
anywhere, corrupt any cell file, run out of disk mid-campaign, and a
resume still converges to results bit-exact with an uninterrupted run —
is adversarially exercised here instead of merely asserted.

One **chaos round** is a seeded trial against a spec:

1. derive a :class:`ChaosSchedule` from ``SeedSequence([seed, round])``
   — a kill point (which durable cell write the "process" dies before)
   and at most one storage fault (torn write, bit flip, fsync loss,
   ``ENOSPC``, ``EIO``) striking a chosen cell write;
2. run the campaign with a :class:`StorageChaos` interceptor installed
   on the :mod:`repro.resilience.storage` seam, checkpointing and
   streaming telemetry into the round directory; the kill raises
   :class:`SimulatedKill` from inside the durable-write path (after
   which the driver may also tear the telemetry log's final line, the
   residue a real ``SIGKILL`` mid-append leaves);
3. recover with :func:`~repro.experiments.build.resume_checkpoint` and
   **no** interceptor — corrupt cells are quarantined and recomputed,
   absent cells recomputed, intact cells loaded;
4. audit the directory with
   :func:`~repro.resilience.audit.audit_campaign` against a fault-free
   reference run: no lost/duplicate cells, every digest verified,
   every cell payload bit-exact with the reference, telemetry lifecycle
   consistent — plus an in-memory check that the resumed results equal
   the reference results.

Every decision draws from the round's ``SeedSequence``, so a verdict is
reproducible from ``(spec, seed)`` alone — rerunning ``repro chaos``
with the same seed replays the identical fault schedule and verdict.
The engine RNG stream is never touched: chaos perturbs only storage.
"""

from __future__ import annotations

import errno
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ChaosError
from repro.resilience.audit import audit_campaign
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.storage import StorageInterceptor, use_storage_interceptor

__all__ = [
    "STORAGE_FAULT_KINDS",
    "ChaosRound",
    "ChaosSchedule",
    "ChaosVerdict",
    "SimulatedKill",
    "StorageChaos",
    "derive_schedule",
    "run_chaos",
]

#: Storage fault kinds a schedule can strike one cell write with.
STORAGE_FAULT_KINDS = (
    "torn-write",   # a prefix of the record lands on disk (non-atomic write)
    "bit-flip",     # the write completes, then one stored byte is flipped
    "fsync-loss",   # the write "succeeds" but nothing reaches the disk
    "enospc",       # the write raises OSError(ENOSPC) — disk full
    "eio",          # the write raises OSError(EIO) — media error
)


class SimulatedKill(BaseException):
    """Raised from inside a durable write to emulate SIGKILL at that point.

    Derives from ``BaseException`` so no library-level ``except
    Exception`` recovery path can accidentally swallow the "process
    death" — only the chaos driver catches it.
    """


@dataclass(frozen=True)
class ChaosSchedule:
    """One round's seeded fault plan, reproducible from ``(seed, round)``.

    ``kill_after_writes = k`` kills the run immediately before its
    ``k``-th durable cell write (0 = before any cell lands); ``None``
    lets the run complete.  ``fault_kind``/``fault_op`` strike the
    ``fault_op``-th cell write with one storage fault (``None`` = clean
    round).  ``tear_telemetry`` truncates the telemetry log's final line
    at the kill point — the residue of dying mid-append.
    """

    round_index: int
    kill_after_writes: Optional[int] = None
    fault_kind: Optional[str] = None
    fault_op: int = 0
    tear_telemetry: bool = False

    def __post_init__(self) -> None:
        if self.fault_kind is not None and self.fault_kind not in STORAGE_FAULT_KINDS:
            raise ChaosError(
                f"unknown storage fault kind {self.fault_kind!r}; "
                f"allowed: {list(STORAGE_FAULT_KINDS)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump for the machine-readable verdict report."""
        return {
            "round": self.round_index,
            "kill_after_writes": self.kill_after_writes,
            "fault_kind": self.fault_kind,
            "fault_op": self.fault_op,
            "tear_telemetry": self.tear_telemetry,
        }


def derive_schedule(
    seed: int, round_index: int, num_items: int
) -> ChaosSchedule:
    """The deterministic fault plan for one round.

    All draws come from ``SeedSequence([seed, round_index])``, so the
    schedule depends only on the chaos seed, the round, and the item
    count — never on wall clock, filesystem state, or previous rounds.
    """
    if num_items < 1:
        raise ChaosError(f"need at least one work item, got {num_items}")
    rng = np.random.default_rng(np.random.SeedSequence([seed, round_index]))
    # ~1/(n+1) of rounds complete un-killed; the rest die before write k.
    kill_draw = int(rng.integers(0, num_items + 1))
    kill_after = None if kill_draw == num_items else kill_draw
    # Most rounds carry one storage fault; draw 0 keeps the round clean.
    fault_draw = int(rng.integers(0, len(STORAGE_FAULT_KINDS) + 1))
    fault_kind = (
        None if fault_draw == 0 else STORAGE_FAULT_KINDS[fault_draw - 1]
    )
    fault_op = int(rng.integers(0, num_items))
    tear = bool(rng.integers(0, 2)) and kill_after is not None
    return ChaosSchedule(
        round_index=round_index,
        kill_after_writes=kill_after,
        fault_kind=fault_kind,
        fault_op=fault_op,
        tear_telemetry=tear,
    )


class StorageChaos(StorageInterceptor):
    """A schedule bound to one checkpoint directory's cell writes.

    Counts durable ``cell-*.json`` writes under ``directory`` and, per
    the schedule, raises :class:`SimulatedKill` before write ``k``,
    applies the scheduled storage fault to write ``fault_op``, and logs
    everything it did into ``events`` for the round report.  Writes
    anywhere else (the manifest, other directories, telemetry appends)
    pass through untouched.
    """

    def __init__(self, schedule: ChaosSchedule, directory) -> None:
        self.schedule = schedule
        self.directory = Path(directory)
        self.writes_seen = 0
        self.fault_fired = False
        self.events: List[str] = []
        self._flip_pending: Optional[Path] = None

    def _is_cell_write(self, path: Path) -> bool:
        return path.parent == self.directory and path.name.startswith("cell-")

    def intercept_write(self, path: Path, data: str) -> bool:
        if not self._is_cell_write(path):
            return False
        op = self.writes_seen
        kill_after = self.schedule.kill_after_writes
        if kill_after is not None and op >= kill_after:
            self.events.append(f"kill before cell write {op} ({path.name})")
            raise SimulatedKill(f"simulated kill before write of {path.name}")
        kind = self.schedule.fault_kind
        if kind is not None and not self.fault_fired and op == self.schedule.fault_op:
            self.fault_fired = True
            if kind == "enospc":
                self.events.append(f"ENOSPC on {path.name}")
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            if kind == "eio":
                self.events.append(f"EIO on {path.name}")
                raise OSError(errno.EIO, "injected: I/O error")
            if kind == "torn-write":
                # A prefix lands on the *final* path: what a non-atomic
                # writer (or replace-without-data-fsync) leaves behind.
                torn = data[: max(1, len(data) // 3)]
                path.write_text(torn, encoding="utf-8")
                self.writes_seen += 1
                self.events.append(f"torn write of {path.name}")
                return True
            if kind == "fsync-loss":
                # The writer believes the cell landed; the disk disagrees.
                self.writes_seen += 1
                self.events.append(f"fsync loss of {path.name}")
                return True
            if kind == "bit-flip":
                self._flip_pending = path
        self.writes_seen += 1
        return False

    def post_write(self, path: Path) -> None:
        if self._flip_pending != path:
            return
        self._flip_pending = None
        raw = bytearray(path.read_bytes())
        if raw:
            raw[len(raw) // 2] ^= 0x01
            path.write_bytes(bytes(raw))
        self.events.append(f"bit flip in {path.name}")


def _tear_last_telemetry_line(directory: Path) -> bool:
    """Truncate the telemetry log mid-final-line (kill-during-append)."""
    from repro.obs.telemetry import TELEMETRY_FILENAME

    path = Path(directory) / TELEMETRY_FILENAME
    if not path.is_file():
        return False
    text = path.read_text(encoding="utf-8")
    stripped = text.rstrip("\n")
    if not stripped:
        return False
    last_start = stripped.rfind("\n") + 1
    last_line = stripped[last_start:]
    if len(last_line) < 2:
        return False
    torn = stripped[: last_start + len(last_line) // 2]
    path.write_text(torn, encoding="utf-8")
    return True


@dataclass
class ChaosRound:
    """One round's outcome: what was injected, what recovery did."""

    schedule: ChaosSchedule
    #: "completed", "killed", or "crashed: <error>".
    phase1: str = "completed"
    chaos_events: List[str] = field(default_factory=list)
    quarantined: int = 0
    recomputed: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether recovery restored every invariant this round."""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready, timestamp-free (so verdicts are seed-reproducible)."""
        return {
            "schedule": self.schedule.to_dict(),
            "phase1": self.phase1,
            "chaos_events": list(self.chaos_events),
            "quarantined": self.quarantined,
            "recomputed": self.recomputed,
            "violations": list(self.violations),
            "ok": self.ok,
        }


@dataclass
class ChaosVerdict:
    """The machine-readable outcome of a whole chaos campaign."""

    spec_name: str
    kind: str
    seed: int
    num_items: int
    rounds: List[ChaosRound] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every round passed every auditor invariant."""
        return all(round_.ok for round_ in self.rounds)

    @property
    def rounds_passed(self) -> int:
        return sum(1 for round_ in self.rounds if round_.ok)

    @property
    def rounds_with_quarantine(self) -> int:
        return sum(1 for round_ in self.rounds if round_.quarantined)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready verdict; identical across reruns with one seed."""
        return {
            "spec": self.spec_name,
            "kind": self.kind,
            "seed": self.seed,
            "num_items": self.num_items,
            "rounds_total": len(self.rounds),
            "rounds_passed": self.rounds_passed,
            "rounds_with_quarantine": self.rounds_with_quarantine,
            "ok": self.ok,
            "rounds": [round_.to_dict() for round_ in self.rounds],
        }


class _Target:
    """One spec adapted to the chaos driver: run, resume, snapshot."""

    def __init__(self, spec_data: Dict[str, Any], seeds: Tuple[int, ...]) -> None:
        from repro.deploy.spec import DEPLOYMENT_KIND

        self.is_deployment = (
            isinstance(spec_data, dict)
            and spec_data.get("kind") == DEPLOYMENT_KIND
        )
        self.seeds = seeds
        if self.is_deployment:
            from repro.deploy.model import build_deployment
            from repro.deploy.spec import DeploymentSpec

            self.spec = DeploymentSpec.from_dict(spec_data)
            self.num_items = build_deployment(self.spec).num_clusters
            self.name = self.spec.name
            self.kind = "deploy"
        else:
            from repro.experiments.spec import ExperimentSpec

            self.spec = ExperimentSpec.from_dict(spec_data)
            self.num_items = len(seeds) * len(list(self.spec.scheduler_names))
            self.name = self.spec.name
            self.kind = "grid"

    def run(self, checkpoint_dir, telemetry_dir=None) -> Any:
        if self.is_deployment:
            from repro.deploy.runner import run_campaign

            return run_campaign(
                self.spec, checkpoint_dir=checkpoint_dir,
                telemetry_dir=telemetry_dir,
            )
        from repro.experiments.build import run_experiment_grid

        return run_experiment_grid(
            self.spec, list(self.seeds), checkpoint_dir=checkpoint_dir,
            telemetry_dir=telemetry_dir,
        )

    def resume(self, checkpoint_dir, telemetry_dir=None) -> Any:
        from repro.experiments.build import resume_checkpoint

        _kind, payload = resume_checkpoint(
            checkpoint_dir, telemetry_dir=telemetry_dir
        )
        return payload

    @staticmethod
    def snapshot(payload: Any) -> Any:
        """A plain-data, bit-comparable view of a run's in-memory results.

        Observation payloads are stripped (see
        :func:`repro.resilience.audit.comparable_state`): they carry
        wall-clock data that legitimately differs between runs.
        """
        from repro.deploy.runner import CampaignResult
        from repro.resilience.audit import comparable_state

        if isinstance(payload, CampaignResult):
            return {
                cell_id: comparable_state(result.to_state())
                for cell_id, result in sorted(payload.cell_results.items())
            }
        return [
            (
                name,
                seed,
                comparable_state(result.to_state())
                if result is not None
                else None,
            )
            for name, seed, result in payload
        ]


def run_chaos(
    spec_data: Dict[str, Any],
    rounds: int,
    seed: int,
    workdir,
    seeds: Tuple[int, ...] = (0, 1),
) -> ChaosVerdict:
    """Run ``rounds`` seeded chaos rounds against a spec; see module doc.

    ``spec_data`` is a parsed spec dict — an ``ExperimentSpec`` (run as a
    ``(scheduler, seed)`` grid over ``seeds``) or a ``DeploymentSpec``
    (run as a sharded campaign).  ``workdir`` receives one
    ``round-NNN/`` checkpoint+telemetry directory per round plus a
    fault-free ``reference/`` the auditor compares against.
    """
    if rounds < 1:
        raise ChaosError(f"need at least one round, got {rounds}")
    target = _Target(spec_data, tuple(seeds))
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    reference_dir = workdir / "reference"
    reference_payload = target.run(reference_dir)
    reference_snapshot = _Target.snapshot(reference_payload)

    verdict = ChaosVerdict(
        spec_name=target.name, kind=target.kind, seed=seed,
        num_items=target.num_items,
    )
    for round_index in range(rounds):
        schedule = derive_schedule(seed, round_index, target.num_items)
        round_dir = workdir / f"round-{round_index:03d}"
        chaos = StorageChaos(schedule, round_dir)
        outcome = ChaosRound(schedule=schedule)
        killed = False
        with use_storage_interceptor(chaos):
            try:
                target.run(round_dir, telemetry_dir=round_dir)
            except SimulatedKill:
                killed = True
                outcome.phase1 = "killed"
            except OSError as error:
                # An injected disk fault escaped to the campaign driver —
                # the run dies mid-flight, like a real full disk would
                # kill it.  Recovery happens on resume, space permitting.
                outcome.phase1 = f"crashed: {error}"
        outcome.chaos_events = list(chaos.events)
        if killed and schedule.tear_telemetry:
            if _tear_last_telemetry_line(round_dir):
                outcome.chaos_events.append("tore final telemetry line")

        # Recovery, chaos off: quarantine corruption, recompute the rest.
        store = CheckpointStore(round_dir)
        before = store.completed()
        resumed_payload = target.resume(round_dir, telemetry_dir=round_dir)
        outcome.quarantined = len(CheckpointStore(round_dir).quarantined_files())
        outcome.recomputed = max(0, target.num_items - len(before)) + (
            outcome.quarantined
        )

        report = audit_campaign(
            round_dir, reference_dir=reference_dir, telemetry_dir=round_dir
        )
        outcome.violations = list(report.violations)
        if _Target.snapshot(resumed_payload) != reference_snapshot:
            outcome.violations.append(
                "resumed in-memory results differ from the fault-free "
                "reference run"
            )
        verdict.rounds.append(outcome)
    return verdict


def write_verdict(verdict: ChaosVerdict, path) -> Path:
    """Write the machine-readable verdict report as JSON; returns path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(verdict.to_dict(), indent=2) + "\n")
    return path
