"""Deprecated alias of :mod:`repro.obs.timing` (the old module path)."""

import warnings

from repro.obs.timing import PhaseTimer, Stopwatch

__all__ = ["PhaseTimer", "Stopwatch"]

warnings.warn(
    "repro.perf.stopwatch moved to repro.obs.timing",
    DeprecationWarning,
    stacklevel=2,
)
