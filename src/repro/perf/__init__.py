"""Performance instrumentation: stopwatches and engine phase timing."""

from repro.perf.stopwatch import PhaseTimer, Stopwatch

__all__ = ["PhaseTimer", "Stopwatch"]
