"""Deprecated: performance tools moved to :mod:`repro.obs`.

``repro.perf`` folded into the observability subsystem; ``Stopwatch`` and
``PhaseTimer`` now live in :mod:`repro.obs.timing` (and
``PhaseTimerHooks`` is re-exported from :mod:`repro.obs`).  This shim
keeps old imports working, with a :class:`DeprecationWarning` on import.
"""

import warnings

from repro.obs.timing import PhaseTimer, Stopwatch

__all__ = ["PhaseTimer", "Stopwatch"]

warnings.warn(
    "repro.perf is deprecated; import PhaseTimer/Stopwatch from repro.obs",
    DeprecationWarning,
    stacklevel=2,
)
