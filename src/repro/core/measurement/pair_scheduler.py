"""Measurement-phase scheduling (Algorithm 1 of the paper).

The goal: collect ``T`` joint samples of every client pair while scheduling
at most ``K`` distinct clients per subframe, in as few subframes as
possible.  Each subframe greedily picks the ``K`` clients whose induced
pairs are the least-sampled so far, using a logarithmic balance term so all
pairs progress roughly together (usable mid-phase).

The lower bound is ``F_min = ceil(C(N,2) / C(K,2) * T)`` subframes — the
paper's headline: constant in the MIMO order ``M`` and ``O((N/K)^2)``,
versus the exponential cost of measuring higher-order tuples directly.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import MeasurementError

__all__ = [
    "minimum_subframes",
    "tuple_measurement_subframes",
    "MeasurementScheduler",
]


def minimum_subframes(num_ues: int, distinct_per_subframe: int, samples: int) -> int:
    """``F_min``: lower bound on pair-wise measurement subframes."""
    if num_ues < 2:
        return 0
    k = min(distinct_per_subframe, num_ues)
    if k < 2:
        raise MeasurementError(
            f"need at least 2 schedulable clients per subframe, got {k}"
        )
    total_pairs = math.comb(num_ues, 2)
    pairs_per_subframe = math.comb(k, 2)
    return math.ceil(total_pairs / pairs_per_subframe * samples)


def tuple_measurement_subframes(
    num_ues: int, tuple_size: int, distinct_per_subframe: int, samples: int
) -> int:
    """Subframes to measure all ``k``-client joint tuples directly.

    The exponential alternative BLU avoids: ``ceil(C(N,k)/C(K,k) * T)``
    (infeasible outright when ``k > K``).  For the paper's example —
    N=20, k=6, K=8 — this is ≈ 1384·T subframes versus < 7·T pair-wise.
    """
    if tuple_size > distinct_per_subframe:
        raise MeasurementError(
            f"cannot measure {tuple_size}-tuples with only "
            f"{distinct_per_subframe} distinct clients per subframe"
        )
    total = math.comb(num_ues, tuple_size)
    per_subframe = math.comb(distinct_per_subframe, tuple_size)
    return math.ceil(total / per_subframe * samples)


class MeasurementScheduler:
    """Greedy pair-balancing scheduler for the measurement phase.

    Note on Algorithm 1's line 7: as printed, the log-ratio
    ``log((1+c_j)/(1+T))`` is negative and *increasing* in the count, so an
    argmax would favour well-sampled pairs — contradicting the stated intent
    ("K clients, whose resulting pair-wise distributions have the least
    number of measurements thus far").  We use the intended orientation,
    ``log((1+T)/(1+c_j))``, clamped at zero for pairs already at target.
    """

    def __init__(
        self,
        num_ues: int,
        distinct_per_subframe: int,
        samples: int,
        pairs: "Optional[Iterable[Tuple[int, int]]]" = None,
    ) -> None:
        if num_ues < 2:
            raise MeasurementError(f"need at least two UEs: {num_ues}")
        if samples < 1:
            raise MeasurementError(f"need at least one sample per pair: {samples}")
        self.num_ues = num_ues
        self.k = min(distinct_per_subframe, num_ues)
        if self.k < 2:
            raise MeasurementError(
                "need at least 2 schedulable clients per subframe"
            )
        self.samples = samples
        #: ``pairs`` restricts the campaign to a sub-schedule: only the
        #: listed pairs are tracked and balanced (online adaptation's
        #: targeted re-measurement after drift).  None = the full campaign.
        self._restricted = pairs is not None
        if pairs is None:
            tracked = list(combinations(range(num_ues), 2))
        else:
            tracked = []
            seen = set()
            for raw in pairs:
                pair = tuple(sorted(int(u) for u in raw))
                if len(pair) != 2 or pair[0] == pair[1]:
                    raise MeasurementError(f"not a client pair: {raw}")
                if not (0 <= pair[0] and pair[1] < num_ues):
                    raise MeasurementError(f"pair outside the cell: {raw}")
                if pair not in seen:
                    seen.add(pair)
                    tracked.append(pair)
            if not tracked:
                raise MeasurementError("restricted pair set is empty")
        self.counts: Dict[Tuple[int, int], int] = {pair: 0 for pair in tracked}
        self.subframes_used = 0

    @property
    def finished(self) -> bool:
        return all(count >= self.samples for count in self.counts.values())

    def _pair_value(self, count: int) -> float:
        clamped = min(count, self.samples)
        return math.log((1 + self.samples) / (1 + clamped))

    def _gain(self, selected: Sequence[int], candidate: int) -> float:
        total = 0.0
        for other in selected:
            count = self.counts.get(tuple(sorted((candidate, other))))
            if count is not None:  # untracked pairs carry no gain
                total += self._pair_value(count)
        return total

    def next_schedule(self) -> List[int]:
        """Greedily pick the K clients for the next measurement subframe."""
        selected: List[int] = []
        remaining = set(range(self.num_ues))
        # Seed with the least-sampled pair so progress is guaranteed.
        worst_pair = min(self.counts, key=lambda p: (self.counts[p], p))
        for ue in worst_pair:
            selected.append(ue)
            remaining.discard(ue)
        while len(selected) < self.k and remaining:
            best = max(
                sorted(remaining),
                key=lambda ue: self._gain(selected, ue),
            )
            selected.append(best)
            remaining.discard(best)
        return sorted(selected)

    def record(self, scheduled: Sequence[int]) -> None:
        """Account a subframe's schedule into the pair counts."""
        distinct = sorted(set(scheduled))
        for pair in combinations(distinct, 2):
            if pair not in self.counts:
                if self._restricted:
                    continue  # pairs outside the sub-schedule are not tracked
                raise MeasurementError(f"unknown pair {pair}")
            self.counts[pair] += 1
        self.subframes_used += 1

    def plan(self, max_subframes: int | None = None) -> List[List[int]]:
        """Produce the full measurement plan (``t_max`` subframes).

        Runs the greedy loop to completion and returns the schedule of each
        subframe; ``self.subframes_used`` afterwards is ``t_max``.
        """
        bound = max_subframes if max_subframes is not None else 50 * max(
            minimum_subframes(self.num_ues, self.k, self.samples), 1
        )
        schedules: List[List[int]] = []
        while not self.finished:
            if len(schedules) >= bound:
                raise MeasurementError(
                    f"measurement plan exceeded {bound} subframes; "
                    "scheduler failed to make progress"
                )
            schedule = self.next_schedule()
            self.record(schedule)
            schedules.append(schedule)
        return schedules
