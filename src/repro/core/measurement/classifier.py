"""Turning PHY receptions into access observations (Section 3.3).

The estimator needs to know, for every scheduled client, whether it *used*
its grant.  The eNB cannot ask the client — it infers from pilots:

* no pilot on any granted RB  -> the client's CCA failed: **blocked**
  (hidden-terminal loss, counts as "did not access");
* pilot present -> the client accessed the channel, regardless of whether
  the data decoded (collision and fading are reception losses, not access
  losses, and must not contaminate the access statistics).

This module also exposes the loss-cause breakdown used to sanity-check the
pilot discrimination logic (collision vs fading vs blocking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.lte.enb import SubframeReception
from repro.lte.phy import GrantOutcome
from repro.lte.resources import SubframeSchedule

__all__ = ["AccessObservation", "classify_subframe"]


@dataclass(frozen=True)
class AccessObservation:
    """Per-subframe access sample extracted from eNB-side receptions."""

    subframe: int
    scheduled: FrozenSet[int]
    accessed: FrozenSet[int]
    blocked: FrozenSet[int]
    collided: FrozenSet[int]
    faded: FrozenSet[int]
    decoded: FrozenSet[int]

    @property
    def access_fraction(self) -> float:
        if not self.scheduled:
            return 0.0
        return len(self.accessed) / len(self.scheduled)


def classify_subframe(
    schedule: SubframeSchedule, reception: SubframeReception
) -> AccessObservation:
    """Classify every scheduled UE of a subframe by its pilot evidence.

    A UE scheduled on several RBs accessed the channel iff any of its RBs
    shows a pilot (CCA is per-subframe, so in practice all of them do).
    The decoded/collided/faded breakdown is per-UE: a UE is "decoded" if at
    least one of its grants delivered data.
    """
    scheduled: Set[int] = set(schedule.scheduled_ues())
    outcome_by_ue: Dict[int, Set[GrantOutcome]] = {ue: set() for ue in scheduled}
    for rb_reception in reception.rb_receptions.values():
        for ue, outcome in rb_reception.outcomes.items():
            outcome_by_ue.setdefault(ue, set()).add(outcome)

    accessed: Set[int] = set()
    blocked: Set[int] = set()
    collided: Set[int] = set()
    faded: Set[int] = set()
    decoded: Set[int] = set()
    for ue, outcomes in outcome_by_ue.items():
        if outcomes and outcomes != {GrantOutcome.BLOCKED}:
            accessed.add(ue)
        else:
            blocked.add(ue)
        if GrantOutcome.DECODED in outcomes:
            decoded.add(ue)
        elif GrantOutcome.COLLIDED in outcomes:
            collided.add(ue)
        elif GrantOutcome.FADED in outcomes:
            faded.add(ue)

    return AccessObservation(
        subframe=reception.subframe,
        scheduled=frozenset(scheduled),
        accessed=frozenset(accessed),
        blocked=frozenset(blocked),
        collided=frozenset(collided),
        faded=frozenset(faded),
        decoded=frozenset(decoded),
    )
