"""Per-channel access measurement: one estimator per channel of the plan.

Measurement samples are only meaningful relative to the channel the
grant was issued on — a UE that cleared CCA on channel 2 says nothing
about the hidden terminals of channel 0.  The channelized estimator
routes every observed subframe to the estimator of the channel it was
scheduled on, so each channel accumulates its own ``p(i)``/``p(i, j)``
statistics and can be solved into its own blueprint.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.measurement.estimator import AccessEstimator
from repro.errors import MeasurementError

__all__ = ["ChannelizedAccessEstimator"]


class ChannelizedAccessEstimator:
    """A family of :class:`AccessEstimator` instances, one per channel."""

    def __init__(
        self,
        num_ues: int,
        num_channels: int,
        track_triplets: bool = False,
        decay: float = 1.0,
    ) -> None:
        if num_channels < 1:
            raise MeasurementError(
                f"need at least one channel: {num_channels}"
            )
        self.num_ues = num_ues
        self.num_channels = num_channels
        self._estimators: Dict[int, AccessEstimator] = {
            channel: AccessEstimator(
                num_ues, track_triplets=track_triplets, decay=decay
            )
            for channel in range(num_channels)
        }

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self.num_channels:
            raise MeasurementError(
                f"unknown channel index {channel} "
                f"(plan has {self.num_channels})"
            )

    def estimator(self, channel: int) -> AccessEstimator:
        """The underlying single-channel estimator (e.g. for the solver)."""
        self._check_channel(channel)
        return self._estimators[channel]

    def record_subframe(
        self,
        channel: int,
        scheduled: Iterable[int],
        accessed: Iterable[int],
    ) -> None:
        """Record one uplink subframe observed on ``channel``."""
        self._check_channel(channel)
        self._estimators[channel].record_subframe(scheduled, accessed)

    def subframes_observed(self, channel: int) -> int:
        self._check_channel(channel)
        return self._estimators[channel].subframes_observed

    def total_subframes_observed(self) -> int:
        return sum(
            estimator.subframes_observed
            for estimator in self._estimators.values()
        )
