"""Measurement subsystem: pair scheduling, estimation, loss classification."""

from repro.core.measurement.channels import ChannelizedAccessEstimator
from repro.core.measurement.classifier import AccessObservation, classify_subframe
from repro.core.measurement.estimator import AccessEstimator
from repro.core.measurement.pair_scheduler import (
    MeasurementScheduler,
    minimum_subframes,
    tuple_measurement_subframes,
)

__all__ = [
    "AccessEstimator",
    "AccessObservation",
    "ChannelizedAccessEstimator",
    "MeasurementScheduler",
    "classify_subframe",
    "minimum_subframes",
    "tuple_measurement_subframes",
]
