"""Access-distribution estimation from observed uplink subframes.

Every uplink subframe in which a set of clients was scheduled is one joint
sample: each scheduled client either used its grant (CCA clear) or did not.
The estimator accumulates

* per client: schedule count ``n_i`` and clear count;
* per pair scheduled together: joint count ``n_ij`` and both-clear count;

and exposes the estimated ``p(i)``, ``p(i, j)`` together with noise-aware
tolerances for the inference solver (delta-method standard errors on the
log-transformed constraints).

Both measurement-phase subframes and regular speculative-phase subframes
feed the same estimator — the paper notes the operational phase implicitly
keeps measuring.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.blueprint.transform import (
    TransformedMeasurements,
    transform_individual,
    transform_pairwise,
    transform_triplet,
)
from repro.errors import MeasurementError

__all__ = ["AccessEstimator"]


class AccessEstimator:
    """Online estimator of individual and pair-wise access distributions."""

    def __init__(
        self,
        num_ues: int,
        track_triplets: bool = False,
        decay: float = 1.0,
    ) -> None:
        """Args:
            num_ues: clients in the cell.
            track_triplets: also accumulate 3-client joint counts —
                Section 3.5's extra constraints for skewed topologies
                (costs ``C(K,3)`` counter updates per subframe).
            decay: exponential forgetting factor applied to all counts each
                observed subframe.  ``1.0`` (default) accumulates forever —
                the paper's cumulative model.  Values just below 1 give an
                effective window of ``1/(1-decay)`` subframes so that
                re-inference tracks topology dynamics (Section 3.5's
                stationarity regime) instead of averaging across regimes.
        """
        if num_ues < 1:
            raise MeasurementError(f"need at least one UE: {num_ues}")
        if not 0.0 < decay <= 1.0:
            raise MeasurementError(f"decay must be in (0, 1]: {decay}")
        self.num_ues = num_ues
        self.decay = float(decay)
        self.track_triplets = bool(track_triplets)
        self._n: Dict[int, float] = {i: 0.0 for i in range(num_ues)}
        self._clear: Dict[int, float] = {i: 0.0 for i in range(num_ues)}
        self._n_pair: Dict[Tuple[int, int], float] = {
            pair: 0.0 for pair in combinations(range(num_ues), 2)
        }
        self._clear_pair: Dict[Tuple[int, int], float] = {
            pair: 0.0 for pair in combinations(range(num_ues), 2)
        }
        self._n_triple: Dict[Tuple[int, int, int], float] = {}
        self._clear_triple: Dict[Tuple[int, int, int], float] = {}
        self.subframes_observed = 0

    # -- recording -------------------------------------------------------

    def record_subframe(self, scheduled: Iterable[int], accessed: Iterable[int]) -> None:
        """Record one subframe: who was scheduled, who used the grant."""
        scheduled_set = set(scheduled)
        accessed_set = set(accessed)
        if not accessed_set <= scheduled_set:
            raise MeasurementError(
                f"accessed UEs {sorted(accessed_set - scheduled_set)} "
                "were never scheduled"
            )
        if self.decay < 1.0:
            self._apply_decay()
        for ue in scheduled_set:
            if not 0 <= ue < self.num_ues:
                raise MeasurementError(f"unknown UE id {ue}")
            self._n[ue] += 1
            if ue in accessed_set:
                self._clear[ue] += 1
        for pair in combinations(sorted(scheduled_set), 2):
            self._n_pair[pair] += 1
            if pair[0] in accessed_set and pair[1] in accessed_set:
                self._clear_pair[pair] += 1
        if self.track_triplets:
            for triple in combinations(sorted(scheduled_set), 3):
                self._n_triple[triple] = self._n_triple.get(triple, 0) + 1
                if all(u in accessed_set for u in triple):
                    self._clear_triple[triple] = (
                        self._clear_triple.get(triple, 0) + 1
                    )
        self.subframes_observed += 1

    def _apply_decay(self) -> None:
        for store in (self._n, self._clear, self._n_pair, self._clear_pair,
                      self._n_triple, self._clear_triple):
            for key in store:
                store[key] *= self.decay

    def reset_ues(self, ues: Iterable[int]) -> None:
        """Discard all statistics involving the given clients.

        Used by online adaptation when drift is detected: the flagged
        clients' pre-change samples describe a world that no longer exists,
        so their individual counts and every pair/triple touching them are
        zeroed — statistics among unaffected clients are kept, which is
        what makes targeted re-measurement sufficient.
        """
        affected = set(int(u) for u in ues)
        bad = [u for u in affected if not 0 <= u < self.num_ues]
        if bad:
            raise MeasurementError(f"unknown UE ids {sorted(bad)}")
        for ue in affected:
            self._n[ue] = 0.0
            self._clear[ue] = 0.0
        for pair in self._n_pair:
            if affected & set(pair):
                self._n_pair[pair] = 0.0
                self._clear_pair[pair] = 0.0
        for triple in list(self._n_triple):
            if affected & set(triple):
                self._n_triple[triple] = 0.0
                self._clear_triple[triple] = 0.0

    # -- point estimates ----------------------------------------------------

    def _floor(self, count: float) -> float:
        # Half a count: keeps estimates off exact 0/1 where logs blow up.
        return 0.5 / max(count, 1)

    def individual_samples(self, ue: int) -> float:
        """Effective sample count (decayed weight) for one client."""
        return self._n[ue]

    def pair_samples(self, ue_a: int, ue_b: int) -> float:
        """Effective joint sample count for one pair."""
        return self._n_pair[tuple(sorted((ue_a, ue_b)))]

    def p_individual(self, ue: int) -> float:
        n = self._n[ue]
        if n == 0:
            raise MeasurementError(f"no samples for UE {ue}")
        floor = self._floor(n)
        return min(max(self._clear[ue] / n, floor), 1.0)

    def p_pairwise(self, ue_a: int, ue_b: int) -> float:
        pair = tuple(sorted((ue_a, ue_b)))
        n = self._n_pair[pair]
        if n == 0:
            raise MeasurementError(f"no joint samples for pair {pair}")
        floor = self._floor(n)
        return min(max(self._clear_pair[pair] / n, floor), 1.0)

    def triple_samples(self, i: int, j: int, k: int) -> float:
        return self._n_triple.get(tuple(sorted((i, j, k))), 0.0)

    def p_triplet(self, i: int, j: int, k: int) -> float:
        triple = tuple(sorted((i, j, k)))
        n = self._n_triple.get(triple, 0)
        if n == 0:
            raise MeasurementError(f"no joint samples for triple {triple}")
        floor = self._floor(n)
        return min(max(self._clear_triple.get(triple, 0) / n, floor), 1.0)

    def complete(self, samples: int) -> bool:
        """True when every pair has at least ``samples`` joint observations."""
        return all(count >= samples for count in self._n_pair.values())

    def min_pair_samples(self) -> float:
        return min(self._n_pair.values()) if self._n_pair else 0.0

    # -- transformed output ----------------------------------------------------

    def _log_se(self, p: float, n: float) -> float:
        """Delta-method standard error of ``log p_hat``."""
        return math.sqrt((1.0 - p) / (p * max(n, 1)))

    def to_transformed(
        self,
        z: float = 3.0,
        include_triplets: bool = False,
        min_triple_samples: int = 50,
    ) -> TransformedMeasurements:
        """Build the inference target with ``z``-sigma tolerances.

        The tolerance of each transformed constraint is ``z`` times the
        delta-method standard error of its estimate; terminals whose effect
        is below the noise floor are (correctly) not inferable.

        With ``include_triplets`` (and ``track_triplets`` at construction),
        every observed triple with at least ``min_triple_samples`` joint
        samples contributes a Section 3.5 constraint.
        """
        individual: Dict[int, float] = {}
        pairwise: Dict[Tuple[int, int], float] = {}
        tol_individual: Dict[int, float] = {}
        tol_pairwise: Dict[Tuple[int, int], float] = {}
        for ue in range(self.num_ues):
            p = self.p_individual(ue)
            individual[ue] = transform_individual(p)
            tol_individual[ue] = z * self._log_se(p, self._n[ue])
        for pair in combinations(range(self.num_ues), 2):
            i, j = pair
            p_i = self.p_individual(i)
            p_j = self.p_individual(j)
            p_ij = self.p_pairwise(i, j)
            pairwise[pair] = transform_pairwise(p_i, p_j, p_ij)
            variance = (
                self._log_se(p_ij, self._n_pair[pair]) ** 2
                + self._log_se(p_i, self._n[i]) ** 2
                + self._log_se(p_j, self._n[j]) ** 2
            )
            tol_pairwise[pair] = z * math.sqrt(variance)
        triplet: Dict[Tuple[int, int, int], float] = {}
        tol_triplet: Dict[Tuple[int, int, int], float] = {}
        if include_triplets:
            if not self.track_triplets:
                raise MeasurementError(
                    "estimator was built without track_triplets=True"
                )
            for triple, n in self._n_triple.items():
                if n < min_triple_samples:
                    continue
                i, j, k = triple
                p_ijk = self.p_triplet(i, j, k)
                triplet[triple] = transform_triplet(
                    self.p_individual(i),
                    self.p_individual(j),
                    self.p_individual(k),
                    self.p_pairwise(i, j),
                    self.p_pairwise(i, k),
                    self.p_pairwise(j, k),
                    p_ijk,
                )
                # Dominant noise source: the triple count itself, plus the
                # six lower-order estimates it is combined with.
                variance = self._log_se(p_ijk, n) ** 2
                for a, b in ((i, j), (i, k), (j, k)):
                    variance += (
                        self._log_se(
                            self.p_pairwise(a, b),
                            self._n_pair[tuple(sorted((a, b)))],
                        )
                        ** 2
                    )
                for u in triple:
                    variance += (
                        self._log_se(self.p_individual(u), self._n[u]) ** 2
                    )
                tol_triplet[triple] = z * math.sqrt(variance)
        return TransformedMeasurements(
            num_ues=self.num_ues,
            individual=individual,
            pairwise=pairwise,
            individual_tolerance=tol_individual,
            pairwise_tolerance=tol_pairwise,
            triplet=triplet,
            triplet_tolerance=tol_triplet,
        )
