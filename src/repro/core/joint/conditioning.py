"""Higher-order joint access distributions via topology conditioning.

Section 3.6 of the paper: once the interference blueprint ``(h, Q, Z)`` is
known, any joint access probability ``P(U clear, V blocked)`` follows from
*individual* access probabilities evaluated on recursively *conditioned*
topologies.  Conditioning on a client ``u`` being clear removes every hidden
terminal attached to ``u`` (they must all have been idle), which raises the
access probabilities of clients sharing those terminals (Fig. 8).

Two recursions (Eqns. 7–9):

* ``P(U_n) = P(u_n) * P_{u_n}(u_{n-1}) * P_{u_n,u_{n-1}}(u_{n-2}) ...``
* ``P_{U}(V̄_m) = P_U(V̄_{m-1}) - P_U(v_m) * P_{U, v_m}(V̄_{m-1})``

The second line is the paper's Eqn. 9 with the division cancelled, which
also remains valid when ``P_U(V̄_{m-1})`` is zero.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError
from repro.topology.graph import InterferenceTopology

__all__ = [
    "prob_all_clear",
    "prob_all_blocked",
    "joint_access_probability",
]


def prob_all_clear(
    topology: InterferenceTopology, ues: Sequence[int]
) -> float:
    """``P(U_n)`` by recursive conditioning (Eqn. 8).

    ``P(u_1..u_n) = P(u_n) * P_{u_n}(u_1..u_{n-1})`` where the conditioned
    term is evaluated on the topology with ``u_n``'s terminals removed.
    """
    ues = list(dict.fromkeys(ues))
    if not ues:
        return 1.0
    u_n = ues[-1]
    conditioned = topology.condition_on_clear(u_n)
    return topology.access_probability(u_n) * prob_all_clear(conditioned, ues[:-1])


def prob_all_blocked(
    topology: InterferenceTopology, ues: Sequence[int]
) -> float:
    """``P(V̄_m)`` by the Eqn. 9 recursion on the given (conditioned) topology."""
    ues = list(dict.fromkeys(ues))
    if not ues:
        return 1.0
    v_m = ues[-1]
    rest = ues[:-1]
    p_v = topology.access_probability(v_m)
    blocked_rest = prob_all_blocked(topology, rest)
    blocked_rest_given_v = prob_all_blocked(topology.condition_on_clear(v_m), rest)
    value = blocked_rest - p_v * blocked_rest_given_v
    # Floating-point cancellation can leave a tiny negative residue.
    return max(value, 0.0)


def joint_access_probability(
    topology: InterferenceTopology,
    clear_ues: Sequence[int],
    blocked_ues: Sequence[int] = (),
) -> float:
    """``P(U clear, V blocked)`` via Bayes + conditioning (Eqn. 7).

    ``P(U, V̄) = P(V̄ | U) * P(U)``, with ``P(V̄ | U)`` evaluated as
    ``P(V̄)`` on the topology conditioned on every client of ``U``.
    """
    clear = list(dict.fromkeys(clear_ues))
    blocked = list(dict.fromkeys(blocked_ues))
    overlap = set(clear) & set(blocked)
    if overlap:
        raise TopologyError(
            f"UEs cannot be both clear and blocked: {sorted(overlap)}"
        )
    p_clear = prob_all_clear(topology, clear)
    if p_clear == 0.0:
        return 0.0
    conditioned = topology
    for u in clear:
        conditioned = conditioned.condition_on_clear(u)
    return p_clear * prob_all_blocked(conditioned, blocked)
