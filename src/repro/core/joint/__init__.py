"""Higher-order joint access distributions (Section 3.6)."""

from repro.core.joint.channels import (
    channel_access_matrix,
    channel_busy_vector,
    per_channel_providers,
)
from repro.core.joint.conditioning import (
    joint_access_probability,
    prob_all_blocked,
    prob_all_clear,
)
from repro.core.joint.provider import (
    EmpiricalJointProvider,
    JointAccessProvider,
    TopologyJointProvider,
)

__all__ = [
    "EmpiricalJointProvider",
    "JointAccessProvider",
    "TopologyJointProvider",
    "channel_access_matrix",
    "channel_busy_vector",
    "joint_access_probability",
    "per_channel_providers",
    "prob_all_blocked",
    "prob_all_clear",
]
