"""Joint-access providers: the probability oracle behind the schedulers.

A provider answers, for any small client group ``G``:

* ``access_probability(i)`` — the marginal ``p(i)``;
* ``pattern_distribution(G)`` — the full joint pmf over which subset of
  ``G`` clears CCA in a subframe;
* ``pattern_table(G)`` — the derived table ``π[(i, s)] = P(i clear and
  exactly s members of G clear)`` that the speculative scheduler's expected
  utility (Eqn. 4) consumes directly;
* ``joint_probability(U, V)`` — ``P(U clear, V blocked)``.

Two implementations:

* :class:`TopologyJointProvider` — exact, from an (inferred or ground-truth)
  :class:`~repro.topology.graph.InterferenceTopology`.  The pmf over clear
  patterns is built by convolving the independent hidden terminals, grouped
  by their footprint inside ``G``; cost is linear in the number of attached
  terminals and in the number of *realizable* patterns, so group sizes up to
  ``2M`` are cheap.  Results are memoized: the scheduler re-queries the same
  groups every TxOP while only rates change.
* :class:`EmpiricalJointProvider` — counts patterns in a recorded clear/
  blocked matrix, the "directly from the traces" mode of Fig. 15.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import InterferenceTopology

__all__ = [
    "JointAccessProvider",
    "TopologyJointProvider",
    "EmpiricalJointProvider",
]

PatternDistribution = Dict[FrozenSet[int], float]
PatternTable = Dict[Tuple[int, int], float]


class JointAccessProvider:
    """Interface shared by topology-driven and trace-driven providers."""

    def access_probability(self, ue: int) -> float:
        raise NotImplementedError

    def pattern_distribution(self, group: FrozenSet[int]) -> PatternDistribution:
        """Joint pmf: clear-subset of ``group`` -> probability."""
        raise NotImplementedError

    def pattern_table(self, group: FrozenSet[int]) -> PatternTable:
        """``π[(i, s)]``: probability that ``i`` clears and exactly ``s``
        members of ``group`` (including ``i``) clear."""
        distribution = self.pattern_distribution(group)
        table: PatternTable = {}
        for clear_set, prob in distribution.items():
            size = len(clear_set)
            for ue in clear_set:
                key = (ue, size)
                table[key] = table.get(key, 0.0) + prob
        return table

    def joint_probability(
        self, clear_ues: Sequence[int], blocked_ues: Sequence[int] = ()
    ) -> float:
        clear = frozenset(clear_ues)
        blocked = frozenset(blocked_ues)
        if clear & blocked:
            raise TopologyError(
                f"UEs cannot be both clear and blocked: {sorted(clear & blocked)}"
            )
        group = clear | blocked
        distribution = self.pattern_distribution(group)
        # The pmf is keyed by clear pattern, so the answer is one lookup —
        # no need to scan the (possibly 2^|G|-sized) distribution.
        return distribution.get(clear, 0.0)


class TopologyJointProvider(JointAccessProvider):
    """Exact joint access pmfs from an interference topology."""

    def __init__(self, topology: InterferenceTopology) -> None:
        self.topology = topology
        self._pattern_cache: Dict[FrozenSet[int], PatternDistribution] = {}
        self._table_cache: Dict[FrozenSet[int], PatternTable] = {}

    def access_probability(self, ue: int) -> float:
        return self.topology.access_probability(ue)

    def pattern_distribution(self, group: FrozenSet[int]) -> PatternDistribution:
        group = frozenset(group)
        cached = self._pattern_cache.get(group)
        if cached is not None:
            return cached

        # Merge hidden terminals by their footprint inside the group; a set
        # of independent terminals with the same footprint acts as one with
        # busy probability 1 - prod(1 - q_k).
        footprint_idle: Dict[FrozenSet[int], float] = {}
        for q, edge_set in zip(self.topology.q, self.topology.edges):
            footprint = frozenset(edge_set & group)
            if not footprint:
                continue
            footprint_idle[footprint] = footprint_idle.get(footprint, 1.0) * (1.0 - q)

        # Convolve footprints in blocked-set space.
        blocked_dist: Dict[FrozenSet[int], float] = {frozenset(): 1.0}
        for footprint, idle in footprint_idle.items():
            busy = 1.0 - idle
            updated: Dict[FrozenSet[int], float] = {}
            for blocked, prob in blocked_dist.items():
                updated[blocked] = updated.get(blocked, 0.0) + prob * idle
                grown = blocked | footprint
                updated[grown] = updated.get(grown, 0.0) + prob * busy
            blocked_dist = updated

        distribution: PatternDistribution = {}
        for blocked, prob in blocked_dist.items():
            clear = group - blocked
            distribution[clear] = distribution.get(clear, 0.0) + prob
        self._pattern_cache[group] = distribution
        return distribution

    def pattern_table(self, group: FrozenSet[int]) -> PatternTable:
        group = frozenset(group)
        cached = self._table_cache.get(group)
        if cached is None:
            cached = super().pattern_table(group)
            self._table_cache[group] = cached
        return cached


class EmpiricalJointProvider(JointAccessProvider):
    """Joint access pmfs counted from a recorded clear/blocked matrix.

    ``clear_matrix[t, i]`` is True when UE ``i`` would have passed CCA in
    subframe ``t``.  This reproduces the paper's "joint access distribution
    computed directly from the traces" baseline and is also what a cell
    could do with exhaustive measurements (at exponential cost).
    """

    def __init__(self, clear_matrix: np.ndarray) -> None:
        matrix = np.asarray(clear_matrix, dtype=bool)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise TopologyError(
                f"clear matrix must be non-empty 2-D, got shape {matrix.shape}"
            )
        self._matrix = matrix
        # Per-UE clear fractions, computed once: column means of a boolean
        # matrix are exact (integer counts), so this matches the per-query
        # column mean bit for bit.
        self._marginals = matrix.mean(axis=0)
        self._pattern_cache: Dict[FrozenSet[int], PatternDistribution] = {}

    @property
    def num_subframes(self) -> int:
        return self._matrix.shape[0]

    @property
    def num_ues(self) -> int:
        return self._matrix.shape[1]

    def access_probability(self, ue: int) -> float:
        if not 0 <= ue < self.num_ues:
            raise TopologyError(f"unknown UE id {ue}")
        return float(self._marginals[ue])

    def pattern_distribution(self, group: FrozenSet[int]) -> PatternDistribution:
        group = frozenset(group)
        cached = self._pattern_cache.get(group)
        if cached is not None:
            return cached
        members = sorted(group)
        for ue in members:
            if not 0 <= ue < self.num_ues:
                raise TopologyError(f"unknown UE id {ue}")
        if not members:
            return {frozenset(): 1.0}
        columns = self._matrix[:, members].astype(np.int64)
        weights = 1 << np.arange(len(members), dtype=np.int64)
        codes = columns @ weights
        counts = np.bincount(codes, minlength=1 << len(members))
        total = float(self.num_subframes)
        distribution: PatternDistribution = {}
        for code, count in enumerate(counts):
            if count == 0:
                continue
            clear = frozenset(
                members[bit] for bit in range(len(members)) if code >> bit & 1
            )
            distribution[clear] = count / total
        self._pattern_cache[group] = distribution
        return distribution
