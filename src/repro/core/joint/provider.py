"""Joint-access providers: the probability oracle behind the schedulers.

A provider answers, for any small client group ``G``:

* ``access_probability(i)`` — the marginal ``p(i)``;
* ``pattern_distribution(G)`` — the full joint pmf over which subset of
  ``G`` clears CCA in a subframe;
* ``pattern_table(G)`` — the derived table ``π[(i, s)] = P(i clear and
  exactly s members of G clear)`` that the speculative scheduler's expected
  utility (Eqn. 4) consumes directly;
* ``joint_probability(U, V)`` — ``P(U clear, V blocked)``.

Two implementations:

* :class:`TopologyJointProvider` — exact, from an (inferred or ground-truth)
  :class:`~repro.topology.graph.InterferenceTopology`.  The pmf over clear
  patterns is built by convolving the independent hidden terminals, grouped
  by their footprint inside ``G``; cost is linear in the number of attached
  terminals and in the number of *realizable* patterns, so group sizes up to
  ``2M`` are cheap.  Results are memoized: the scheduler re-queries the same
  groups every TxOP while only rates change.
* :class:`EmpiricalJointProvider` — counts patterns in a recorded clear/
  blocked matrix, the "directly from the traces" mode of Fig. 15.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.graph import InterferenceTopology

__all__ = [
    "JointAccessProvider",
    "TopologyJointProvider",
    "EmpiricalJointProvider",
]

PatternDistribution = Dict[FrozenSet[int], float]
PatternTable = Dict[Tuple[int, int], float]


class JointAccessProvider:
    """Interface shared by topology-driven and trace-driven providers."""

    def access_probability(self, ue: int) -> float:
        raise NotImplementedError

    def pattern_distribution(self, group: FrozenSet[int]) -> PatternDistribution:
        """Joint pmf: clear-subset of ``group`` -> probability."""
        raise NotImplementedError

    def pattern_table(self, group: FrozenSet[int]) -> PatternTable:
        """``π[(i, s)]``: probability that ``i`` clears and exactly ``s``
        members of ``group`` (including ``i``) clear."""
        distribution = self.pattern_distribution(group)
        table: PatternTable = {}
        for clear_set, prob in distribution.items():
            size = len(clear_set)
            for ue in clear_set:
                key = (ue, size)
                table[key] = table.get(key, 0.0) + prob
        return table

    def decodable_service(
        self, group: FrozenSet[int], max_streams: int
    ) -> Dict[int, float]:
        """Per-UE decodable-service probability ``Σ_{s≤M} π[(i, s)]``.

        One pass over the pattern table derives the per-group sums every
        member's Eqn. 4 term needs — replacing the O(|table|·|G|) scan of
        re-filtering the full table per UE.  Accumulation per UE follows
        the table's insertion order (each UE's entries are summed in the
        same sequence the per-UE filter would visit them), so the values
        are bit-identical to the scalar scan.
        """
        service = {ue: 0.0 for ue in group}
        for (member, streams), probability in self.pattern_table(
            group
        ).items():
            if streams <= max_streams:
                service[member] += probability
        return service

    def service_vector(
        self, group: Sequence[int], max_streams: int
    ) -> np.ndarray:
        """:meth:`decodable_service` as a dense vector over ``group``.

        The joint-access tensor view: entry ``j`` is the decodable-service
        probability of ``group[j]``.  The greedy hot path consumes the
        dict form (its Python accumulation order is part of the
        bit-exactness contract); the vector form serves analysis and
        vectorized consumers.
        """
        service = self.decodable_service(frozenset(group), max_streams)
        return np.array([service[ue] for ue in group], dtype=float)

    def joint_probability(
        self, clear_ues: Sequence[int], blocked_ues: Sequence[int] = ()
    ) -> float:
        clear = frozenset(clear_ues)
        blocked = frozenset(blocked_ues)
        if clear & blocked:
            raise TopologyError(
                f"UEs cannot be both clear and blocked: {sorted(clear & blocked)}"
            )
        group = clear | blocked
        distribution = self.pattern_distribution(group)
        # The pmf is keyed by clear pattern, so the answer is one lookup —
        # no need to scan the (possibly 2^|G|-sized) distribution.
        return distribution.get(clear, 0.0)


class _FastJointTables:
    """Int-bitmask mirror of one topology's pattern machinery.

    The scheduler's vectorized flavour queries service probabilities per
    candidate group at every greedy step; this class answers those queries
    with integer bitmask keys (cheap hashing, cheap set algebra) and
    *incremental* group state: extending group ``G`` to ``G ∪ {c}`` merges
    ``G``'s ordered attached-terminal list with ``c``'s precomputed
    terminal list instead of re-scanning every terminal of the topology.

    Bit-exactness: the reference implementation's floats depend on dict
    insertion orders (footprints first seen in terminal order; blocked
    sets convolved in that order; per-UE sums accumulated in pattern
    order).  The bitmask keys are a bijection of the frozenset keys, and
    every loop here visits keys in the same order the reference does, so
    every product and sum is the identical IEEE operation sequence.  That
    is also why the blocked-set convolution is *not* resumed from the
    parent's pmf: folding ``c``'s factors after ``G``'s would change the
    multiplication association wherever ``c``'s terminals interleave, so
    the incremental reuse is at the attachment/footprint level while each
    distinct group's convolution runs once and is memoized forever.
    """

    def __init__(self, topology: InterferenceTopology) -> None:
        self.idle = tuple(1.0 - q for q in topology.q)
        term_masks = []
        ue_terminals: Dict[int, list] = {}
        for index, edge_set in enumerate(topology.edges):
            mask = 0
            for ue in edge_set:
                mask |= 1 << ue
                ue_terminals.setdefault(ue, []).append(index)
            term_masks.append(mask)
        self.term_masks = tuple(term_masks)
        #: Per-UE terminal indices, ascending — the increment merged in
        #: when a greedy step attaches that UE to the group.
        self.ue_terminals = {
            ue: tuple(indices) for ue, indices in ue_terminals.items()
        }
        #: group mask -> ordered attached-terminal tuple (ascending index,
        #: i.e. exactly the subsequence a full terminal scan would visit).
        self._attached: Dict[int, Tuple[int, ...]] = {}
        #: (group mask, max streams) -> {ue: decodable-service probability}
        self._service: Dict[Tuple[int, int], Dict[int, float]] = {}
        #: Service-cache traffic, rolled into the owning provider's
        #: ``cache_hits``/``cache_misses`` (the greedy fast path queries
        #: these tables directly, so counting here is what keeps the obs
        #: counters honest about the hot path).
        self.hits = 0
        self.misses = 0

    def cache_size(self) -> int:
        return len(self._service)

    def extend_attached(
        self, attached: Tuple[int, ...], ue: int
    ) -> Tuple[int, ...]:
        """Merge ``ue``'s terminals into an ordered attached list."""
        extra = self.ue_terminals.get(ue, ())
        if not extra:
            return attached
        if not attached:
            return extra
        merged: list = []
        i = j = 0
        len_a, len_e = len(attached), len(extra)
        while i < len_a and j < len_e:
            a, e = attached[i], extra[j]
            if a < e:
                merged.append(a)
                i += 1
            elif e < a:
                merged.append(e)
                j += 1
            else:
                merged.append(a)
                i += 1
                j += 1
        merged.extend(attached[i:])
        merged.extend(extra[j:])
        return tuple(merged)

    def attached_for(self, mask: int) -> Tuple[int, ...]:
        """Ordered attached-terminal list for an arbitrary group mask."""
        cached = self._attached.get(mask)
        if cached is None:
            indices: set = set()
            bits = mask
            while bits:
                bit = bits & -bits
                bits ^= bit
                indices.update(self.ue_terminals.get(bit.bit_length() - 1, ()))
            cached = tuple(sorted(indices))
            self._attached[mask] = cached
        return cached

    def service(
        self,
        mask: int,
        max_streams: int,
        parent_attached: Optional[Tuple[int, ...]] = None,
        added: Optional[int] = None,
    ) -> Dict[int, float]:
        """Decodable-service probabilities for the group ``mask``.

        ``parent_attached``/``added`` let the greedy path extend the
        committed group's attachment state instead of re-deriving it; on a
        cache hit neither is touched.  Returns ``{ue: Σ_{s≤M} π[(ue, s)]}``
        with floats bit-identical to the frozenset-keyed reference.
        """
        key = (mask, max_streams)
        cached = self._service.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if added is not None and parent_attached is not None:
            attached = self._attached.get(mask)
            if attached is None:
                attached = self.extend_attached(parent_attached, added)
                self._attached[mask] = attached
        else:
            attached = self.attached_for(mask)

        # Footprint products in first-seen terminal order (the reference
        # scans all terminals ascending; ``attached`` is that scan's
        # non-empty subsequence).
        footprint_idle: Dict[int, float] = {}
        term_masks = self.term_masks
        idle_by_terminal = self.idle
        for index in attached:
            footprint = term_masks[index] & mask
            footprint_idle[footprint] = footprint_idle.get(
                footprint, 1.0
            ) * idle_by_terminal[index]

        blocked_dist: Dict[int, float] = {0: 1.0}
        for footprint, idle in footprint_idle.items():
            busy = 1.0 - idle
            updated: Dict[int, float] = {}
            for blocked, prob in blocked_dist.items():
                updated[blocked] = updated.get(blocked, 0.0) + prob * idle
                grown = blocked | footprint
                updated[grown] = updated.get(grown, 0.0) + prob * busy
            blocked_dist = updated

        distribution: Dict[int, float] = {}
        for blocked, prob in blocked_dist.items():
            clear = mask & ~blocked
            distribution[clear] = distribution.get(clear, 0.0) + prob

        # Fold to per-UE (streams -> probability) tables, preserving the
        # reference's per-UE accumulation and key-insertion orders (both
        # follow the pattern-distribution order for each fixed UE).
        per_ue: Dict[int, Dict[int, float]] = {}
        for clear, prob in distribution.items():
            size = clear.bit_count()
            bits = clear
            while bits:
                bit = bits & -bits
                bits ^= bit
                ue = bit.bit_length() - 1
                by_streams = per_ue.get(ue)
                if by_streams is None:
                    per_ue[ue] = {size: prob}
                else:
                    by_streams[size] = by_streams.get(size, 0.0) + prob

        service: Dict[int, float] = {}
        bits = mask
        while bits:
            bit = bits & -bits
            bits ^= bit
            ue = bit.bit_length() - 1
            total = 0.0
            by_streams = per_ue.get(ue)
            if by_streams is not None:
                for streams, prob in by_streams.items():
                    if streams <= max_streams:
                        total += prob
            service[ue] = total
        self._service[key] = service
        return service


class TopologyJointProvider(JointAccessProvider):
    """Exact joint access pmfs from an interference topology.

    All query results are memoized; the caches are keyed to the *identity*
    of ``self.topology``, so swapping in a mutated topology (``dynamics``
    churn via ``with_terminal``/``without_terminal``) invalidates every
    cached pmf, table and service tensor on the next query.  The plain-int
    ``cache_hits``/``cache_misses`` counters cover all three cache layers
    and feed the ``scheduler.pattern_cache_*`` obs metrics.
    """

    def __init__(self, topology: InterferenceTopology) -> None:
        self.topology = topology
        self._pattern_cache: Dict[FrozenSet[int], PatternDistribution] = {}
        self._table_cache: Dict[FrozenSet[int], PatternTable] = {}
        self._fast: Optional[_FastJointTables] = None
        self._built_for = topology
        self._hits = 0
        self._misses = 0

    @property
    def cache_hits(self) -> int:
        """Cache hits across every layer, including the fast tables the
        greedy hot path queries directly."""
        fast = self._fast
        return self._hits + (fast.hits if fast is not None else 0)

    @property
    def cache_misses(self) -> int:
        """Cache misses across every layer (see :attr:`cache_hits`)."""
        fast = self._fast
        return self._misses + (fast.misses if fast is not None else 0)

    def _check_current(self) -> None:
        """Drop every cache when the topology instance was swapped."""
        if self.topology is not self._built_for:
            if self._fast is not None:
                # Keep the traffic counters monotonic across the swap —
                # obs publishing records deltas and must never see the
                # totals move backwards.
                self._hits += self._fast.hits
                self._misses += self._fast.misses
            self._pattern_cache = {}
            self._table_cache = {}
            self._fast = None
            self._built_for = self.topology

    def fast_tables(self) -> _FastJointTables:
        """The bitmask-keyed service machinery for the current topology."""
        self._check_current()
        if self._fast is None:
            self._fast = _FastJointTables(self.topology)
        return self._fast

    def cache_size(self) -> int:
        """Total memoized entries across all cache layers."""
        size = len(self._pattern_cache) + len(self._table_cache)
        if self._fast is not None:
            size += self._fast.cache_size()
        return size

    def access_probability(self, ue: int) -> float:
        return self.topology.access_probability(ue)

    def decodable_service(
        self, group: FrozenSet[int], max_streams: int
    ) -> Dict[int, float]:
        tables = self.fast_tables()
        mask = 0
        for ue in group:
            mask |= 1 << ue
        return tables.service(mask, max_streams)

    def pattern_distribution(self, group: FrozenSet[int]) -> PatternDistribution:
        self._check_current()
        group = frozenset(group)
        cached = self._pattern_cache.get(group)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1

        # Merge hidden terminals by their footprint inside the group; a set
        # of independent terminals with the same footprint acts as one with
        # busy probability 1 - prod(1 - q_k).
        footprint_idle: Dict[FrozenSet[int], float] = {}
        for q, edge_set in zip(self.topology.q, self.topology.edges):
            footprint = frozenset(edge_set & group)
            if not footprint:
                continue
            footprint_idle[footprint] = footprint_idle.get(footprint, 1.0) * (1.0 - q)

        # Convolve footprints in blocked-set space.
        blocked_dist: Dict[FrozenSet[int], float] = {frozenset(): 1.0}
        for footprint, idle in footprint_idle.items():
            busy = 1.0 - idle
            updated: Dict[FrozenSet[int], float] = {}
            for blocked, prob in blocked_dist.items():
                updated[blocked] = updated.get(blocked, 0.0) + prob * idle
                grown = blocked | footprint
                updated[grown] = updated.get(grown, 0.0) + prob * busy
            blocked_dist = updated

        distribution: PatternDistribution = {}
        for blocked, prob in blocked_dist.items():
            clear = group - blocked
            distribution[clear] = distribution.get(clear, 0.0) + prob
        self._pattern_cache[group] = distribution
        return distribution

    def pattern_table(self, group: FrozenSet[int]) -> PatternTable:
        self._check_current()
        group = frozenset(group)
        cached = self._table_cache.get(group)
        if cached is None:
            self._misses += 1
            cached = super().pattern_table(group)
            self._table_cache[group] = cached
        else:
            self._hits += 1
        return cached


class EmpiricalJointProvider(JointAccessProvider):
    """Joint access pmfs counted from a recorded clear/blocked matrix.

    ``clear_matrix[t, i]`` is True when UE ``i`` would have passed CCA in
    subframe ``t``.  This reproduces the paper's "joint access distribution
    computed directly from the traces" baseline and is also what a cell
    could do with exhaustive measurements (at exponential cost).
    """

    def __init__(self, clear_matrix: np.ndarray) -> None:
        matrix = np.asarray(clear_matrix, dtype=bool)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise TopologyError(
                f"clear matrix must be non-empty 2-D, got shape {matrix.shape}"
            )
        self._matrix = matrix
        # Per-UE clear fractions, computed once: column means of a boolean
        # matrix are exact (integer counts), so this matches the per-query
        # column mean bit for bit.
        self._marginals = matrix.mean(axis=0)
        self._pattern_cache: Dict[FrozenSet[int], PatternDistribution] = {}

    @property
    def num_subframes(self) -> int:
        return self._matrix.shape[0]

    @property
    def num_ues(self) -> int:
        return self._matrix.shape[1]

    def access_probability(self, ue: int) -> float:
        if not 0 <= ue < self.num_ues:
            raise TopologyError(f"unknown UE id {ue}")
        return float(self._marginals[ue])

    def pattern_distribution(self, group: FrozenSet[int]) -> PatternDistribution:
        group = frozenset(group)
        cached = self._pattern_cache.get(group)
        if cached is not None:
            return cached
        members = sorted(group)
        for ue in members:
            if not 0 <= ue < self.num_ues:
                raise TopologyError(f"unknown UE id {ue}")
        if not members:
            return {frozenset(): 1.0}
        columns = self._matrix[:, members].astype(np.int64)
        weights = 1 << np.arange(len(members), dtype=np.int64)
        codes = columns @ weights
        counts = np.bincount(codes, minlength=1 << len(members))
        total = float(self.num_subframes)
        distribution: PatternDistribution = {}
        for code, count in enumerate(counts):
            if count == 0:
                continue
            clear = frozenset(
                members[bit] for bit in range(len(members)) if code >> bit & 1
            )
            distribution[clear] = count / total
        self._pattern_cache[group] = distribution
        return distribution
