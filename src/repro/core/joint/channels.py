"""Channel-indexed blueprints: one joint-access oracle per channel.

A multi-channel topology is one shared hidden-terminal population seen
through per-channel ACLR filters, so its blueprint is naturally a
*family* of blueprints — one :class:`InterferenceTopology` view (and one
:class:`TopologyJointProvider`) per channel of the plan.  These helpers
materialize that family and the two dense summaries channel selection
feeds on: the per-(channel, UE) access-probability matrix and the
per-channel effective busy probability with cross-channel leakage folded
in.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.joint.provider import TopologyJointProvider
from repro.topology.multichannel import MultiChannelTopology

__all__ = [
    "per_channel_providers",
    "channel_access_matrix",
    "channel_busy_vector",
]


def per_channel_providers(
    topology: MultiChannelTopology,
) -> Dict[int, TopologyJointProvider]:
    """One exact joint-access provider per channel of the plan.

    Provider ``c`` answers every blueprint query — ``p(i)``, pattern
    pmfs, Eqn. 4 service tables — *as if the cell operated on channel
    ``c``*: terminals that do not couple into ``c`` (ACLR above their
    margin) appear with empty footprints, everything else is unchanged.
    """
    return {
        channel: TopologyJointProvider(topology.channel_view(channel))
        for channel in range(topology.num_channels)
    }


def channel_access_matrix(topology: MultiChannelTopology) -> np.ndarray:
    """``A[c, i]`` — blueprint access probability of UE ``i`` on channel ``c``.

    The dense input to channel selection: row argmax per column is the
    per-UE greedy assignment, row means rank channels by overall clarity.
    """
    matrix = np.empty(
        (topology.num_channels, topology.num_ues), dtype=float
    )
    for channel in range(topology.num_channels):
        view = topology.channel_view(channel)
        for ue in range(topology.num_ues):
            matrix[channel, ue] = view.access_probability(ue)
    return matrix


def channel_busy_vector(topology: MultiChannelTopology) -> np.ndarray:
    """Per-channel effective busy probability, leakage folded in.

    Entry ``c`` is ``1 - prod(1 - q_k)`` over every terminal *coupled*
    into channel ``c`` — home-channel occupants plus adjacent-channel
    terminals whose ACLR-attenuated emissions still cross their energy
    margin.  This is the q-vector a per-channel CCA model sees.
    """
    return np.array(
        [
            topology.channel_busy_probability(channel)
            for channel in range(topology.num_channels)
        ],
        dtype=float,
    )
