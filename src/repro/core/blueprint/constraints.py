"""The constraint system of topology inference (Eqn. 6) and its violations.

A :class:`WorkingTopology` is the solver's mutable state: ``h`` hidden
terminals with log-domain weights ``Q(k) = -log(1 - q_k)`` and binary edge
sets.  Against a :class:`~repro.core.blueprint.transform.TransformedMeasurements`
target it exposes the two constraint families:

* individual:  ``c_i    = sum_k z_ik Q(k)        - P(i)``
* pairwise:    ``c_{ij} = sum_k z_ik z_jk Q(k)   - P(i,j)``

and the aggregate violation the gradient-repair loop descends on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blueprint.transform import (
    TransformedMeasurements,
    inverse_transform_q,
)
from repro.errors import InferenceError
from repro.topology.graph import InterferenceTopology

__all__ = ["WorkingTopology", "ConstraintViolation"]


class ConstraintViolation:
    """One violated constraint: which, by how much."""

    __slots__ = ("kind", "key", "amount")

    def __init__(self, kind: str, key, amount: float) -> None:
        self.kind = kind  # "individual", "pairwise", or "triplet"
        self.key = key  # ue id, or (i, j) tuple
        self.amount = amount  # signed: positive = over-contribution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstraintViolation({self.kind}, {self.key}, {self.amount:+.4f})"


class WorkingTopology:
    """Mutable log-domain topology state for the repair loop.

    Internally keeps ``Z`` as an ``(h, N)`` boolean matrix and ``Q`` as a
    length-``h`` vector, so all constraint sums reduce to one matmul.
    """

    def __init__(self, num_ues: int) -> None:
        if num_ues < 1:
            raise InferenceError(f"need at least one UE: {num_ues}")
        self.num_ues = num_ues
        self._z: np.ndarray = np.zeros((0, num_ues), dtype=bool)
        self._q: np.ndarray = np.zeros(0, dtype=float)
        # Memoized read-only snapshot served by edge_matrix(); dropped on
        # every structural mutation.
        self._z_cache: Optional[np.ndarray] = None
        # Monotonic mutation counter: bumped by every mutation (structural
        # or weight), so external caches keyed on a topology state can tell
        # whether the state they captured is still current.
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the topology state changes."""
        return self._version

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_terminals(
        num_ues: int, terminals: Iterable[Tuple[float, Iterable[int]]]
    ) -> "WorkingTopology":
        """Build from ``(Q_log_domain, ue_ids)`` pairs."""
        topology = WorkingTopology(num_ues)
        for q, ues in terminals:
            topology.add_terminal(q, ues)
        return topology

    def copy(self) -> "WorkingTopology":
        duplicate = WorkingTopology(self.num_ues)
        duplicate._z = self._z.copy()
        duplicate._q = self._q.copy()
        duplicate._version = self._version
        return duplicate

    # -- mutation ----------------------------------------------------------

    def add_terminal(self, q: float, ues: Iterable[int]) -> int:
        """Add a hidden terminal; returns its index."""
        if q < 0:
            raise InferenceError(f"negative log-domain weight: {q}")
        row = np.zeros(self.num_ues, dtype=bool)
        for ue in ues:
            if not 0 <= ue < self.num_ues:
                raise InferenceError(f"edge to unknown UE {ue}")
            row[ue] = True
        self._z = np.vstack([self._z, row[None, :]]) if len(self._z) else row[None, :]
        self._q = np.append(self._q, float(q))
        self._z_cache = None
        self._version += 1
        return len(self._q) - 1

    def set_weight(self, k: int, q: float) -> None:
        # Weights are not part of the memoized Z snapshot, but the state
        # still changed — bump the version for external observers.
        self._q[k] = max(float(q), 0.0)
        self._version += 1

    def set_edge(self, k: int, ue: int, present: bool) -> None:
        self._z[k, ue] = present
        self._z_cache = None
        self._version += 1

    def prune(self, weight_floor: float = 1e-9) -> None:
        """Drop terminals with ~zero weight or no edges; merge duplicates."""
        if len(self._q) == 0:
            return
        self._z_cache = None
        self._version += 1
        keep = (self._q > weight_floor) & self._z.any(axis=1)
        self._z = self._z[keep]
        self._q = self._q[keep]
        # Merge terminals with identical edge sets (weights add in log domain).
        merged: Dict[bytes, int] = {}
        rows: List[np.ndarray] = []
        weights: List[float] = []
        for row, weight in zip(self._z, self._q):
            key = row.tobytes()
            if key in merged:
                weights[merged[key]] += weight
            else:
                merged[key] = len(rows)
                rows.append(row)
                weights.append(float(weight))
        self._z = (
            np.array(rows, dtype=bool)
            if rows
            else np.zeros((0, self.num_ues), dtype=bool)
        )
        self._q = np.array(weights, dtype=float)

    # -- inspection ----------------------------------------------------------

    @property
    def num_terminals(self) -> int:
        return len(self._q)

    @property
    def weights(self) -> np.ndarray:
        return self._q

    def edge_matrix(self) -> np.ndarray:
        """``Z`` as a read-only boolean snapshot (memoized between mutations).

        The repair and MCMC loops call this once per move evaluation; a
        write-protected cached copy makes the call O(1) on the hot path and
        catches accidental in-place edits (use :meth:`set_edge`).
        """
        if self._z_cache is None:
            cache = self._z.copy()
            cache.setflags(write=False)
            self._z_cache = cache
        return self._z_cache

    def edge_set(self, k: int) -> FrozenSet[int]:
        return frozenset(int(u) for u in np.nonzero(self._z[k])[0])

    def terminals_for_ue(self, ue: int) -> List[int]:
        return [int(k) for k in np.nonzero(self._z[:, ue])[0]]

    # -- constraint arithmetic -------------------------------------------------

    def contribution_matrix(self) -> np.ndarray:
        """``W_hat = Z^T diag(Q) Z``: diagonal = individual sums, off-diagonal
        = pairwise sums."""
        if len(self._q) == 0:
            return np.zeros((self.num_ues, self.num_ues))
        zf = self._z.astype(float)
        return zf.T @ (zf * self._q[:, None])

    def violation_matrix(self, target: TransformedMeasurements) -> np.ndarray:
        """Signed violations ``c``: contribution minus target, per constraint."""
        if target.num_ues != self.num_ues:
            raise InferenceError(
                f"target covers {target.num_ues} UEs, topology has {self.num_ues}"
            )
        return self.contribution_matrix() - target.matrix()

    def triplet_contribution(self, i: int, j: int, k: int) -> float:
        """``sum_l z_il z_jl z_kl Q(l)`` — mass shared by all three clients."""
        if len(self._q) == 0:
            return 0.0
        shared = self._z[:, i] & self._z[:, j] & self._z[:, k]
        return float(self._q[shared].sum())

    def aggregate_violation(self, target: TransformedMeasurements) -> float:
        """Sum of absolute violations over all constraints (each counted once)."""
        violation = self.violation_matrix(target)
        upper = np.triu_indices(self.num_ues, k=1)
        total = float(
            np.abs(np.diag(violation)).sum() + np.abs(violation[upper]).sum()
        )
        for (i, j, k), value in target.triplet.items():
            total += abs(self.triplet_contribution(i, j, k) - value)
        return total

    def violations(
        self, target: TransformedMeasurements, respect_tolerance: bool = True
    ) -> List[ConstraintViolation]:
        """All constraints violated beyond tolerance, most-violated first."""
        matrix = self.violation_matrix(target)
        found: List[ConstraintViolation] = []
        for i in range(self.num_ues):
            amount = float(matrix[i, i])
            tolerance = target.individual_tolerance[i] if respect_tolerance else 0.0
            if abs(amount) > tolerance:
                found.append(ConstraintViolation("individual", i, amount))
        for i in range(self.num_ues):
            for j in range(i + 1, self.num_ues):
                amount = float(matrix[i, j])
                tolerance = (
                    target.pairwise_tolerance[(i, j)] if respect_tolerance else 0.0
                )
                if abs(amount) > tolerance:
                    found.append(ConstraintViolation("pairwise", (i, j), amount))
        for (i, j, k), value in target.triplet.items():
            amount = self.triplet_contribution(i, j, k) - value
            tolerance = (
                target.triplet_tolerance[(i, j, k)] if respect_tolerance else 0.0
            )
            if abs(amount) > tolerance:
                found.append(ConstraintViolation("triplet", (i, j, k), amount))
        found.sort(key=lambda v: -abs(v.amount))
        return found

    def is_satisfied(self, target: TransformedMeasurements) -> bool:
        return not self.violations(target)

    # -- export -----------------------------------------------------------------

    def to_interference_topology(self) -> InterferenceTopology:
        """Convert back to probability domain (``q = 1 - e^{-Q}``)."""
        terminals = [
            (inverse_transform_q(float(q)), self.edge_set(k))
            for k, q in enumerate(self._q)
        ]
        return InterferenceTopology.build(self.num_ues, terminals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkingTopology(N={self.num_ues}, h={self.num_terminals})"
