"""The blueprint inference driver: multi-start gradient repair.

Runs the Section 3.4 solver from every configured starting topology, scores
the repaired candidates, and returns the winner as a probability-domain
:class:`~repro.topology.graph.InterferenceTopology`.

Selection rule (paper): among candidates, prefer the smallest aggregate
violation; break ties toward the fewest hidden terminals (the minimal
blueprint explaining the measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.blueprint.constraints import WorkingTopology
from repro.core.blueprint.initializers import (
    diagonal_start,
    pairwise_start,
    peeling_start,
    random_start,
)
from repro.core.blueprint.repair import RepairResult, repair
from repro.core.blueprint.transform import TransformedMeasurements
from repro.errors import InferenceError
from repro.obs.metrics import active_registry
from repro.topology.graph import InterferenceTopology

__all__ = ["InferenceConfig", "StartOutcome", "InferenceResult", "BlueprintInference"]

#: Repair runs cap at InferenceConfig.max_iterations (default 400).
_ITERATION_BUCKETS = (10.0, 25.0, 50.0, 100.0, 200.0, 400.0)
#: Aggregate violations span machine-precision fits to badly broken starts.
_RESIDUAL_BUCKETS = (1e-9, 1e-6, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


@dataclass(frozen=True)
class InferenceConfig:
    """Knobs of the multi-start inference run."""

    max_iterations: int = 400
    num_random_starts: int = 4
    use_peeling_start: bool = True
    use_diagonal_start: bool = True
    use_pairwise_start: bool = True
    weight_floor: float = 1e-6
    #: Seed for the random starting topologies.  Must be concrete for a
    #: reproducible solve: ``None`` draws from OS entropy, which makes the
    #: winning blueprint (and every downstream schedule) vary run to run.
    seed: Optional[int] = 0


@dataclass
class StartOutcome:
    """Diagnostics for one starting topology."""

    label: str
    aggregate_violation: float
    num_terminals: int
    satisfied: bool
    iterations: int


@dataclass
class InferenceResult:
    """The inferred blueprint plus per-start diagnostics."""

    topology: InterferenceTopology
    aggregate_violation: float
    satisfied: bool
    winning_start: str
    outcomes: List[StartOutcome] = field(default_factory=list)


class BlueprintInference:
    """Infer the hidden-terminal topology from transformed measurements."""

    def __init__(self, config: Optional[InferenceConfig] = None) -> None:
        self.config = config if config is not None else InferenceConfig()

    def _starting_points(
        self,
        target: TransformedMeasurements,
        extra_starts: Optional[List[Tuple[str, WorkingTopology]]] = None,
    ) -> List[Tuple[str, WorkingTopology]]:
        rng = np.random.default_rng(self.config.seed)
        starts: List[Tuple[str, WorkingTopology]] = []
        if extra_starts:
            # Caller-supplied warm starts (e.g. the previous blueprint when
            # re-inferring after drift) run first: repair copies its start,
            # so the caller's topology is never mutated.
            starts.extend(
                (label, topology.copy()) for label, topology in extra_starts
            )
        if self.config.use_peeling_start:
            starts.append(("peeling", peeling_start(target)))
        if self.config.use_diagonal_start:
            starts.append(("diagonal", diagonal_start(target)))
        if self.config.use_pairwise_start:
            starts.append(("pairwise", pairwise_start(target)))
        for index in range(self.config.num_random_starts):
            h = int(rng.integers(1, max(2, 2 * target.num_ues)))
            starts.append(
                (f"random-{index}(h={h})", random_start(target, h, rng))
            )
        if not starts:
            raise InferenceError("no starting topologies configured")
        return starts

    def infer(
        self,
        target: TransformedMeasurements,
        extra_starts: Optional[List[Tuple[str, WorkingTopology]]] = None,
    ) -> InferenceResult:
        """Run repair from every start; return the best repaired topology.

        ``extra_starts`` prepends caller-supplied ``(label, topology)``
        warm starts to the configured start set — the incremental
        re-blueprinting path seeds this with the previous solution.
        """
        candidates: List[Tuple[str, RepairResult]] = []
        outcomes: List[StartOutcome] = []
        for label, start in self._starting_points(target, extra_starts):
            result = repair(
                start,
                target,
                max_iterations=self.config.max_iterations,
                weight_floor=self.config.weight_floor,
            )
            candidates.append((label, result))
            outcomes.append(
                StartOutcome(
                    label=label,
                    aggregate_violation=result.aggregate_violation,
                    num_terminals=result.topology.num_terminals,
                    satisfied=result.satisfied,
                    iterations=result.iterations,
                )
            )

        def score(item: Tuple[str, RepairResult]) -> Tuple[float, int]:
            _, result = item
            # Bucket violations so floating-point dust cannot outrank a
            # strictly smaller blueprint.
            bucket = round(result.aggregate_violation, 6)
            return (bucket, result.topology.num_terminals)

        winning_label, winning = min(candidates, key=score)
        registry = active_registry()
        if registry is not None:
            self._record_metrics(registry, outcomes, winning)
        return InferenceResult(
            topology=winning.topology.to_interference_topology(),
            aggregate_violation=winning.aggregate_violation,
            satisfied=winning.satisfied,
            winning_start=winning_label,
            outcomes=outcomes,
        )

    @staticmethod
    def _record_metrics(
        registry,
        outcomes: List[StartOutcome],
        winning: RepairResult,
    ) -> None:
        """Report one inference's start diagnostics into the registry."""
        registry.counter(
            "blueprint.inferences", help="multi-start inference runs"
        ).inc()
        registry.counter(
            "blueprint.repair_starts", help="repair runs across all starts"
        ).inc(len(outcomes))
        iterations = registry.histogram(
            "blueprint.repair_iterations",
            buckets=_ITERATION_BUCKETS,
            help="gradient-repair iterations per start",
        )
        residual = registry.histogram(
            "blueprint.residual",
            buckets=_RESIDUAL_BUCKETS,
            help="aggregate constraint violation per repaired start",
        )
        for outcome in outcomes:
            iterations.observe(outcome.iterations)
            residual.observe(outcome.aggregate_violation)
        registry.gauge(
            "blueprint.winning_residual",
            help="aggregate violation of the selected blueprint",
        ).set(winning.aggregate_violation)
        registry.gauge(
            "blueprint.winning_terminals",
            help="hidden terminals in the selected blueprint",
        ).set(winning.topology.num_terminals)

    def infer_from_probabilities(
        self,
        num_ues: int,
        p_individual,
        p_pairwise,
        default_tolerance: float = 1e-9,
    ) -> InferenceResult:
        """Convenience wrapper: transform raw probabilities, then infer."""
        target = TransformedMeasurements.from_probabilities(
            num_ues, p_individual, p_pairwise, default_tolerance
        )
        return self.infer(target)
