"""Gradient-repair topology adaptation (Section 3.4.2).

Starting from an initial topology, each iteration:

1. finds the maximally violated constraint;
2. enumerates the paper's adaptation moves for that constraint class
   (adjust a weight, add/remove edges, spawn a new hidden terminal);
3. applies the move that resolves the violation while minimizing the
   aggregate violation across *all* constraints;
4. stops at zero violation (within tolerance), at a local optimum where no
   move improves, or at the iteration cap — returning the best state seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.blueprint.constraints import ConstraintViolation, WorkingTopology
from repro.core.blueprint.transform import TransformedMeasurements

__all__ = ["RepairResult", "repair"]

#: How many of the most-violated constraints to try per iteration before
#: declaring a local optimum.
_CONSTRAINTS_PER_ITERATION = 4

Move = Callable[[WorkingTopology], None]


@dataclass
class RepairResult:
    """Outcome of one repair run."""

    topology: WorkingTopology
    aggregate_violation: float
    satisfied: bool
    iterations: int


def _individual_moves(
    topology: WorkingTopology, ue: int, amount: float
) -> List[Move]:
    """Adaptation options for an individual constraint ``c_i`` (Case 1)."""
    moves: List[Move] = []
    attached = topology.terminals_for_ue(ue)
    if amount > 0:  # over-contribution
        for k in attached:
            moves.append(lambda t, k=k, d=amount: t.set_weight(k, t.weights[k] - d))
            moves.append(lambda t, k=k, u=ue: t.set_edge(k, u, False))
    else:  # under-contribution
        deficit = -amount
        for k in attached:
            moves.append(lambda t, k=k, d=deficit: t.set_weight(k, t.weights[k] + d))
        for k in range(topology.num_terminals):
            if k not in attached:
                moves.append(lambda t, k=k, u=ue: t.set_edge(k, u, True))
        moves.append(lambda t, u=ue, d=deficit: t.add_terminal(d, [u]) and None)
    return moves


def _pairwise_moves(
    topology: WorkingTopology, pair: Tuple[int, int], amount: float
) -> List[Move]:
    """Adaptation options for a joint constraint ``c_{ij}`` (Case 2)."""
    i, j = pair
    moves: List[Move] = []
    z = topology.edge_matrix()
    shared = [k for k in range(topology.num_terminals) if z[k, i] and z[k, j]]
    if amount > 0:  # over-contribution
        for k in shared:
            moves.append(lambda t, k=k, d=amount: t.set_weight(k, t.weights[k] - d))
            moves.append(lambda t, k=k, u=i: t.set_edge(k, u, False))
            moves.append(lambda t, k=k, u=j: t.set_edge(k, u, False))

            def _remove_both(t: WorkingTopology, k: int = k) -> None:
                t.set_edge(k, i, False)
                t.set_edge(k, j, False)

            moves.append(_remove_both)
    else:  # under-contribution
        deficit = -amount
        for k in shared:
            moves.append(lambda t, k=k, d=deficit: t.set_weight(k, t.weights[k] + d))
        for k in range(topology.num_terminals):
            if z[k, i] and z[k, j]:
                continue

            def _add_edges(t: WorkingTopology, k: int = k) -> None:
                t.set_edge(k, i, True)
                t.set_edge(k, j, True)

            moves.append(_add_edges)
        moves.append(
            lambda t, d=deficit: t.add_terminal(d, [i, j]) and None
        )

        # Compound reallocation: spawn the shared terminal AND pull the same
        # mass out of each client's heaviest private terminal, so the pair
        # constraint is fixed without inflating the individual constraints.
        # This is the move that escapes the "all-singletons" local optimum.
        only_i = [k for k in range(topology.num_terminals) if z[k, i] and not z[k, j]]
        only_j = [k for k in range(topology.num_terminals) if z[k, j] and not z[k, i]]
        if only_i and only_j:
            donor_i = max(only_i, key=lambda k: topology.weights[k])
            donor_j = max(only_j, key=lambda k: topology.weights[k])

            def _reallocate(
                t: WorkingTopology,
                d: float = deficit,
                ki: int = donor_i,
                kj: int = donor_j,
            ) -> None:
                t.add_terminal(d, [i, j])
                t.set_weight(ki, t.weights[ki] - d)
                t.set_weight(kj, t.weights[kj] - d)

            moves.append(_reallocate)
    return moves


def _triplet_moves(
    topology: WorkingTopology, triple: Tuple[int, int, int], amount: float
) -> List[Move]:
    """Adaptation options for a triplet constraint (Section 3.5 extension)."""
    i, j, k = triple
    moves: List[Move] = []
    z = topology.edge_matrix()
    shared = [
        l
        for l in range(topology.num_terminals)
        if z[l, i] and z[l, j] and z[l, k]
    ]
    if amount > 0:  # over-contribution
        for l in shared:
            moves.append(lambda t, l=l, d=amount: t.set_weight(l, t.weights[l] - d))
            for ue in triple:
                moves.append(lambda t, l=l, u=ue: t.set_edge(l, u, False))
    else:  # under-contribution
        deficit = -amount
        for l in shared:
            moves.append(lambda t, l=l, d=deficit: t.set_weight(l, t.weights[l] + d))
        for l in range(topology.num_terminals):
            missing = [ue for ue in triple if not z[l, ue]]
            if not missing or len(missing) == 3:
                continue

            def _add_missing(t: WorkingTopology, l=l, missing=tuple(missing)) -> None:
                for ue in missing:
                    t.set_edge(l, ue, True)

            moves.append(_add_missing)
        moves.append(
            lambda t, d=deficit: t.add_terminal(d, list(triple)) and None
        )
    return moves


def _moves_for(topology: WorkingTopology, violation: ConstraintViolation) -> List[Move]:
    if violation.kind == "individual":
        return _individual_moves(topology, violation.key, violation.amount)
    if violation.kind == "triplet":
        return _triplet_moves(topology, violation.key, violation.amount)
    return _pairwise_moves(topology, violation.key, violation.amount)


def repair(
    initial: WorkingTopology,
    target: TransformedMeasurements,
    max_iterations: int = 400,
    weight_floor: float = 1e-9,
) -> RepairResult:
    """Run gradient repair from ``initial`` against ``target``."""
    current = initial.copy()
    current_violation = current.aggregate_violation(target)
    best = current.copy()
    best_violation = current_violation

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        violations = current.violations(target)
        if not violations:
            break

        improved = False
        for violation in violations[:_CONSTRAINTS_PER_ITERATION]:
            moves = _moves_for(current, violation)
            best_candidate: Optional[WorkingTopology] = None
            best_candidate_violation = current_violation
            for move in moves:
                candidate = current.copy()
                move(candidate)
                candidate_violation = candidate.aggregate_violation(target)
                if candidate_violation < best_candidate_violation - 1e-12:
                    best_candidate = candidate
                    best_candidate_violation = candidate_violation
            if best_candidate is not None:
                current = best_candidate
                current_violation = best_candidate_violation
                improved = True
                break
        if not improved:
            break
        if current_violation < best_violation:
            best = current.copy()
            best_violation = current_violation

    final_violations = current.violations(target)
    if not final_violations:
        best = current
        best_violation = current_violation

    best.prune(weight_floor)
    best_violation = best.aggregate_violation(target)
    return RepairResult(
        topology=best,
        aggregate_violation=best_violation,
        satisfied=not best.violations(target),
        iterations=iterations,
    )
