"""Log-domain transformation of access probabilities (Section 3.4.1).

The transformation turns products of hidden-terminal idle probabilities into
sums, so the topology-inference problem becomes a *linear* constraint
system in the transformed variables:

* ``P(i)   = -log p(i)            = sum_k z_ik Q(k)``
* ``Q(k)   = -log(1 - q(k))``
* ``P(i,j) = -log(p(i) p(j) / p(i,j)) = sum_k z_ik z_jk Q(k)``

``P(i,j)`` is the (point-mass) mutual information between the two clients'
access indicators — zero when they share no hidden terminal, positive
otherwise.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

from repro.errors import MeasurementError

__all__ = [
    "PROBABILITY_FLOOR",
    "transform_individual",
    "transform_pairwise",
    "transform_triplet",
    "inverse_transform_q",
    "forward_transform_q",
    "TransformedMeasurements",
]

#: Probabilities are floored here before taking logs: an estimated zero
#: access probability would transform to infinity and poison the solver.
PROBABILITY_FLOOR = 1e-6


def _floored(probability: float, name: str) -> float:
    if not 0.0 <= probability <= 1.0 + 1e-12:
        raise MeasurementError(f"{name} outside [0, 1]: {probability}")
    return min(max(probability, PROBABILITY_FLOOR), 1.0)


def transform_individual(p_i: float) -> float:
    """``P(i) = -log p(i)`` (>= 0; zero for an interference-free client)."""
    return -math.log(_floored(p_i, "p(i)"))


def transform_pairwise(p_i: float, p_j: float, p_ij: float) -> float:
    """``P(i,j) = -log(p(i) p(j) / p(i,j))``.

    Sampling noise can push the estimated ``p(i,j)`` slightly below
    ``p(i) * p(j)`` even for independent clients; the result is clamped at
    zero since the underlying quantity (shared-terminal mass) cannot be
    negative.
    """
    p_i = _floored(p_i, "p(i)")
    p_j = _floored(p_j, "p(j)")
    p_ij = _floored(p_ij, "p(i,j)")
    value = math.log(p_ij) - math.log(p_i) - math.log(p_j)
    return max(value, 0.0)


def transform_triplet(
    p_i: float,
    p_j: float,
    p_k: float,
    p_ij: float,
    p_ik: float,
    p_jk: float,
    p_ijk: float,
) -> float:
    """Triple-shared terminal mass ``T(i,j,k) = sum_l z_il z_jl z_kl Q(l)``.

    By inclusion-exclusion in the log domain,
    ``T = -log p(ijk) + sum_pairs log p(pair) - sum_singles log p(single)``.
    Section 3.5: such higher-order constraints disambiguate skewed
    topologies that pair-wise measurements alone cannot pin down.
    """
    singles = [_floored(p, "p(single)") for p in (p_i, p_j, p_k)]
    pairs = [_floored(p, "p(pair)") for p in (p_ij, p_ik, p_jk)]
    triple = _floored(p_ijk, "p(i,j,k)")
    value = (
        -math.log(triple)
        + sum(math.log(p) for p in pairs)
        - sum(math.log(p) for p in singles)
    )
    return max(value, 0.0)


def forward_transform_q(q_k: float) -> float:
    """``Q(k) = -log(1 - q(k))`` — a hidden terminal's log-domain weight."""
    if not 0.0 <= q_k < 1.0:
        raise MeasurementError(f"q(k) outside [0, 1): {q_k}")
    return -math.log(1.0 - q_k)


def inverse_transform_q(big_q: float) -> float:
    """Recover ``q(k) = 1 - exp(-Q(k))`` from the log-domain weight."""
    if big_q < 0.0:
        raise MeasurementError(f"Q(k) must be non-negative: {big_q}")
    return 1.0 - math.exp(-big_q)


class TransformedMeasurements:
    """The transformed constraint targets handed to the inference solver.

    Attributes:
        num_ues: number of clients ``N``.
        individual: ``{i: P(i)}`` for every client.
        pairwise: ``{(i, j): P(i, j)}`` with ``i < j`` for every pair.
        individual_tolerance: per-client satisfiability tolerance (driven by
            sampling noise; exact inputs use a tiny default).
        pairwise_tolerance: per-pair tolerance.
    """

    def __init__(
        self,
        num_ues: int,
        individual: Mapping[int, float],
        pairwise: Mapping[Tuple[int, int], float],
        individual_tolerance: Mapping[int, float] | None = None,
        pairwise_tolerance: Mapping[Tuple[int, int], float] | None = None,
        default_tolerance: float = 1e-9,
        triplet: Mapping[Tuple[int, int, int], float] | None = None,
        triplet_tolerance: Mapping[Tuple[int, int, int], float] | None = None,
    ) -> None:
        if num_ues < 1:
            raise MeasurementError(f"need at least one UE: {num_ues}")
        expected_pairs = {
            (i, j) for i in range(num_ues) for j in range(i + 1, num_ues)
        }
        if set(individual) != set(range(num_ues)):
            raise MeasurementError(
                "individual measurements must cover every UE exactly once"
            )
        if set(pairwise) != expected_pairs:
            missing = expected_pairs - set(pairwise)
            extra = set(pairwise) - expected_pairs
            raise MeasurementError(
                f"pairwise measurements malformed (missing={sorted(missing)[:4]}, "
                f"extra={sorted(extra)[:4]}); keys must be (i, j) with i < j"
            )
        self.num_ues = num_ues
        self.individual = {i: float(v) for i, v in individual.items()}
        self.pairwise = {k: float(v) for k, v in pairwise.items()}
        self.individual_tolerance = {
            i: float((individual_tolerance or {}).get(i, default_tolerance))
            for i in range(num_ues)
        }
        self.pairwise_tolerance = {
            pair: float((pairwise_tolerance or {}).get(pair, default_tolerance))
            for pair in expected_pairs
        }
        # Optional triplet constraints (Section 3.5): any subset of the
        # C(N,3) triples may be supplied; keys must be sorted (i < j < k).
        self.triplet = {}
        self.triplet_tolerance = {}
        for key, value in (triplet or {}).items():
            i, j, k = key
            if not (0 <= i < j < k < num_ues):
                raise MeasurementError(
                    f"triplet key must be sorted within range: {key}"
                )
            self.triplet[(i, j, k)] = float(value)
            self.triplet_tolerance[(i, j, k)] = float(
                (triplet_tolerance or {}).get(key, default_tolerance)
            )

    @staticmethod
    def from_probabilities(
        num_ues: int,
        p_individual: Mapping[int, float],
        p_pairwise: Mapping[Tuple[int, int], float],
        default_tolerance: float = 1e-9,
    ) -> "TransformedMeasurements":
        """Build directly from raw probabilities (exact-knowledge path)."""
        individual = {
            i: transform_individual(p_individual[i]) for i in range(num_ues)
        }
        pairwise = {}
        for i in range(num_ues):
            for j in range(i + 1, num_ues):
                key = (i, j) if (i, j) in p_pairwise else (j, i)
                pairwise[(i, j)] = transform_pairwise(
                    p_individual[i], p_individual[j], p_pairwise[key]
                )
        return TransformedMeasurements(
            num_ues=num_ues,
            individual=individual,
            pairwise=pairwise,
            default_tolerance=default_tolerance,
        )

    def matrix(self):
        """The symmetric target matrix ``W`` with ``W[i,i] = P(i)`` and
        ``W[i,j] = P(i,j)`` — the weighted clique-cover view used by the
        peeling initializer."""
        import numpy as np

        w = np.zeros((self.num_ues, self.num_ues))
        for i, value in self.individual.items():
            w[i, i] = value
        for (i, j), value in self.pairwise.items():
            w[i, j] = value
            w[j, i] = value
        return w
