"""MCMC (Bayesian) topology inference — the baseline BLU argues against.

Section 3.4 of the paper notes that wired-network tomography typically uses
Markov-chain Monte Carlo: adapt the topology via random proposals so the
chain's stationary distribution matches the posterior given the observed
access distributions.  BLU's criticisms — slow convergence, and convergence
*in distribution* (a sampled topology can mismatch ground truth) — are what
the deterministic solver avoids.  This implementation exists so the
comparison can be reproduced (``benchmarks/bench_ablation_mcmc.py``).

Model:

* likelihood: independent Gaussians on every constraint residual, with the
  per-constraint tolerance as the standard deviation scale;
* prior: geometric on the terminal count (favouring small blueprints),
  exponential on each weight;
* proposals: birth / death of a terminal, edge toggle, weight jitter.

The chain is Metropolis–Hastings; the maximum-a-posteriori state visited is
returned (the most favourable reading of the baseline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.blueprint.constraints import WorkingTopology
from repro.core.blueprint.transform import TransformedMeasurements
from repro.errors import InferenceError
from repro.topology.graph import InterferenceTopology

__all__ = ["McmcConfig", "McmcResult", "McmcInference"]


@dataclass(frozen=True)
class McmcConfig:
    """Chain parameters."""

    num_samples: int = 4000
    burn_in: int = 500
    terminal_penalty: float = 1.0  # -log of the geometric prior ratio
    weight_prior_rate: float = 1.0
    noise_floor: float = 0.01  # minimum residual std dev
    #: Chain seed; ``None`` draws from OS entropy (non-reproducible).
    seed: Optional[int] = 0


@dataclass
class McmcResult:
    topology: InterferenceTopology
    log_posterior: float
    aggregate_violation: float
    acceptance_rate: float


class McmcInference:
    """Metropolis–Hastings over hidden-terminal topologies."""

    def __init__(self, config: Optional[McmcConfig] = None) -> None:
        self.config = config if config is not None else McmcConfig()

    def _log_posterior(
        self, state: WorkingTopology, target: TransformedMeasurements
    ) -> float:
        violation = state.violation_matrix(target)
        n = target.num_ues
        log_likelihood = 0.0
        for i in range(n):
            sigma = max(target.individual_tolerance[i], self.config.noise_floor)
            log_likelihood -= 0.5 * (violation[i, i] / sigma) ** 2
        for i in range(n):
            for j in range(i + 1, n):
                sigma = max(
                    target.pairwise_tolerance[(i, j)], self.config.noise_floor
                )
                log_likelihood -= 0.5 * (violation[i, j] / sigma) ** 2
        log_prior = -self.config.terminal_penalty * state.num_terminals
        log_prior -= self.config.weight_prior_rate * float(state.weights.sum())
        return log_likelihood + log_prior

    def _propose(
        self, state: WorkingTopology, rng: np.random.Generator, scale: float
    ) -> WorkingTopology:
        candidate = state.copy()
        n = candidate.num_ues
        move = rng.random()
        if move < 0.15 or candidate.num_terminals == 0:  # birth
            footprint = int(rng.integers(1, min(n, max(2, n // 3)) + 1))
            ues = rng.choice(n, size=footprint, replace=False)
            candidate.add_terminal(float(rng.exponential(scale)), ues.tolist())
        elif move < 0.30:  # death
            victim = int(rng.integers(candidate.num_terminals))
            candidate.set_weight(victim, 0.0)
            candidate.prune()
        elif move < 0.60:  # edge toggle
            k = int(rng.integers(candidate.num_terminals))
            ue = int(rng.integers(n))
            z = candidate.edge_matrix()
            candidate.set_edge(k, ue, not z[k, ue])
        else:  # weight jitter
            k = int(rng.integers(candidate.num_terminals))
            jitter = float(rng.normal(0.0, 0.25 * scale))
            candidate.set_weight(k, float(candidate.weights[k]) + jitter)
        return candidate

    def infer(self, target: TransformedMeasurements) -> McmcResult:
        rng = np.random.default_rng(self.config.seed)
        positive = [v for v in target.individual.values() if v > 0]
        scale = float(np.mean(positive)) if positive else 0.3

        state = WorkingTopology(target.num_ues)
        state_score = self._log_posterior(state, target)
        best = state.copy()
        best_score = state_score

        accepted = 0
        for _ in range(self.config.num_samples):
            candidate = self._propose(state, rng, scale)
            candidate_score = self._log_posterior(candidate, target)
            if math.log(max(rng.random(), 1e-300)) < candidate_score - state_score:
                state = candidate
                state_score = candidate_score
                accepted += 1
                if state_score > best_score:
                    best = state.copy()
                    best_score = state_score

        best.prune()
        return McmcResult(
            topology=best.to_interference_topology(),
            log_posterior=best_score,
            aggregate_violation=best.aggregate_violation(target),
            acceptance_rate=accepted / max(self.config.num_samples, 1),
        )
