"""Multi-point initialization for topology inference (Section 3.4.2).

The paper alleviates local optima by running the gradient repair from
multiple starting topologies: random ones with varied terminal counts, plus
topologies "that satisfy only one set of constraints".  We provide those
and one more — a structural *peeling* start that exploits the weighted
clique-cover form of the target matrix ``W = Z^T diag(Q) Z``:

* :func:`peeling_start` — repeatedly extracts the maximal clique of clients
  with jointly positive residual mass, assigns it the minimum residual as a
  hidden terminal, and subtracts; leftover diagonal becomes per-client
  singleton terminals.  On exact inputs this recovers canonical topologies
  outright; on noisy inputs it gives repair an excellent warm start.
* :func:`diagonal_start` — one singleton terminal per client with
  ``Q = P(i)``: satisfies every individual constraint, none of the pairwise.
* :func:`pairwise_start` — one two-edge terminal per positive pair with
  ``Q = P(i,j)``: satisfies every pairwise constraint, not the individual.
* :func:`random_start` — random edges and weights with a chosen ``h``.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.core.blueprint.constraints import WorkingTopology
from repro.core.blueprint.transform import (
    TransformedMeasurements,
    forward_transform_q,
)
from repro.topology.graph import InterferenceTopology

__all__ = [
    "peeling_start",
    "diagonal_start",
    "pairwise_start",
    "random_start",
    "topology_start",
]


def _tolerance_matrix(target: TransformedMeasurements) -> np.ndarray:
    n = target.num_ues
    tol = np.zeros((n, n))
    for i in range(n):
        tol[i, i] = target.individual_tolerance[i]
    for (i, j), value in target.pairwise_tolerance.items():
        tol[i, j] = value
        tol[j, i] = value
    return tol


def peeling_start(target: TransformedMeasurements) -> WorkingTopology:
    """Structural clique-peeling initialization (see module docstring)."""
    n = target.num_ues
    residual = target.matrix().copy()
    tolerance = _tolerance_matrix(target)
    terminals: List[Tuple[float, Set[int]]] = []

    max_extractions = 4 * n * n
    for _ in range(max_extractions):
        # Most-loaded off-diagonal residual above tolerance.
        masked = residual - tolerance
        np.fill_diagonal(masked, -np.inf)
        i, j = np.unravel_index(np.argmax(masked), masked.shape)
        if masked[i, j] <= 0:
            break

        clique: Set[int] = {int(i), int(j)}
        # Grow while some client has positive residual with every member.
        while True:
            best_l, best_support = -1, 0.0
            for l in range(n):
                if l in clique:
                    continue
                supports = [residual[l, m] - tolerance[l, m] for m in clique]
                support = min(supports)
                if support > 0 and support > best_support:
                    best_l, best_support = l, support
            if best_l < 0:
                break
            clique.add(best_l)

        members = sorted(clique)
        pair_min = min(
            residual[a, b] for a in members for b in members if a < b
        )
        diag_min = min(residual[a, a] for a in members)
        weight = min(pair_min, diag_min)
        if weight <= 0:
            # The clique's mass is spoken for (diagonal exhausted); retire
            # this pair so the loop cannot revisit it.
            residual[i, j] = 0.0
            residual[j, i] = 0.0
            continue

        for a in members:
            residual[a, a] -= weight
            for b in members:
                if a < b:
                    residual[a, b] -= weight
                    residual[b, a] -= weight
        terminals.append((weight, clique))

    # Remaining diagonal mass: hidden terminals private to one client.
    for i in range(n):
        if residual[i, i] > tolerance[i, i]:
            terminals.append((float(residual[i, i]), {i}))

    return WorkingTopology.from_terminals(n, terminals)


def diagonal_start(target: TransformedMeasurements) -> WorkingTopology:
    """Satisfies every individual constraint with singleton terminals."""
    terminals = [
        (value, {ue}) for ue, value in target.individual.items() if value > 0
    ]
    return WorkingTopology.from_terminals(target.num_ues, terminals)


def pairwise_start(target: TransformedMeasurements) -> WorkingTopology:
    """Satisfies every pairwise constraint with two-edge terminals."""
    terminals = [
        (value, set(pair))
        for pair, value in target.pairwise.items()
        if value > target.pairwise_tolerance[pair]
    ]
    return WorkingTopology.from_terminals(target.num_ues, terminals)


def topology_start(topology: InterferenceTopology) -> WorkingTopology:
    """Warm start from a previously inferred blueprint.

    Converts a probability-domain topology back to the solver's log domain
    (``Q = -log(1 - q)``).  After a *localized* change — one hidden node
    arrived, left, or re-tuned — most constraints are still satisfied by
    the old solution, so repair from here converges in a handful of moves
    instead of re-growing the blueprint from scratch (the incremental
    re-blueprinting path of the dynamics subsystem).
    """
    terminals = [
        (forward_transform_q(q), set(ues))
        for q, ues in zip(topology.q, topology.edges)
        if ues
    ]
    return WorkingTopology.from_terminals(topology.num_ues, terminals)


def random_start(
    target: TransformedMeasurements,
    num_terminals: int,
    rng: Optional[np.random.Generator] = None,
) -> WorkingTopology:
    """A random topology with ``num_terminals`` hidden terminals.

    Weights are scaled to the magnitude of the observed individual
    constraints so the start is in the right ballpark.
    """
    rng = rng if rng is not None else np.random.default_rng()
    n = target.num_ues
    positive = [v for v in target.individual.values() if v > 0]
    scale = float(np.mean(positive)) if positive else 0.3
    terminals: List[Tuple[float, Set[int]]] = []
    for _ in range(max(num_terminals, 1)):
        footprint = int(rng.integers(1, min(n, max(2, n // 3)) + 1))
        ues = set(int(u) for u in rng.choice(n, size=footprint, replace=False))
        weight = float(rng.uniform(0.2, 1.2) * scale)
        terminals.append((weight, ues))
    return WorkingTopology.from_terminals(n, terminals)
