"""Blueprint inference: from pair-wise access statistics to topology."""

from repro.core.blueprint.constraints import ConstraintViolation, WorkingTopology
from repro.core.blueprint.inference import (
    BlueprintInference,
    InferenceConfig,
    InferenceResult,
    StartOutcome,
)
from repro.core.blueprint.initializers import (
    diagonal_start,
    pairwise_start,
    peeling_start,
    random_start,
)
from repro.core.blueprint.mcmc import McmcConfig, McmcInference, McmcResult
from repro.core.blueprint.repair import RepairResult, repair
from repro.core.blueprint.transform import (
    PROBABILITY_FLOOR,
    TransformedMeasurements,
    forward_transform_q,
    inverse_transform_q,
    transform_individual,
    transform_pairwise,
)

__all__ = [
    "BlueprintInference",
    "ConstraintViolation",
    "InferenceConfig",
    "InferenceResult",
    "McmcConfig",
    "McmcInference",
    "McmcResult",
    "PROBABILITY_FLOOR",
    "RepairResult",
    "StartOutcome",
    "TransformedMeasurements",
    "WorkingTopology",
    "diagonal_start",
    "forward_transform_q",
    "inverse_transform_q",
    "pairwise_start",
    "peeling_start",
    "random_start",
    "repair",
    "transform_individual",
    "transform_pairwise",
]
