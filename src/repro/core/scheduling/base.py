"""Scheduler base class and the shared greedy per-RB group builder.

All four schedulers (PF, access-aware, speculative, oracle) share the same
skeleton: walk the RBs of the subframe, greedily grow the client group on
each RB by the scheduler-specific expected-utility function, and respect the
control-channel budget of ``K`` distinct clients per subframe.  They differ
only in how a candidate group is valued and how large it may grow.

Two builders implement the skeleton:

* :func:`build_schedule` — the scalar reference: per-candidate utility
  callables, per-grant rate lookups.  Kept as the legacy flavour the
  bit-exactness regressions compare against.
* :func:`build_schedule_fast` — the vectorized flavour: utilities come
  from per-burst weight columns (plain sums for PF-family schedulers, dot
  products of cached service-probability vectors and weight columns for
  the speculative one, via a :class:`StepScorer`), and grant rates from
  per-burst rate columns.  Selection is *identical* to the scalar builder
  because every candidate's utility value is produced by the same IEEE
  operation sequence — the greedy scan itself (ascending id order, strict
  ``1e-15`` improvement over the running best) stays a sequential Python
  loop, which is what makes near-tie behaviour reproducible.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.scheduling._kernel import KERNEL_MAX_SLOTS, kernel
from repro.core.scheduling.types import (
    BurstTable,
    CompactColumns,
    SchedulingContext,
    compact_tensors,
)
from repro.errors import SchedulingError
from repro.lte.pilots import MAX_ORTHOGONAL_PILOTS
from repro.lte.resources import SubframeSchedule, UplinkGrant

__all__ = [
    "UplinkScheduler",
    "StepScorer",
    "greedy_group",
    "greedy_group_linear",
    "greedy_group_scored",
    "build_schedule",
    "build_schedule_fast",
]

GroupUtility = Callable[[Sequence[int]], float]


class UplinkScheduler(abc.ABC):
    """Interface: one uplink subframe in, one schedule out."""

    #: Human-readable identifier used in results and reports.
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        """Produce the grants for one uplink subframe."""


class StepScorer(abc.ABC):
    """Values every candidate extension of the current group in one call.

    The contract behind :func:`greedy_group_scored`: the greedy loop owns
    selection (the ``1e-15`` chain scan), the scorer owns valuation.  A
    scorer is stateful along one RB's greedy path — ``start_rb`` resets it,
    ``step_values`` prices ``group + [c]`` for every remaining candidate
    ``c`` (reusing whatever incremental state the committed group has
    built), and ``commit`` extends that state when the loop accepts a
    candidate.  Every returned value must be bit-identical to the
    scheduler's scalar group-utility for the same candidate group.
    """

    @abc.abstractmethod
    def start_rb(self, rb: int) -> None:
        """Reset per-RB state; the group is empty again."""

    @abc.abstractmethod
    def step_values(
        self, rb: int, group: Sequence[int], candidates: Sequence[int]
    ) -> Sequence[float]:
        """Utility of ``group + [c]`` for each candidate, in order."""

    @abc.abstractmethod
    def commit(self, ue: int) -> None:
        """The greedy loop accepted ``ue``; extend incremental state."""

    @abc.abstractmethod
    def value(self, rb: int, group: Sequence[int]) -> float:
        """Utility of an arbitrary group (used when the K-budget trims)."""


def _greedy_group(
    candidates: Sequence[int],
    utility: GroupUtility,
    max_size: int,
) -> Tuple[List[int], float]:
    """Greedy growth returning ``(group, utility_of_group)``."""
    if max_size < 1:
        raise SchedulingError(f"max_size must be positive: {max_size}")
    group: List[int] = []
    current = 0.0
    remaining = sorted(set(candidates))
    while remaining and len(group) < max_size:
        best_ue: Optional[int] = None
        best_value = current
        for ue in remaining:
            value = utility(group + [ue])
            if value > best_value + 1e-15:
                best_ue = ue
                best_value = value
        if best_ue is None:
            break
        group.append(best_ue)
        remaining.remove(best_ue)
        current = best_value
    return group, current


def greedy_group(
    candidates: Sequence[int],
    utility: GroupUtility,
    max_size: int,
) -> List[int]:
    """Grow a client group by always adding the best marginal client.

    Mirrors Eqn. 3: starting empty, repeatedly add the client with the
    largest strictly positive incremental utility; stop when none improves
    or the size cap is reached.  Deterministic: ties break toward the
    lowest client id.
    """
    return _greedy_group(candidates, utility, max_size)[0]


def _greedy_group_linear(
    candidates: Sequence[int],
    weights_for_size: Callable[[int], Sequence[float]],
    max_size: int,
) -> Tuple[List[int], float]:
    """Linear-utility greedy growth returning ``(group, utility)``."""
    if max_size < 1:
        raise SchedulingError(f"max_size must be positive: {max_size}")
    group: List[int] = []
    current = 0.0
    remaining = sorted(set(candidates))
    while remaining and len(group) < max_size:
        weights = weights_for_size(len(group) + 1)
        base = 0.0
        for member in group:
            base += weights[member]
        best_ue: Optional[int] = None
        best_value = current
        for ue in remaining:
            value = base + weights[ue]
            if value > best_value + 1e-15:
                best_ue = ue
                best_value = value
        if best_ue is None:
            break
        group.append(best_ue)
        remaining.remove(best_ue)
        current = best_value
    return group, current


def greedy_group_linear(
    candidates: Sequence[int],
    weights_for_size: Callable[[int], Sequence[float]],
    max_size: int,
) -> List[int]:
    """:func:`greedy_group` for utilities that are sums of per-client weights.

    When a candidate group's utility is ``sum(w[ue] for ue in group)`` with
    weights that depend only on the group *size* (e.g. PF under the
    size-dependent MU-MIMO stream penalty), each greedy step only needs the
    weight vector for the next size — no per-candidate closure calls.  The
    selection rule (strict ``1e-15`` improvement, sequential scan in
    ascending id order, left-to-right summation) is replicated exactly, so
    the result is identical to :func:`greedy_group` with the equivalent
    group-utility callable.

    ``weights_for_size(size)`` returns a per-client weight sequence indexed
    by UE id, valid for groups of exactly ``size`` members.
    """
    return _greedy_group_linear(candidates, weights_for_size, max_size)[0]


def _greedy_group_scored(
    candidates: Sequence[int],
    scorer: StepScorer,
    rb: int,
    max_size: int,
) -> Tuple[List[int], float]:
    """Scorer-driven greedy growth returning ``(group, utility)``."""
    if max_size < 1:
        raise SchedulingError(f"max_size must be positive: {max_size}")
    group: List[int] = []
    current = 0.0
    remaining = sorted(set(candidates))
    scorer.start_rb(rb)
    while remaining and len(group) < max_size:
        values = scorer.step_values(rb, group, remaining)
        best_index = -1
        best_value = current
        for index, value in enumerate(values):
            if value > best_value + 1e-15:
                best_index = index
                best_value = value
        if best_index < 0:
            break
        ue = remaining.pop(best_index)
        group.append(ue)
        scorer.commit(ue)
        current = best_value
    return group, current


def greedy_group_scored(
    candidates: Sequence[int],
    scorer: StepScorer,
    rb: int,
    max_size: int,
) -> List[int]:
    """:func:`greedy_group` driven by a :class:`StepScorer`.

    Extends :func:`greedy_group_linear`'s contract to utilities that are
    *not* plain per-client sums — e.g. the speculative scheduler's dot
    products of cached service-probability vectors and PF weight columns.
    One ``step_values`` call prices every candidate of a greedy step;
    selection (order, ties, the ``1e-15`` rule) is identical to
    :func:`greedy_group` over the scorer's scalar-equivalent utility.
    """
    return _greedy_group_scored(candidates, scorer, rb, max_size)[0]


def build_schedule(
    context: SchedulingContext,
    rb_utility: Callable[[int, Sequence[int]], float],
    max_group_size: int,
    grant_streams: Callable[[int], int],
    rb_weights: Optional[Callable[[int, int], Sequence[float]]] = None,
    rb_utilities: Optional[Dict[int, float]] = None,
) -> SubframeSchedule:
    """Shared RB-walking skeleton (the scalar reference flavour).

    Args:
        context: the subframe's scheduling context.
        rb_utility: ``(rb, group) -> expected utility`` for a candidate
            group on that RB.
        max_group_size: cap on clients per RB (``M`` for conventional
            schedulers, ``~2M`` for the speculative one).
        grant_streams: group size -> stream count the grant's MCS assumes
            (``min(size, M)``: the largest decodable concurrency).
        rb_weights: optional ``(rb, size) -> per-UE-id weight sequence``
            for schedulers whose group utility is a plain sum of per-client
            weights; enables the :func:`greedy_group_linear` fast path
            (identical selections, no per-candidate callable dispatch).
        rb_utilities: optional dict the builder fills with the utility of
            each allocated RB's *admitted* group — the value the greedy
            loop already computed (recomputed only when the K-budget
            trimmed the group), so metrics recording need not re-price
            the burst.
    """
    size_cap = min(max_group_size, MAX_ORTHOGONAL_PILOTS)
    schedule = SubframeSchedule(num_rbs=context.num_rbs)
    distinct: Set[int] = set()
    for rb in range(context.num_rbs):
        if len(distinct) >= context.max_distinct_ues:
            candidates: Sequence[int] = sorted(distinct)
        else:
            candidates = context.ue_ids
        if rb_weights is not None:
            group, current = _greedy_group_linear(
                candidates,
                lambda size, rb=rb: rb_weights(rb, size),
                size_cap,
            )
        else:
            group, current = _greedy_group(
                candidates,
                lambda g, rb=rb: rb_utility(rb, g),
                size_cap,
            )
        # The K-budget must hold for the union across RBs: admit the greedy
        # order's prefix of newcomers that still fits the budget.
        allowed_new = context.max_distinct_ues - len(distinct)
        admitted: List[int] = []
        new_count = 0
        for ue in group:
            if ue in distinct:
                admitted.append(ue)
            elif new_count < allowed_new:
                admitted.append(ue)
                new_count += 1
        if rb_utilities is not None and admitted:
            rb_utilities[rb] = (
                current
                if len(admitted) == len(group)
                else rb_utility(rb, admitted)
            )
        streams = grant_streams(len(admitted))
        for pilot_index, ue in enumerate(admitted):
            schedule.add_grant(
                UplinkGrant(
                    ue_id=ue,
                    rb=rb,
                    rate_bps=context.rate_bps(ue, rb, streams),
                    pilot_index=pilot_index,
                )
            )
            distinct.add(ue)
    return schedule


def _emit_kernel_grants(
    rb_schedules: Dict[int, "RBSchedule"],
    antennas: int,
    col_start: int,
    col_end: int,
    offset: int,
    out_sizes: np.ndarray,
    out_members: np.ndarray,
    out_utils: np.ndarray,
    rates: np.ndarray,
    ids: Optional[List[int]],
    rb_utilities: Optional[Dict[int, float]],
) -> None:
    """Turn one kernel call's outputs into grants.

    ``rates`` is the unboxed ``(streams, slot, col)`` tensor matching the
    weight slab the kernel scanned; the granted rates are boxed in one
    vectorized gather over the zero-padded member block (the gather reads
    each float untouched, and padding entries are sliced away before the
    grants are built).  ``ids`` maps compact slots back to UE ids
    (``None`` when slots already are UE ids).
    """
    counts = out_sizes[col_start:col_end]
    sizes = counts.tolist()
    member_block = out_members[col_start:col_end]
    members = member_block.tolist()
    layers = np.minimum(counts, antennas) - 1
    cols = np.arange(col_start, col_end)
    values = rates[layers[:, None], member_block, cols[:, None]].tolist()
    utils = (
        out_utils[col_start:col_end].tolist()
        if rb_utilities is not None
        else None
    )
    base = offset + col_start
    new = tuple.__new__
    grant = UplinkGrant
    for local, count in enumerate(sizes):
        if not count:
            continue
        slots = members[local]
        if count < len(slots):
            slots = slots[:count]
        rb = base + local
        row = values[local]
        # Fresh RBSchedules straight from `SubframeSchedule.empty`: build
        # the grant list directly (grant_group's start/index bookkeeping
        # is vacuous here — the RB has no prior grants and lazy caches).
        if ids is None:
            rb_schedules[rb].grants = [
                new(grant, (slot, rb, row[pilot], pilot))
                for pilot, slot in enumerate(slots)
            ]
        else:
            rb_schedules[rb].grants = [
                new(grant, (ids[slot], rb, row[pilot], pilot))
                for pilot, slot in enumerate(slots)
            ]
        if utils is not None:
            rb_utilities[rb] = utils[local]


#: Reused kernel scratch buffers, keyed by ``(num_rbs, size_cap, n_slots)``:
#: the admitted-slot flags plus the kernel's per-column output arrays, with
#: their raw pointers.  Scheduling runs single-threaded inside one engine
#: process (the resilience harness forks whole processes), so reuse is safe;
#: the flags are re-zeroed every call and the outputs are fully overwritten
#: for every column the driver reads.
_SCRATCH: Dict[
    Tuple[int, int, int],
    Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int, int, int],
] = {}


def _scratch(num_rbs: int, size_cap: int, n_slots: int):
    key = (num_rbs, size_cap, n_slots)
    entry = _SCRATCH.get(key)
    if entry is None:
        flags = np.zeros(n_slots, dtype=np.uint8)
        out_sizes = np.empty(num_rbs, dtype=np.int64)
        out_members = np.empty((num_rbs, size_cap), dtype=np.int64)
        out_utils = np.empty(num_rbs, dtype=np.float64)
        entry = (
            flags,
            out_sizes,
            out_members,
            out_utils,
            flags.ctypes.data,
            out_sizes.ctypes.data,
            out_members.ctypes.data,
            out_utils.ctypes.data,
        )
        if len(_SCRATCH) > 64:
            _SCRATCH.clear()
        _SCRATCH[key] = entry
    else:
        entry[0][:] = 0
    return entry


def _build_schedule_kernel(
    context: SchedulingContext,
    table: BurstTable,
    size_cap: int,
    rb_utilities: Optional[Dict[int, float]],
    lib,
) -> SubframeSchedule:
    """RB walk driven by the compiled greedy kernel (linear utilities).

    The walk has two phases, matching the interpreted flavour exactly:
    full-width windows until the distinct-client budget saturates, then
    one compact pass over the admitted clients for the remaining RBs.
    The kernel runs the identical greedy recurrence over the unboxed
    weight tensors (see ``_kernel``), so groups, admission, and grants
    are bit-identical to the interpreted scan — no float is ever boxed
    except the granted rates themselves.
    """
    antennas = context.num_antennas
    num_rbs = context.num_rbs
    schedule = SubframeSchedule.empty(num_rbs)
    candidates = sorted(set(context.ue_ids))
    if not candidates:
        return schedule
    rb_schedules = schedule.rb_schedules
    n_slots = table.num_slots
    cand = np.asarray(candidates, dtype=np.int64)
    cand_ptr = cand.ctypes.data
    (
        flags,
        out_sizes,
        out_members,
        out_utils,
        flags_ptr,
        sizes_ptr,
        members_ptr,
        utils_ptr,
    ) = _scratch(num_rbs, size_cap, n_slots)
    fill = lib.greedy_fill
    max_new = context.max_distinct_ues
    rb = 0
    while rb < num_rbs and max_new > 0:
        end = table.ensure_window(rb)
        slab = table.weights_tensor
        max_new = fill(
            slab.ctypes.data,
            n_slots,
            slab.shape[2],
            rb,
            end,
            size_cap,
            antennas,
            cand_ptr,
            cand.shape[0],
            flags_ptr,
            max_new,
            sizes_ptr,
            members_ptr,
            utils_ptr,
        )
        if max_new < 0:
            raise SchedulingError("greedy kernel rejected its inputs")
        _emit_kernel_grants(
            rb_schedules,
            antennas,
            rb,
            end,
            0,
            out_sizes,
            out_members,
            out_utils,
            table.rates_tensor,
            None,
            rb_utilities,
        )
        rb = end
    if rb < num_rbs:
        # Saturated: remaining RBs scan compact columns of the admitted
        # set (slots are positions in the ascending id list, so scan
        # order and tie-breaks match the full-width walk exactly).
        ids = np.nonzero(flags)[0]
        if not ids.size:
            return schedule
        rates, weights = compact_tensors(table, ids, rb)
        weights = np.ascontiguousarray(weights)
        cols = num_rbs - rb
        members = np.ones(ids.size, dtype=np.uint8)
        status = fill(
            weights.ctypes.data,
            ids.size,
            cols,
            0,
            cols,
            size_cap,
            antennas,
            cand_ptr,
            0,
            members.ctypes.data,
            0,
            sizes_ptr,
            members_ptr,
            utils_ptr,
        )
        if status < 0:
            raise SchedulingError("greedy kernel rejected its inputs")
        _emit_kernel_grants(
            rb_schedules,
            antennas,
            0,
            cols,
            rb,
            out_sizes,
            out_members,
            out_utils,
            rates,
            ids.tolist(),
            rb_utilities,
        )
    return schedule


def build_schedule_fast(
    context: SchedulingContext,
    max_group_size: int,
    table: Optional[BurstTable] = None,
    scorer: Optional[StepScorer] = None,
    rb_utilities: Optional[Dict[int, float]] = None,
) -> SubframeSchedule:
    """The vectorized RB-walking flavour: same walk, batched valuation.

    Candidate valuation reads a per-burst :class:`BurstTable` instead of
    calling per-candidate utility closures:

    * ``table.weight_row(streams, rb)`` — per-client PF weights for linear
      utilities (PF, access-aware, oracle); the greedy step for a group of
      size ``k`` reads the single row at ``streams = min(k + 1, M)``;
    * ``scorer`` — a :class:`StepScorer` for non-linear utilities (the
      speculative scheduler's Eqn. 4 dot products); the table then only
      supplies grant rates;
    * ``table.rate_row(streams, rb)`` — grant rates, replacing the
      per-grant ``context.rate_bps`` calls.

    Once the ``K`` distinct-client budget saturates, the linear path
    switches to :class:`~repro.core.scheduling.types.CompactColumns` from
    ``table.compact``: the candidate set is frozen (only already-admitted
    clients may be granted, admission can never trim), so the remaining
    RBs scan ``K``-wide compact rows instead of dense UE-id rows.

    All schedulers share the stream-count rule ``min(size, M)`` (floor 1),
    so it is inlined rather than passed in.  Selections and grants are
    bit-identical to :func:`build_schedule` with the scalar-equivalent
    utility: the table holds the same IEEE floats the scalar path
    computes, and the greedy scan is the same sequential recurrence — the
    acceptance threshold ``best_value + 1e-15`` is hoisted and refreshed
    only when ``best_value`` changes, which is exactly when the scalar
    flavour's recomputed bound changes.
    """
    if table is None:
        raise SchedulingError("build_schedule_fast needs a BurstTable")
    size_cap = min(max_group_size, MAX_ORTHOGONAL_PILOTS)
    if size_cap < 1:
        raise SchedulingError(f"max_size must be positive: {size_cap}")
    if scorer is None:
        lib = kernel()
        if lib is not None and table.num_slots <= KERNEL_MAX_SLOTS:
            return _build_schedule_kernel(
                context, table, size_cap, rb_utilities, lib
            )
    antennas = context.num_antennas
    max_distinct = context.max_distinct_ues
    schedule = SubframeSchedule.empty(context.num_rbs)
    rb_schedules = schedule.rb_schedules
    distinct: Set[int] = set()
    all_candidates = sorted(set(context.ue_ids))
    weight_row = table.weight_row
    compact: Optional[CompactColumns] = None
    saturated_candidates: Optional[List[int]] = None
    for rb in range(context.num_rbs):
        saturated = len(distinct) >= max_distinct
        if saturated and scorer is None:
            # Post-saturation: the candidate set is frozen to the K
            # admitted clients, so admission is the identity and the scan
            # runs over K-wide compact rows (compact index == position in
            # the ascending id list, so scan order and tie-breaks match
            # the full-width walk exactly).
            if compact is None:
                compact = table.compact(sorted(distinct), start=rb)
            ids = compact.ids
            compact_rows = compact.weight_rows
            remaining = list(range(len(ids)))
            group: List[int] = []
            current = 0.0
            while remaining and len(group) < size_cap:
                size = len(group) + 1
                weights = compact_rows[
                    size if size < antennas else antennas
                ][rb]
                base = 0.0
                for member in group:
                    base += weights[member]
                best_index = -1
                best_value = current
                threshold = current + 1e-15
                for index, candidate in enumerate(remaining):
                    value = base + weights[candidate]
                    if value > threshold:
                        best_index = index
                        best_value = value
                        threshold = value + 1e-15
                if best_index < 0:
                    break
                group.append(remaining.pop(best_index))
                current = best_value
            if not group:
                continue
            if rb_utilities is not None:
                rb_utilities[rb] = current
            size = len(group)
            streams = size if size < antennas else antennas
            rates = compact.rate_row(streams, rb)
            rb_schedules[rb].grant_group(
                [ids[candidate] for candidate in group],
                [rates[candidate] for candidate in group],
            )
            continue
        if saturated:
            if saturated_candidates is None:
                saturated_candidates = sorted(distinct)
            remaining = list(saturated_candidates)
        else:
            remaining = list(all_candidates)
        group = []
        current = 0.0
        if scorer is None:
            # Linear utilities: value = (sum of member weights) + w[c].
            while remaining and len(group) < size_cap:
                size = len(group) + 1
                weights = weight_row(
                    size if size < antennas else antennas, rb
                )
                base = 0.0
                for member in group:
                    base += weights[member]
                best_index = -1
                best_value = current
                threshold = current + 1e-15
                for index, ue in enumerate(remaining):
                    value = base + weights[ue]
                    if value > threshold:
                        best_index = index
                        best_value = value
                        threshold = value + 1e-15
                if best_index < 0:
                    break
                group.append(remaining.pop(best_index))
                current = best_value
        else:
            scorer.start_rb(rb)
            while remaining and len(group) < size_cap:
                values = scorer.step_values(rb, group, remaining)
                best_index = -1
                best_value = current
                threshold = current + 1e-15
                for index, value in enumerate(values):
                    if value > threshold:
                        best_index = index
                        best_value = value
                        threshold = value + 1e-15
                if best_index < 0:
                    break
                ue = remaining.pop(best_index)
                group.append(ue)
                scorer.commit(ue)
                current = best_value
        allowed_new = max_distinct - len(distinct)
        admitted: List[int] = []
        new_count = 0
        for ue in group:
            if ue in distinct:
                admitted.append(ue)
            elif new_count < allowed_new:
                admitted.append(ue)
                new_count += 1
        if not admitted:
            continue
        size = len(admitted)
        if rb_utilities is not None:
            if size == len(group):
                rb_utilities[rb] = current
            elif scorer is not None:
                rb_utilities[rb] = scorer.value(rb, admitted)
            else:
                weights = weight_row(
                    size if size < antennas else antennas, rb
                )
                trimmed = 0.0
                for ue in admitted:
                    trimmed += weights[ue]
                rb_utilities[rb] = trimmed
        streams = size if size < antennas else antennas
        rates = table.rate_row(streams, rb)
        rb_schedules[rb].grant_group(
            admitted, [rates[ue] for ue in admitted]
        )
        if new_count:
            distinct.update(admitted)
            saturated_candidates = None
    return schedule
