"""Scheduler base class and the shared greedy per-RB group builder.

All four schedulers (PF, access-aware, speculative, oracle) share the same
skeleton: walk the RBs of the subframe, greedily grow the client group on
each RB by the scheduler-specific expected-utility function, and respect the
control-channel budget of ``K`` distinct clients per subframe.  They differ
only in how a candidate group is valued and how large it may grow.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.core.scheduling.types import SchedulingContext
from repro.errors import SchedulingError
from repro.lte.pilots import MAX_ORTHOGONAL_PILOTS
from repro.lte.resources import SubframeSchedule, UplinkGrant

__all__ = [
    "UplinkScheduler",
    "greedy_group",
    "greedy_group_linear",
    "build_schedule",
]

GroupUtility = Callable[[Sequence[int]], float]


class UplinkScheduler(abc.ABC):
    """Interface: one uplink subframe in, one schedule out."""

    #: Human-readable identifier used in results and reports.
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        """Produce the grants for one uplink subframe."""


def greedy_group(
    candidates: Sequence[int],
    utility: GroupUtility,
    max_size: int,
) -> List[int]:
    """Grow a client group by always adding the best marginal client.

    Mirrors Eqn. 3: starting empty, repeatedly add the client with the
    largest strictly positive incremental utility; stop when none improves
    or the size cap is reached.  Deterministic: ties break toward the
    lowest client id.
    """
    if max_size < 1:
        raise SchedulingError(f"max_size must be positive: {max_size}")
    group: List[int] = []
    current = 0.0
    remaining = sorted(set(candidates))
    while remaining and len(group) < max_size:
        best_ue: Optional[int] = None
        best_value = current
        for ue in remaining:
            value = utility(group + [ue])
            if value > best_value + 1e-15:
                best_ue = ue
                best_value = value
        if best_ue is None:
            break
        group.append(best_ue)
        remaining.remove(best_ue)
        current = best_value
    return group


def greedy_group_linear(
    candidates: Sequence[int],
    weights_for_size: Callable[[int], Sequence[float]],
    max_size: int,
) -> List[int]:
    """:func:`greedy_group` for utilities that are sums of per-client weights.

    When a candidate group's utility is ``sum(w[ue] for ue in group)`` with
    weights that depend only on the group *size* (e.g. PF under the
    size-dependent MU-MIMO stream penalty), each greedy step only needs the
    weight vector for the next size — no per-candidate closure calls.  The
    selection rule (strict ``1e-15`` improvement, sequential scan in
    ascending id order, left-to-right summation) is replicated exactly, so
    the result is identical to :func:`greedy_group` with the equivalent
    group-utility callable.

    ``weights_for_size(size)`` returns a per-client weight sequence indexed
    by UE id, valid for groups of exactly ``size`` members.
    """
    if max_size < 1:
        raise SchedulingError(f"max_size must be positive: {max_size}")
    group: List[int] = []
    current = 0.0
    remaining = sorted(set(candidates))
    while remaining and len(group) < max_size:
        weights = weights_for_size(len(group) + 1)
        base = 0.0
        for member in group:
            base += weights[member]
        best_ue: Optional[int] = None
        best_value = current
        for ue in remaining:
            value = base + weights[ue]
            if value > best_value + 1e-15:
                best_ue = ue
                best_value = value
        if best_ue is None:
            break
        group.append(best_ue)
        remaining.remove(best_ue)
        current = best_value
    return group


def build_schedule(
    context: SchedulingContext,
    rb_utility: Callable[[int, Sequence[int]], float],
    max_group_size: int,
    grant_streams: Callable[[int], int],
    rb_weights: Optional[Callable[[int, int], Sequence[float]]] = None,
) -> SubframeSchedule:
    """Shared RB-walking skeleton.

    Args:
        context: the subframe's scheduling context.
        rb_utility: ``(rb, group) -> expected utility`` for a candidate
            group on that RB.
        max_group_size: cap on clients per RB (``M`` for conventional
            schedulers, ``~2M`` for the speculative one).
        grant_streams: group size -> stream count the grant's MCS assumes
            (``min(size, M)``: the largest decodable concurrency).
        rb_weights: optional ``(rb, size) -> per-UE-id weight sequence``
            for schedulers whose group utility is a plain sum of per-client
            weights; enables the :func:`greedy_group_linear` fast path
            (identical selections, no per-candidate callable dispatch).
    """
    size_cap = min(max_group_size, MAX_ORTHOGONAL_PILOTS)
    schedule = SubframeSchedule(num_rbs=context.num_rbs)
    distinct: Set[int] = set()
    for rb in range(context.num_rbs):
        if len(distinct) >= context.max_distinct_ues:
            candidates: Sequence[int] = sorted(distinct)
        else:
            candidates = context.ue_ids
        if rb_weights is not None:
            group = greedy_group_linear(
                candidates,
                lambda size, rb=rb: rb_weights(rb, size),
                size_cap,
            )
        else:
            group = greedy_group(
                candidates,
                lambda g, rb=rb: rb_utility(rb, g),
                size_cap,
            )
        # The K-budget must hold for the union across RBs: admit the greedy
        # order's prefix of newcomers that still fits the budget.
        allowed_new = context.max_distinct_ues - len(distinct)
        admitted: List[int] = []
        new_count = 0
        for ue in group:
            if ue in distinct:
                admitted.append(ue)
            elif new_count < allowed_new:
                admitted.append(ue)
                new_count += 1
        streams = grant_streams(len(admitted))
        for pilot_index, ue in enumerate(admitted):
            schedule.add_grant(
                UplinkGrant(
                    ue_id=ue,
                    rb=rb,
                    rate_bps=context.rate_bps(ue, rb, streams),
                    pilot_index=pilot_index,
                )
            )
            distinct.add(ue)
    return schedule
