"""The native proportional-fair scheduler (Eqn. 1) — the paper's baseline.

Per RB, pick the group of at most ``M`` clients maximizing
``sum_i r_{i,b,g} / R_i``; with ``M = 1`` this is classic single-stream PF,
with ``M > 1`` it is greedy MU-MIMO user grouping.  No access probabilities
enter: in licensed spectrum this scheduler is efficient, in unlicensed
spectrum its grants silently die on blocked clients.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.scheduling.base import UplinkScheduler, build_schedule
from repro.core.scheduling.types import SchedulingContext
from repro.lte.resources import SubframeSchedule

__all__ = ["ProportionalFairScheduler"]


class ProportionalFairScheduler(UplinkScheduler):
    """Native PF scheduling, SISO and MU-MIMO."""

    name = "pf"

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        def utility(rb: int, group: Sequence[int]) -> float:
            streams = min(len(group), context.num_antennas)
            if streams == 0:
                return 0.0
            return sum(context.pf_weight(ue, rb, streams) for ue in group)

        rb_weights = None
        if context.vectorized:
            # PF's group utility is a plain sum of per-client weights whose
            # value depends only on the group size (via the stream-count
            # SINR penalty), so the linear greedy fast path applies: one
            # vectorized weight matrix per stream count, columns served as
            # plain lists.
            antennas = context.num_antennas
            columns: dict = {}

            def rb_weights(rb: int, size: int) -> Sequence[float]:
                streams = min(size, antennas)
                by_rb = columns.get(streams)
                if by_rb is None:
                    # (num_rbs, num_ues) nested lists: one transpose per
                    # stream count serves every RB of the subframe.
                    by_rb = context.pf_weight_matrix(streams).T.tolist()
                    columns[streams] = by_rb
                return by_rb[rb]

        return build_schedule(
            context,
            rb_utility=utility,
            max_group_size=context.num_antennas,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
            rb_weights=rb_weights,
        )
