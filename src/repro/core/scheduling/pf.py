"""The native proportional-fair scheduler (Eqn. 1) — the paper's baseline.

Per RB, pick the group of at most ``M`` clients maximizing
``sum_i r_{i,b,g} / R_i``; with ``M = 1`` this is classic single-stream PF,
with ``M > 1`` it is greedy MU-MIMO user grouping.  No access probabilities
enter: in licensed spectrum this scheduler is efficient, in unlicensed
spectrum its grants silently die on blocked clients.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.scheduling.base import (
    UplinkScheduler,
    build_schedule,
    build_schedule_fast,
)
from repro.core.scheduling.types import BurstTable, SchedulingContext
from repro.lte.pilots import MAX_ORTHOGONAL_PILOTS
from repro.lte.resources import SubframeSchedule

__all__ = ["ProportionalFairScheduler"]


class ProportionalFairScheduler(UplinkScheduler):
    """Native PF scheduling, SISO and MU-MIMO."""

    name = "pf"

    def __init__(self) -> None:
        #: Schedule calls served by the vectorized flavour (perf-harness
        #: guard against silent legacy fallbacks).
        self.fast_path_schedules = 0

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        if context.vectorized:
            # PF's group utility is a plain sum of per-client weights whose
            # value depends only on the group size (via the stream-count
            # SINR penalty), so the linear fast builder applies directly
            # over the burst's lazily windowed weight table.
            table = BurstTable(
                context, min(context.num_antennas, MAX_ORTHOGONAL_PILOTS)
            )
            self.fast_path_schedules += 1
            return build_schedule_fast(
                context, max_group_size=context.num_antennas, table=table
            )

        def utility(rb: int, group: Sequence[int]) -> float:
            streams = min(len(group), context.num_antennas)
            if streams == 0:
                return 0.0
            return sum(context.pf_weight(ue, rb, streams) for ue in group)

        return build_schedule(
            context,
            rb_utility=utility,
            max_group_size=context.num_antennas,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
        )
