"""Access-aware downlink scheduling (Section 3.7 of the paper).

On the downlink the conflict manifests differently: the eNB transmits, so
a hidden terminal near a client corrupts *reception* (a collision at the
client) rather than suppressing a grant.  Over-scheduling transmissions is
impossible — but the blueprint still pays off: knowing each client's
interference exposure, the eNB can weight its DL schedule toward clients
whose air is likely clean *right now* and avoid wasting subframes on
clients being jammed ("access-aware scheduling for OFDMA and MU-MIMO
transmissions on the DL", Eqn. 5 applied to reception).

The model: a DL transmission to client ``i`` in a subframe succeeds iff no
hidden terminal attached to ``i`` is active (the same binary impact model
as the uplink).  The scheduler maximizes expected delivered PF utility
``sum_i p(i) * r_{i,b} / R_i`` per RB, exactly Eqn. 5.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Set, Tuple

from repro.core.joint.provider import JointAccessProvider
from repro.core.scheduling.base import UplinkScheduler, build_schedule
from repro.core.scheduling.types import SchedulingContext
from repro.lte.resources import SubframeSchedule

__all__ = ["AccessAwareDownlinkScheduler", "downlink_delivered_bits"]


class AccessAwareDownlinkScheduler(UplinkScheduler):
    """Eqn. 5 applied to DL reception success probabilities.

    Structurally identical to the UL access-aware scheduler — the
    probability that client ``i`` can *use* its grant becomes the
    probability that ``i`` can *hear* its transmission — so the class reuses
    the shared RB-walking skeleton.  It never schedules more than ``M``
    streams per RB (over-scheduling transmissions is impossible on DL).
    """

    name = "dl-access-aware"

    def __init__(self, provider: JointAccessProvider) -> None:
        self.provider = provider

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        def utility(rb: int, group: Sequence[int]) -> float:
            streams = min(len(group), context.num_antennas)
            if streams == 0:
                return 0.0
            return sum(
                self.provider.access_probability(ue)
                * context.pf_weight(ue, rb, streams)
                for ue in group
            )

        return build_schedule(
            context,
            rb_utility=utility,
            max_group_size=context.num_antennas,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
        )


def downlink_delivered_bits(
    schedule: SubframeSchedule,
    jammed_ues: Iterable[int],
    subframe_duration_s: float = 1e-3,
) -> Tuple[Dict[int, float], int, int]:
    """Resolve one DL subframe: transmissions to jammed clients are lost.

    Returns ``(delivered_bits_by_ue, rbs_delivered, rbs_lost)``.  This is
    the DL counterpart of the UL reception pipeline: no CCA gate on the
    client side, but a per-client collision when its local interferer is
    active during the subframe.
    """
    jammed: Set[int] = set(jammed_ues)
    delivered: Dict[int, float] = {}
    rbs_delivered = 0
    rbs_lost = 0
    for rb in schedule.allocated_rbs():
        rb_ok = False
        for grant in schedule.rb(rb):
            if grant.ue_id in jammed:
                continue
            delivered[grant.ue_id] = (
                delivered.get(grant.ue_id, 0.0)
                + grant.rate_bps * subframe_duration_s
            )
            rb_ok = True
        if rb_ok:
            rbs_delivered += 1
        else:
            rbs_lost += 1
    return delivered, rbs_delivered, rbs_lost
