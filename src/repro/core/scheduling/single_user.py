"""Single-user fallback scheduler (Section 2.3's side-step).

Scheduling one client per subframe across all RBs avoids the multi-user
under-utilization entirely — if that client is blocked the whole subframe is
lost, but partial waste never occurs — at the price of giving up all
OFDMA/MU-MIMO concurrency gains.  Included as the conservative baseline the
paper argues against.
"""

from __future__ import annotations

from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.types import SchedulingContext
from repro.lte.resources import SubframeSchedule, UplinkGrant

__all__ = ["SingleUserScheduler"]


class SingleUserScheduler(UplinkScheduler):
    """All RBs of the subframe go to the single best PF client."""

    name = "single-user"

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        schedule = SubframeSchedule(num_rbs=context.num_rbs)
        if not context.ue_ids:
            return schedule
        best_ue = max(
            sorted(context.ue_ids),
            key=lambda ue: sum(
                context.pf_weight(ue, rb, 1) for rb in range(context.num_rbs)
            ),
        )
        for rb in range(context.num_rbs):
            schedule.add_grant(
                UplinkGrant(
                    ue_id=best_ue,
                    rb=rb,
                    rate_bps=context.rate_bps(best_ue, rb, 1),
                    pilot_index=0,
                )
            )
        return schedule
