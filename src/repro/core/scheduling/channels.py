"""Channel selection: the degree of freedom ahead of the RB loop.

With a multi-channel plan the scheduler gains a stage *before* resource
blocks are fought over: park each UE on the channel whose blueprint
promises the most access.  Downstream everything is unchanged — the RB
loop, the speculative utility of Eqns. 3–4, and the joint providers all
operate on the *effective* topology the assignment induces (see
:meth:`~repro.topology.multichannel.MultiChannelTopology.effective_topology`),
so the speculative scheduler automatically evaluates its utility against
the blueprint of each UE's assigned channel.

Two assigners cover the interesting extremes:

* :class:`StaticChannelAssigner` — everyone on one fixed channel (or an
  explicit per-UE list): the single-channel baseline, and the thing a
  blueprint-driven assignment must beat.
* :class:`BlueprintChannelAssigner` — greedy per-UE argmax of blueprint
  access probability across the plan's channels, with an optional load
  penalty spreading UEs over equally-clear channels.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import SchedulingError, SpecError
from repro.topology.multichannel import MultiChannelTopology

__all__ = [
    "ChannelAssigner",
    "StaticChannelAssigner",
    "BlueprintChannelAssigner",
    "build_channel_assigner",
]


class ChannelAssigner:
    """Interface: resolve a multi-channel topology into per-UE channels."""

    def assign(self, topology: MultiChannelTopology) -> Tuple[int, ...]:
        """One channel index per UE id."""
        raise NotImplementedError


class StaticChannelAssigner(ChannelAssigner):
    """Fixed assignment: one channel for all, or an explicit per-UE list."""

    def __init__(
        self,
        channel: int = 0,
        ue_channels: Optional[Sequence[int]] = None,
    ) -> None:
        self.channel = int(channel)
        self.ue_channels = (
            tuple(int(c) for c in ue_channels)
            if ue_channels is not None
            else None
        )

    def assign(self, topology: MultiChannelTopology) -> Tuple[int, ...]:
        if self.ue_channels is not None:
            if len(self.ue_channels) != topology.num_ues:
                raise SchedulingError(
                    f"{len(self.ue_channels)} explicit channel assignments "
                    f"for {topology.num_ues} UEs"
                )
            for channel in self.ue_channels:
                topology.plan._check_channel(channel)
            return self.ue_channels
        topology.plan._check_channel(self.channel)
        return (self.channel,) * topology.num_ues


class BlueprintChannelAssigner(ChannelAssigner):
    """Greedy blueprint-driven selection, one UE at a time in id order.

    Each UE lands on the channel maximizing its blueprint access
    probability ``p(i)`` (from that channel's view of the shared terminal
    population), discounted by ``load_penalty`` per UE already parked
    there.  A zero penalty is pure per-UE argmax; a positive one trades a
    little individual access probability for spreading the cell across
    equally-clear channels (more simultaneous TxOPs to schedule into).
    Ties break toward the lowest channel index, so the assignment is
    deterministic and, on a 1-channel plan, degenerates to the static
    all-on-0 baseline.
    """

    def __init__(self, load_penalty: float = 0.0) -> None:
        if load_penalty < 0.0:
            raise SchedulingError(
                f"load_penalty must be >= 0: {load_penalty}"
            )
        self.load_penalty = float(load_penalty)

    def assign(self, topology: MultiChannelTopology) -> Tuple[int, ...]:
        views = [
            topology.channel_view(channel)
            for channel in range(topology.num_channels)
        ]
        load = [0] * topology.num_channels
        assignment = []
        for ue in range(topology.num_ues):
            best_channel = 0
            best_utility = -1.0
            for channel, view in enumerate(views):
                utility = view.access_probability(ue) / (
                    1.0 + self.load_penalty * load[channel]
                )
                if utility > best_utility + 1e-12:
                    best_utility = utility
                    best_channel = channel
            assignment.append(best_channel)
            load[best_channel] += 1
        return tuple(assignment)


def build_channel_assigner(
    kind: str,
    channel: int = 0,
    ue_channels: Optional[Sequence[int]] = None,
    load_penalty: float = 0.0,
) -> ChannelAssigner:
    """Resolve a spec-level assignment kind into an assigner instance."""
    if kind == "static":
        return StaticChannelAssigner(channel=channel, ue_channels=ue_channels)
    if kind == "blueprint":
        return BlueprintChannelAssigner(load_penalty=load_penalty)
    raise SpecError(
        f"unknown channel assignment kind {kind!r}; "
        f"known: ['blueprint', 'static']"
    )
