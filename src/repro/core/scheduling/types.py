"""Shared scheduler-facing types: the per-subframe scheduling context.

Schedulers are pure functions from a :class:`SchedulingContext` to a
:class:`~repro.lte.resources.SubframeSchedule`; everything they may consult
(instantaneous channel state, PF averages, antenna count, control-channel
limits) travels in the context, which keeps every scheduler interchangeable
inside the simulation engine and the BLU controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.lte import mcs
from repro.lte.phy import mumimo_sinr_penalty_db

__all__ = ["SchedulingContext"]


@dataclass
class SchedulingContext:
    """Everything a scheduler may look at for one uplink subframe.

    Attributes:
        subframe: absolute subframe index.
        num_rbs: allocation units to fill (RBs, or RB groups).
        num_antennas: eNB receive antennas ``M``.
        ue_ids: schedulable clients (with data to send).
        sinr_db: per-UE array of per-RB single-stream SINRs (dB), as known
            to the eNB from the latest decoded transmissions.
        avg_throughput_bps: PF average ``R_i`` per client.
        max_distinct_ues: control-channel limit ``K`` on distinct clients
            granted in one subframe (paper: "typically less than 10").
        clear_ues: genie information — the set of clients whose CCA will
            pass *this* subframe.  ``None`` for every realistic scheduler;
            the oracle baseline requires it.
    """

    subframe: int
    num_rbs: int
    num_antennas: int
    ue_ids: Tuple[int, ...]
    sinr_db: Mapping[int, np.ndarray]
    avg_throughput_bps: Mapping[int, float]
    max_distinct_ues: int = 10
    clear_ues: Optional[FrozenSet[int]] = None
    #: Physical RBs per allocation unit: rates scale linearly with it.
    rate_scale: float = 1.0
    #: Link-adaptation backoff (dB): grants are issued at the CQI supported
    #: ``link_margin_db`` below the reported SINR, so ordinary fading drift
    #: within a grant burst rarely drops a stream (outage becomes the
    #: exception, not the rule).
    link_margin_db: float = 2.0
    #: When True, ``rate_bps`` reads from a whole-cell rate matrix computed
    #: in one vectorized pass (bit-identical values); when False it uses
    #: the original per-(ue, rb) scalar path.  The simulation engine's
    #: legacy reference path sets this to False.
    vectorized: bool = True
    _rate_cache: Dict[Tuple[int, int, int], float] = field(
        default_factory=dict, repr=False
    )
    _sinr_matrix: Optional[np.ndarray] = field(
        default=None, init=False, repr=False
    )
    _rate_matrices: Dict[int, np.ndarray] = field(
        default_factory=dict, init=False, repr=False
    )
    _pf_weight_matrices: Dict[int, np.ndarray] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.num_rbs < 1:
            raise SchedulingError(f"num_rbs must be positive: {self.num_rbs}")
        if self.num_antennas < 1:
            raise SchedulingError(
                f"num_antennas must be positive: {self.num_antennas}"
            )
        if self.max_distinct_ues < 1:
            raise SchedulingError(
                f"max_distinct_ues must be positive: {self.max_distinct_ues}"
            )
        for ue in self.ue_ids:
            if ue not in self.sinr_db:
                raise SchedulingError(f"no SINR state for UE {ue}")
            if len(self.sinr_db[ue]) != self.num_rbs:
                raise SchedulingError(
                    f"UE {ue} SINR vector has {len(self.sinr_db[ue])} entries, "
                    f"expected {self.num_rbs}"
                )
            if ue not in self.avg_throughput_bps:
                raise SchedulingError(f"no PF average for UE {ue}")

    def _sinr_by_id(self) -> np.ndarray:
        """Dense ``(max_ue_id + 1, num_rbs)`` SINR matrix (rows without a
        UE are ``-inf``, i.e. rate 0; they are never consulted)."""
        if self._sinr_matrix is None:
            ids = sorted(self.sinr_db)
            size = ids[-1] + 1 if ids else 0
            matrix = np.full((size, self.num_rbs), -np.inf)
            for ue in ids:
                matrix[ue] = np.asarray(self.sinr_db[ue], dtype=float)
            self._sinr_matrix = matrix
        return self._sinr_matrix

    def rate_matrix(self, streams: int = 1) -> np.ndarray:
        """All ``r_{i,b}`` at one stream count, as a dense-by-UE-id matrix.

        One vectorized CQI pass over the whole cell; entries are
        bit-identical to the scalar :meth:`rate_bps` (same SINR arithmetic,
        same CQI bisection, same scaling order).
        """
        cached = self._rate_matrices.get(streams)
        if cached is None:
            penalty = mumimo_sinr_penalty_db(streams, self.num_antennas)
            shifted = (self._sinr_by_id() + penalty) - self.link_margin_db
            cached = self.rate_scale * mcs.rb_rate_bps_array(shifted)
            self._rate_matrices[streams] = cached
        return cached

    def pf_weight_matrix(self, streams: int = 1) -> np.ndarray:
        """All PF marginal utilities ``r_{i,b} / R_i`` as one matrix."""
        cached = self._pf_weight_matrices.get(streams)
        if cached is None:
            rates = self.rate_matrix(streams)
            averages = np.ones(rates.shape[0])
            for ue, avg_bps in self.avg_throughput_bps.items():
                if 0 <= ue < len(averages):
                    averages[ue] = max(avg_bps, 1.0)
            cached = rates / averages[:, None]
            self._pf_weight_matrices[streams] = cached
        return cached

    def rate_bps(self, ue: int, rb: int, streams: int = 1) -> float:
        """``r_{i,b}`` at a given concurrent-stream count (memoized)."""
        key = (ue, rb, streams)
        cached = self._rate_cache.get(key)
        if cached is None:
            if self.vectorized:
                cached = float(self.rate_matrix(streams)[ue, rb])
            else:
                penalty = mumimo_sinr_penalty_db(streams, self.num_antennas)
                sinr = (
                    float(self.sinr_db[ue][rb]) + penalty - self.link_margin_db
                )
                cached = self.rate_scale * mcs.rb_rate_bps(sinr)
            self._rate_cache[key] = cached
        return cached

    def pf_weight(self, ue: int, rb: int, streams: int = 1) -> float:
        """The PF marginal utility ``r_{i,b} / R_i``."""
        average = max(self.avg_throughput_bps[ue], 1.0)
        return self.rate_bps(ue, rb, streams) / average
