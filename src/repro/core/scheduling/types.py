"""Shared scheduler-facing types: the per-subframe scheduling context.

Schedulers are pure functions from a :class:`SchedulingContext` to a
:class:`~repro.lte.resources.SubframeSchedule`; everything they may consult
(instantaneous channel state, PF averages, antenna count, control-channel
limits) travels in the context, which keeps every scheduler interchangeable
inside the simulation engine and the BLU controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.lte import mcs
from repro.lte.phy import mumimo_sinr_penalty_db

__all__ = [
    "SchedulingContext",
    "BurstTable",
    "CompactColumns",
    "compact_tensors",
]


@dataclass
class SchedulingContext:
    """Everything a scheduler may look at for one uplink subframe.

    Attributes:
        subframe: absolute subframe index.
        num_rbs: allocation units to fill (RBs, or RB groups).
        num_antennas: eNB receive antennas ``M``.
        ue_ids: schedulable clients (with data to send).
        sinr_db: per-UE array of per-RB single-stream SINRs (dB), as known
            to the eNB from the latest decoded transmissions.
        avg_throughput_bps: PF average ``R_i`` per client.
        max_distinct_ues: control-channel limit ``K`` on distinct clients
            granted in one subframe (paper: "typically less than 10").
        clear_ues: genie information — the set of clients whose CCA will
            pass *this* subframe.  ``None`` for every realistic scheduler;
            the oracle baseline requires it.
    """

    subframe: int
    num_rbs: int
    num_antennas: int
    ue_ids: Tuple[int, ...]
    sinr_db: Mapping[int, np.ndarray]
    avg_throughput_bps: Mapping[int, float]
    max_distinct_ues: int = 10
    clear_ues: Optional[FrozenSet[int]] = None
    #: Physical RBs per allocation unit: rates scale linearly with it.
    rate_scale: float = 1.0
    #: Link-adaptation backoff (dB): grants are issued at the CQI supported
    #: ``link_margin_db`` below the reported SINR, so ordinary fading drift
    #: within a grant burst rarely drops a stream (outage becomes the
    #: exception, not the rule).
    link_margin_db: float = 2.0
    #: When True, ``rate_bps`` reads from a whole-cell rate matrix computed
    #: in one vectorized pass (bit-identical values); when False it uses
    #: the original per-(ue, rb) scalar path.  The simulation engine's
    #: legacy reference path sets this to False.
    vectorized: bool = True
    #: Optional pre-built dense ``(max_ue_id + 1, num_rbs)`` SINR matrix
    #: whose rows match ``sinr_db`` exactly (the engine's fast path hands
    #: over its CSI snapshot directly, skipping the per-UE row copies).
    sinr_matrix: Optional[np.ndarray] = None
    _rate_cache: Dict[Tuple[int, int, int], float] = field(
        default_factory=dict, repr=False
    )
    _sinr_matrix: Optional[np.ndarray] = field(
        default=None, init=False, repr=False
    )
    _rate_matrices: Dict[int, np.ndarray] = field(
        default_factory=dict, init=False, repr=False
    )
    _pf_weight_matrices: Dict[int, np.ndarray] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.num_rbs < 1:
            raise SchedulingError(f"num_rbs must be positive: {self.num_rbs}")
        if self.num_antennas < 1:
            raise SchedulingError(
                f"num_antennas must be positive: {self.num_antennas}"
            )
        if self.max_distinct_ues < 1:
            raise SchedulingError(
                f"max_distinct_ues must be positive: {self.max_distinct_ues}"
            )
        if self.sinr_matrix is not None:
            # The engine's fast path hands over its own CSI snapshot; the
            # per-UE consistency checks below would re-validate what the
            # engine already guarantees, on every scheduling call.
            return
        for ue in self.ue_ids:
            if ue not in self.sinr_db:
                raise SchedulingError(f"no SINR state for UE {ue}")
            if len(self.sinr_db[ue]) != self.num_rbs:
                raise SchedulingError(
                    f"UE {ue} SINR vector has {len(self.sinr_db[ue])} entries, "
                    f"expected {self.num_rbs}"
                )
            if ue not in self.avg_throughput_bps:
                raise SchedulingError(f"no PF average for UE {ue}")

    @classmethod
    def trusted(
        cls,
        subframe: int,
        num_rbs: int,
        num_antennas: int,
        ue_ids: Tuple[int, ...],
        sinr_db: Mapping[int, np.ndarray],
        sinr_matrix: np.ndarray,
        avg_throughput_bps: Mapping[int, float],
        max_distinct_ues: int,
        clear_ues: Optional[FrozenSet[int]],
        rate_scale: float,
        link_margin_db: float,
    ) -> "SchedulingContext":
        """Hot-path constructor for the engine's vectorized flavour.

        Equivalent to the dataclass constructor with ``vectorized=True``
        and a pre-built ``sinr_matrix`` (whose presence already skips the
        per-UE validation), but bypasses the generated ``__init__``
        machinery; the engine guarantees the invariants the skipped
        validation would re-check.
        """
        self = object.__new__(cls)
        self.subframe = subframe
        self.num_rbs = num_rbs
        self.num_antennas = num_antennas
        self.ue_ids = ue_ids
        self.sinr_db = sinr_db
        self.avg_throughput_bps = avg_throughput_bps
        self.max_distinct_ues = max_distinct_ues
        self.clear_ues = clear_ues
        self.rate_scale = rate_scale
        self.link_margin_db = link_margin_db
        self.vectorized = True
        self.sinr_matrix = sinr_matrix
        self._rate_cache = {}
        self._sinr_matrix = None
        self._rate_matrices = {}
        self._pf_weight_matrices = {}
        return self

    def _sinr_by_id(self) -> np.ndarray:
        """Dense ``(max_ue_id + 1, num_rbs)`` SINR matrix (rows without a
        UE are ``-inf``, i.e. rate 0; they are never consulted)."""
        if self._sinr_matrix is None:
            if self.sinr_matrix is not None:
                self._sinr_matrix = np.asarray(self.sinr_matrix, dtype=float)
            else:
                ids = sorted(self.sinr_db)
                size = ids[-1] + 1 if ids else 0
                matrix = np.full((size, self.num_rbs), -np.inf)
                for ue in ids:
                    matrix[ue] = np.asarray(self.sinr_db[ue], dtype=float)
                self._sinr_matrix = matrix
        return self._sinr_matrix

    def rate_matrix(self, streams: int = 1) -> np.ndarray:
        """All ``r_{i,b}`` at one stream count, as a dense-by-UE-id matrix.

        One vectorized CQI pass over the whole cell; entries are
        bit-identical to the scalar :meth:`rate_bps` (same SINR arithmetic,
        same CQI bisection, same scaling order).
        """
        cached = self._rate_matrices.get(streams)
        if cached is None:
            penalty = mumimo_sinr_penalty_db(streams, self.num_antennas)
            shifted = (self._sinr_by_id() + penalty) - self.link_margin_db
            cached = self.rate_scale * mcs.rb_rate_bps_array(shifted)
            self._rate_matrices[streams] = cached
        return cached

    def pf_weight_matrix(self, streams: int = 1) -> np.ndarray:
        """All PF marginal utilities ``r_{i,b} / R_i`` as one matrix."""
        cached = self._pf_weight_matrices.get(streams)
        if cached is None:
            rates = self.rate_matrix(streams)
            averages = self._averages_by_id(rates.shape[0])
            cached = rates / averages[:, None]
            self._pf_weight_matrices[streams] = cached
        return cached

    def _averages_by_id(self, num_ues: int) -> np.ndarray:
        averages = np.ones(num_ues)
        for ue, avg_bps in self.avg_throughput_bps.items():
            if 0 <= ue < num_ues:
                averages[ue] = max(avg_bps, 1.0)
        return averages

    @property
    def num_ue_slots(self) -> int:
        """Length of dense per-UE-id vectors (``max_ue_id + 1``)."""
        return self._sinr_by_id().shape[0]

    def rate_bps(self, ue: int, rb: int, streams: int = 1) -> float:
        """``r_{i,b}`` at a given concurrent-stream count (memoized)."""
        key = (ue, rb, streams)
        cached = self._rate_cache.get(key)
        if cached is None:
            if self.vectorized:
                cached = float(self.rate_matrix(streams)[ue, rb])
            else:
                penalty = mumimo_sinr_penalty_db(streams, self.num_antennas)
                sinr = (
                    float(self.sinr_db[ue][rb]) + penalty - self.link_margin_db
                )
                cached = self.rate_scale * mcs.rb_rate_bps(sinr)
            self._rate_cache[key] = cached
        return cached

    def pf_weight(self, ue: int, rb: int, streams: int = 1) -> float:
        """The PF marginal utility ``r_{i,b} / R_i``."""
        average = max(self.avg_throughput_bps[ue], 1.0)
        return self.rate_bps(ue, rb, streams) / average


#: Stream-penalty vectors are pure functions of (antennas, max_streams);
#: memoized so per-burst table construction skips the scalar dB math.
_PENALTY_VECTORS: Dict[Tuple[int, int], np.ndarray] = {}


class BurstTable:
    """Batched per-burst PF weights and grant rates, materialized lazily.

    The rate-dependent half of the Eqn. 4 factoring, batched: everything
    that depends only on this burst's CSI snapshot — grant rates
    ``r_{i,b,g}`` and PF weights ``r_{i,b,g} / R_i`` for every stream count
    ``1..max_streams`` — is computed in a few vectorized CQI passes and
    exposed as plain Python rows (``row[ue_id] -> float``) the greedy scan
    reads at list-indexing speed.

    Three layers of laziness keep the per-call cost proportional to what
    the schedule actually touches rather than to ``S x U x R``:

    * **RB windows** — weight rows are computed in geometrically growing
      RB windows, the first sized to roughly the RBs needed to exhaust the
      control-channel budget ``K``; schedules that saturate early never
      pay for the rest of the grid at full client width.
    * **Candidate compaction** — :meth:`compact` re-derives columns over
      just the distinct admitted clients, shrinking the CQI pass and every
      subsequent scan row from ``U`` to ``K`` entries.
    * **Row boxing** — weight and rate rows stay unboxed ndarray data
      until an interpreted scan or a grant actually needs them (float
      boxing is the dominant cost of preparing full tables eagerly, and
      the compiled greedy kernel reads the tensors directly without ever
      boxing).

    Every element is produced by the same IEEE operation sequence as the
    scalar ``SchedulingContext.pf_weight`` / ``rate_bps`` path, so values
    are bit-identical: windowing and compaction only change which elements
    are computed *together*, never the arithmetic on any one element.

    ``scale`` and ``offset`` are optional dense per-UE-id vectors applied
    to weight rows as ``scale[i] * w`` then ``w + offset[i]``:

    * the access-aware scheduler passes access probabilities as ``scale``
      (IEEE multiplication is commutative bit-for-bit, so this equals its
      scalar ``p(i) * w``);
    * the oracle passes ``0 / -inf`` as ``offset`` to veto blocked clients
      (finite ``w + -inf = -inf`` exactly, and ``w + 0.0 = w`` bitwise for
      the non-negative weights here — no ``-0.0`` can occur).

    Grant rates are never scaled or masked; both vectors shape selection
    only.
    """

    __slots__ = (
        "_sinr",
        "_averages",
        "_penalties",
        "_margin",
        "_rate_scale",
        "_scale",
        "_offset",
        "_num_rbs",
        "_max_streams",
        "_window",
        "_end",
        "_weights",
        "_weight_rows",
        "_rates",
        "_rate_rows",
    )

    def __init__(
        self,
        context: SchedulingContext,
        max_streams: int,
        scale: Optional[np.ndarray] = None,
        offset: Optional[np.ndarray] = None,
    ) -> None:
        if max_streams < 1:
            raise SchedulingError(
                f"max_streams must be positive: {max_streams}"
            )
        sinr = context._sinr_by_id()
        num_ues = sinr.shape[0]
        self._sinr = sinr
        self._averages = context._averages_by_id(num_ues)
        key = (context.num_antennas, max_streams)
        penalties = _PENALTY_VECTORS.get(key)
        if penalties is None:
            penalties = np.array(
                [
                    mumimo_sinr_penalty_db(s, context.num_antennas)
                    for s in range(1, max_streams + 1)
                ]
            )
            _PENALTY_VECTORS[key] = penalties
        self._penalties = penalties
        self._margin = context.link_margin_db
        self._rate_scale = context.rate_scale
        self._scale = scale
        self._offset = offset
        self._num_rbs = context.num_rbs
        self._max_streams = max_streams
        # Window policy: on small grids the fixed per-pass numpy dispatch
        # dominates the marginal per-element work, so one full-grid pass
        # beats windowing (and lets the kernel driver schedule everything
        # in a single call).  On large grids, windows sized to the RBs
        # the distinct-client budget K typically survives avoid computing
        # full-width columns the saturated walk never reads: each
        # pre-saturation RB usually admits a full group of newcomers, so
        # the budget saturates in about ceil(K / group size) RBs.
        # Correctness does not depend on the guess, only the number of
        # batched passes does (undershooting grows geometrically,
        # overshooting costs only vectorized arithmetic).
        if num_ues * self._num_rbs <= 600:
            self._window = self._num_rbs
        else:
            saturation_rbs = -(-context.max_distinct_ues // max_streams)
            self._window = min(self._num_rbs, saturation_rbs)
        self._end = 0
        self._weights: Optional[np.ndarray] = None
        self._weight_rows: Optional[List[Optional[List[float]]]] = None
        self._rates: Optional[np.ndarray] = None
        self._rate_rows: Optional[List[Optional[List[float]]]] = None

    def _extend_to(self, rb: int) -> None:
        """Compute all rows of the next RB window (covering ``rb``)."""
        start = self._end
        grown = self._window if start == 0 else 2 * start
        end = min(self._num_rbs, max(rb + 1, grown))
        shifted = (
            self._sinr[None, :, start:end] + self._penalties[:, None, None]
        ) - self._margin
        rates = mcs.scaled_rb_rate_bps_array(shifted, self._rate_scale)
        weights = rates / self._averages[None, :, None]
        if self._scale is not None:
            weights = self._scale[None, :, None] * weights
        if self._offset is not None:
            weights = weights + self._offset[None, :, None]
        if start == 0:
            # First window: adopt the freshly computed slabs directly
            # (contiguity is what the compiled kernel strides over).
            self._rates = np.ascontiguousarray(rates)
            self._weights = np.ascontiguousarray(weights)
        else:
            shape = (self._max_streams, self._sinr.shape[0], end)
            grown_rates = np.empty(shape)
            grown_rates[:, :, :start] = self._rates
            grown_rates[:, :, start:] = rates
            self._rates = grown_rates
            grown_weights = np.empty(shape)
            grown_weights[:, :, :start] = self._weights
            grown_weights[:, :, start:] = weights
            self._weights = grown_weights
        self._end = end

    def ensure_window(self, rb: int) -> int:
        """Extend the computed RB window to cover ``rb``; return its end."""
        if rb >= self._end:
            self._extend_to(rb)
        return self._end

    @property
    def num_slots(self) -> int:
        """Dense per-UE-id row length (``max_ue_id + 1``)."""
        return self._sinr.shape[0]

    @property
    def weights_tensor(self) -> np.ndarray:
        """Unboxed ``(streams, slot, rb)`` weight slab covering the computed
        RB window ``[0, ensure_window(rb))`` — its third dimension is the
        window end, not ``num_rbs``."""
        return self._weights

    @property
    def rates_tensor(self) -> np.ndarray:
        """Unboxed ``(streams, slot, rb)`` grant-rate slab (same window)."""
        return self._rates

    def weight_row(self, streams: int, rb: int) -> List[float]:
        """Per-UE-id weight row for one (stream count, RB), boxed."""
        rows = self._weight_rows
        if rows is None:
            rows = self._weight_rows = [None] + [
                [None] * self._num_rbs for _ in range(self._max_streams)
            ]
        row = rows[streams][rb]
        if row is None:
            if rb >= self._end:
                self._extend_to(rb)
            row = self._weights[streams - 1, :, rb].tolist()
            rows[streams][rb] = row
        return row

    def rate_row(self, streams: int, rb: int) -> List[float]:
        """Per-UE-id grant-rate row for one (stream count, RB), boxed."""
        rows = self._rate_rows
        if rows is None:
            rows = self._rate_rows = [None] + [
                [None] * self._num_rbs for _ in range(self._max_streams)
            ]
        streams_rows = rows[streams]
        row = streams_rows[rb]
        if row is None:
            if rb >= self._end:
                self._extend_to(rb)
            row = self._rates[streams - 1, :, rb].tolist()
            streams_rows[rb] = row
        return row

    def compact(self, ids: Sequence[int], start: int = 0) -> "CompactColumns":
        """Columns restricted to ``ids`` (ascending) and RBs ``>= start``,
        in one CQI pass."""
        return CompactColumns(self, ids, start)


def compact_tensors(
    table: BurstTable, index: np.ndarray, start: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Unboxed ``(rates, weights)`` tensors over gathered client rows.

    Shapes are ``(streams, len(index), num_rbs - start)``.  The gather
    copies input floats untouched and the elementwise arithmetic is the
    identical operation sequence the full-width table runs, so every entry
    is bit-identical to the corresponding full-width entry — restricting
    the RB range only changes which elements are computed, never the
    arithmetic on any one of them.
    """
    shifted = (
        table._sinr[index][:, start:][None, :, :]
        + table._penalties[:, None, None]
    ) - table._margin
    rates = mcs.scaled_rb_rate_bps_array(shifted, table._rate_scale)
    weights = rates / table._averages[index][None, :, None]
    if table._scale is not None:
        weights = table._scale[index][None, :, None] * weights
    if table._offset is not None:
        weights = weights + table._offset[index][None, :, None]
    return rates, weights


class CompactColumns:
    """Weight/rate columns over a fixed ascending candidate id list.

    Produced by :meth:`BurstTable.compact` once the subframe's distinct-UE
    budget saturates: rows are indexed by *compact index* (position in
    ``ids``) rather than UE id, so post-saturation greedy scans walk ``K``
    entries instead of the dense UE-id range.  ``start`` trims the CQI
    pass to the RBs the saturated walk can still visit; row lists stay
    indexed by global RB (entries below ``start`` are ``None`` and are
    never consulted).  Entries are bit-identical to the full-width
    table's (see :func:`compact_tensors`).
    """

    __slots__ = ("ids", "start", "weight_rows", "_rates", "_rate_rows")

    def __init__(
        self, table: BurstTable, ids: Sequence[int], start: int = 0
    ) -> None:
        self.ids = list(ids)
        self.start = start
        index = np.asarray(self.ids, dtype=int)
        rates, weights = compact_tensors(table, index, start)
        pad: List[Optional[List[float]]] = [None] * start
        self.weight_rows = [None] + [
            pad + rows for rows in weights.transpose(0, 2, 1).tolist()
        ]
        self._rates = rates
        self._rate_rows: List[Optional[List[Optional[List[float]]]]] = [
            None
        ] + [[None] * rates.shape[2] for _ in range(rates.shape[0])]

    def rate_row(self, streams: int, rb: int) -> List[float]:
        """Compact-indexed grant-rate row for one (stream count, RB)."""
        rows = self._rate_rows[streams]
        column = rb - self.start
        row = rows[column]
        if row is None:
            row = self._rates[streams - 1, :, column].tolist()
            rows[column] = row
        return row
