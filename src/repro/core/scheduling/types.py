"""Shared scheduler-facing types: the per-subframe scheduling context.

Schedulers are pure functions from a :class:`SchedulingContext` to a
:class:`~repro.lte.resources.SubframeSchedule`; everything they may consult
(instantaneous channel state, PF averages, antenna count, control-channel
limits) travels in the context, which keeps every scheduler interchangeable
inside the simulation engine and the BLU controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.lte import mcs
from repro.lte.phy import mumimo_sinr_penalty_db

__all__ = ["SchedulingContext"]


@dataclass
class SchedulingContext:
    """Everything a scheduler may look at for one uplink subframe.

    Attributes:
        subframe: absolute subframe index.
        num_rbs: allocation units to fill (RBs, or RB groups).
        num_antennas: eNB receive antennas ``M``.
        ue_ids: schedulable clients (with data to send).
        sinr_db: per-UE array of per-RB single-stream SINRs (dB), as known
            to the eNB from the latest decoded transmissions.
        avg_throughput_bps: PF average ``R_i`` per client.
        max_distinct_ues: control-channel limit ``K`` on distinct clients
            granted in one subframe (paper: "typically less than 10").
        clear_ues: genie information — the set of clients whose CCA will
            pass *this* subframe.  ``None`` for every realistic scheduler;
            the oracle baseline requires it.
    """

    subframe: int
    num_rbs: int
    num_antennas: int
    ue_ids: Tuple[int, ...]
    sinr_db: Mapping[int, np.ndarray]
    avg_throughput_bps: Mapping[int, float]
    max_distinct_ues: int = 10
    clear_ues: Optional[FrozenSet[int]] = None
    #: Physical RBs per allocation unit: rates scale linearly with it.
    rate_scale: float = 1.0
    #: Link-adaptation backoff (dB): grants are issued at the CQI supported
    #: ``link_margin_db`` below the reported SINR, so ordinary fading drift
    #: within a grant burst rarely drops a stream (outage becomes the
    #: exception, not the rule).
    link_margin_db: float = 2.0
    _rate_cache: Dict[Tuple[int, int, int], float] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.num_rbs < 1:
            raise SchedulingError(f"num_rbs must be positive: {self.num_rbs}")
        if self.num_antennas < 1:
            raise SchedulingError(
                f"num_antennas must be positive: {self.num_antennas}"
            )
        if self.max_distinct_ues < 1:
            raise SchedulingError(
                f"max_distinct_ues must be positive: {self.max_distinct_ues}"
            )
        for ue in self.ue_ids:
            if ue not in self.sinr_db:
                raise SchedulingError(f"no SINR state for UE {ue}")
            if len(self.sinr_db[ue]) != self.num_rbs:
                raise SchedulingError(
                    f"UE {ue} SINR vector has {len(self.sinr_db[ue])} entries, "
                    f"expected {self.num_rbs}"
                )
            if ue not in self.avg_throughput_bps:
                raise SchedulingError(f"no PF average for UE {ue}")

    def rate_bps(self, ue: int, rb: int, streams: int = 1) -> float:
        """``r_{i,b}`` at a given concurrent-stream count (memoized)."""
        key = (ue, rb, streams)
        cached = self._rate_cache.get(key)
        if cached is None:
            penalty = mumimo_sinr_penalty_db(streams, self.num_antennas)
            sinr = float(self.sinr_db[ue][rb]) + penalty - self.link_margin_db
            cached = self.rate_scale * mcs.rb_rate_bps(sinr)
            self._rate_cache[key] = cached
        return cached

    def pf_weight(self, ue: int, rb: int, streams: int = 1) -> float:
        """The PF marginal utility ``r_{i,b} / R_i``."""
        average = max(self.avg_throughput_bps[ue], 1.0)
        return self.rate_bps(ue, rb, streams) / average
