"""Proportional-fair bookkeeping: EWMA averages and fairness indices.

The PF average follows the paper's update,
``R_i(t) = (1/alpha) * served_rate_i(t) + (1 - 1/alpha) * R_i(t-1)``,
driven by the rate actually *delivered* (blocked or collided grants serve
zero), which is what makes starved clients' marginal utility rise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.lte import consts

__all__ = ["PfAverageTracker", "jain_fairness_index"]


class PfAverageTracker:
    """Tracks ``R_i`` for a set of clients across subframes."""

    def __init__(
        self,
        ue_ids: Iterable[int],
        alpha: float = consts.DEFAULT_PF_ALPHA,
        initial_bps: float = 1e4,
    ) -> None:
        if alpha <= 1.0:
            raise ConfigurationError(f"alpha must exceed 1: {alpha}")
        if initial_bps <= 0.0:
            raise ConfigurationError(
                f"initial average must be positive: {initial_bps}"
            )
        self.alpha = float(alpha)
        self._avg: Dict[int, float] = {int(u): float(initial_bps) for u in ue_ids}
        if not self._avg:
            raise ConfigurationError("tracker needs at least one UE")

    def update(self, served_bps: Mapping[int, float]) -> None:
        """Apply one subframe's served rates (absent clients served 0)."""
        inv = 1.0 / self.alpha
        for ue in self._avg:
            served = float(served_bps.get(ue, 0.0))
            self._avg[ue] = inv * served + (1.0 - inv) * self._avg[ue]

    def average(self, ue: int) -> float:
        try:
            return self._avg[ue]
        except KeyError:
            raise ConfigurationError(f"unknown UE id {ue}")

    def averages(self) -> Dict[int, float]:
        return dict(self._avg)

    @property
    def ue_ids(self) -> Sequence[int]:
        return sorted(self._avg)


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 is perfectly fair, 1/n maximally unfair."""
    if not values:
        raise ConfigurationError("fairness index of an empty sequence")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return total * total / (len(values) * squares)
