"""Compiled greedy-scan kernel for the vectorized schedule builder.

The fast flavour's bottleneck is not arithmetic but *boxing*: the greedy
chain scan (strict ``1e-15`` improvement over a running best, ascending id
order) must stay a sequential recurrence to keep near-tie behaviour
reproducible, and in pure Python that means materializing every weight as
a heap-allocated float just to compare it.  This module compiles the same
recurrence to native code once per machine and drives it over the unboxed
``float64`` weight tensors directly.

Bit-exactness: the kernel performs exactly the operations the Python loop
performs — double additions (``base + w``, ``value + 1e-15``) and strict
``>`` comparisons, in the same order.  There are no multiplications, so
FMA contraction cannot alter any result, and x86-64/AArch64 both evaluate
plain double adds in IEEE-754 binary64; the selected groups are therefore
bit-identical to the pure-Python scan (which itself matches the scalar
legacy flavour).  ``-ffp-contract=off`` is passed anyway as belt and
braces.

The kernel is optional infrastructure, never a correctness dependency:

* compiled lazily on first use with whatever ``cc`` the platform has;
* cached as a shared object in the user's temp directory, keyed by a
  hash of the source (concurrent builds race safely via atomic rename);
* any failure — no compiler, compile error, unloadable object — degrades
  to ``kernel() is None`` and callers keep the pure-Python scan;
* ``REPRO_DISABLE_KERNEL=1`` forces the pure path (used by tests to pin
  down which flavour they exercise).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

__all__ = ["kernel", "kernel_available", "KERNEL_MAX_SLOTS"]

#: Upper bound on slots (dense UE ids or compact indices) per kernel call;
#: calls beyond it fall back to the pure-Python scan.
KERNEL_MAX_SLOTS = 4096
_MAX_GROUP = 64

_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#define MAX_SLOTS 4096
#define MAX_GROUP 64

/* One call schedules the RB columns [col_start, col_end) of a weight slab.
 *
 * weights      : (n_streams, n_slots, n_cols) C-contiguous float64 slab;
 *                row for stream count s starts at (s-1)*n_slots*n_cols.
 * cand         : candidate slots in scan order (ascending id order).
 * member_flags : per-slot admitted-this-subframe flags (in/out).
 * max_new      : remaining distinct-client budget (K - |distinct|).
 * out_sizes    : admitted group size per column (0 = no grants).
 * out_members  : admitted slots, row-major (n_cols x size_cap).
 * out_utils    : admitted-group utility per column.
 *
 * Returns the remaining budget (>= 0), or -1 on a bounds violation.
 *
 * The greedy recurrence is the exact Python loop: for each group size,
 * value = (sum of member weights, in admission order) + w[candidate];
 * accept the scan's last candidate exceeding best_value + 1e-15.  Only
 * double additions and strict compares occur, so results are IEEE
 * bit-identical to the interpreted scan.
 */
int64_t greedy_fill(
    const double *weights,
    int64_t n_slots,
    int64_t n_cols,
    int64_t col_start,
    int64_t col_end,
    int64_t size_cap,
    int64_t antennas,
    const int64_t *cand,
    int64_t n_cand,
    uint8_t *member_flags,
    int64_t max_new,
    int64_t *out_sizes,
    int64_t *out_members,
    double *out_utils)
{
    int64_t cur[MAX_SLOTS];
    int64_t rem[MAX_SLOTS];
    int64_t group[MAX_GROUP];
    int64_t adm[MAX_GROUP];
    int64_t n_cur, i, col;

    if (n_cand > MAX_SLOTS || n_slots > MAX_SLOTS || size_cap > MAX_GROUP ||
        size_cap < 1 || antennas < 1 || n_cand < 0 || max_new < 0 ||
        col_start < 0 || col_end > n_cols)
        return -1;

    if (max_new > 0) {
        memcpy(cur, cand, (size_t)n_cand * sizeof(int64_t));
        n_cur = n_cand;
    } else {
        /* Saturated: candidates are the admitted slots, ascending. */
        n_cur = 0;
        for (i = 0; i < n_slots; i++)
            if (member_flags[i])
                cur[n_cur++] = i;
    }

    for (col = col_start; col < col_end; col++) {
        int64_t n_rem = n_cur;
        int64_t gsz = 0;
        double current = 0.0;
        memcpy(rem, cur, (size_t)n_cur * sizeof(int64_t));

        while (n_rem > 0 && gsz < size_cap) {
            int64_t size = gsz + 1;
            int64_t s = size < antennas ? size : antennas;
            const double *w = weights + (s - 1) * n_slots * n_cols + col;
            double base = 0.0;
            int64_t best = -1;
            double best_value = current;
            double threshold = current + 1e-15;
            for (i = 0; i < gsz; i++)
                base += w[group[i] * n_cols];
            for (i = 0; i < n_rem; i++) {
                double value = base + w[rem[i] * n_cols];
                if (value > threshold) {
                    best = i;
                    best_value = value;
                    threshold = value + 1e-15;
                }
            }
            if (best < 0)
                break;
            group[gsz++] = rem[best];
            memmove(rem + best, rem + best + 1,
                    (size_t)(n_rem - best - 1) * sizeof(int64_t));
            n_rem--;
            current = best_value;
        }

        /* Admission: the greedy order's prefix of newcomers that fits the
         * remaining distinct-client budget. */
        int64_t n_adm = 0;
        int64_t new_count = 0;
        if (max_new > 0) {
            for (i = 0; i < gsz; i++) {
                int64_t slot = group[i];
                if (member_flags[slot])
                    adm[n_adm++] = slot;
                else if (new_count < max_new) {
                    adm[n_adm++] = slot;
                    new_count++;
                }
            }
        } else {
            memcpy(adm, group, (size_t)gsz * sizeof(int64_t));
            n_adm = gsz;
        }

        out_sizes[col] = n_adm;
        for (i = 0; i < n_adm; i++)
            out_members[col * size_cap + i] = adm[i];
        /* Zero-pad so callers can gather rates over the full member block
         * without reading uninitialized slots. */
        for (i = n_adm; i < size_cap; i++)
            out_members[col * size_cap + i] = 0;
        if (n_adm == 0) {
            out_utils[col] = 0.0;
            continue;
        }

        if (n_adm == gsz) {
            out_utils[col] = current;
        } else {
            int64_t s = n_adm < antennas ? n_adm : antennas;
            const double *w = weights + (s - 1) * n_slots * n_cols + col;
            double trimmed = 0.0;
            for (i = 0; i < n_adm; i++)
                trimmed += w[adm[i] * n_cols];
            out_utils[col] = trimmed;
        }

        if (new_count > 0) {
            for (i = 0; i < n_adm; i++)
                member_flags[adm[i]] = 1;
            max_new -= new_count;
            if (max_new == 0) {
                /* Saturation: freeze candidates to the admitted slots. */
                n_cur = 0;
                for (i = 0; i < n_slots; i++)
                    if (member_flags[i])
                        cur[n_cur++] = i;
            }
        }
    }
    return max_new;
}
"""

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

_kernel: Optional[ctypes.CDLL] = None
_kernel_tried = False


def _cache_path() -> str:
    digest = hashlib.sha256(
        (_C_SOURCE + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    suffix = ".dll" if sys.platform == "win32" else ".so"
    return os.path.join(
        tempfile.gettempdir(), f"repro_greedy_{digest}{suffix}"
    )


def _build(path: str) -> bool:
    compiler = os.environ.get("CC") or "cc"
    workdir = tempfile.mkdtemp(prefix="repro_kernel_")
    source = os.path.join(workdir, "greedy.c")
    built = os.path.join(workdir, "greedy.so")
    try:
        with open(source, "w") as handle:
            handle.write(_C_SOURCE)
        subprocess.run(
            [compiler, *_CFLAGS, "-o", built, source],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(built, path)  # atomic: concurrent builders converge
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        for leftover in (source, built):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        try:
            os.rmdir(workdir)
        except OSError:
            pass


def _load() -> Optional[ctypes.CDLL]:
    path = _cache_path()
    if not os.path.exists(path) and not _build(path):
        return None
    try:
        lib = ctypes.CDLL(path)
    except OSError:
        return None
    fill = lib.greedy_fill
    fill.restype = ctypes.c_int64
    fill.argtypes = [
        ctypes.c_void_p,  # weights
        ctypes.c_int64,  # n_slots
        ctypes.c_int64,  # n_cols
        ctypes.c_int64,  # col_start
        ctypes.c_int64,  # col_end
        ctypes.c_int64,  # size_cap
        ctypes.c_int64,  # antennas
        ctypes.c_void_p,  # cand
        ctypes.c_int64,  # n_cand
        ctypes.c_void_p,  # member_flags
        ctypes.c_int64,  # max_new
        ctypes.c_void_p,  # out_sizes
        ctypes.c_void_p,  # out_members
        ctypes.c_void_p,  # out_utils
    ]
    return lib


def kernel() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, or ``None`` when unavailable."""
    global _kernel, _kernel_tried
    if os.environ.get("REPRO_DISABLE_KERNEL"):
        return None
    if not _kernel_tried:
        _kernel_tried = True
        _kernel = _load()
    return _kernel


def kernel_available() -> bool:
    """Whether the compiled greedy kernel can be used on this machine."""
    return kernel() is not None
