"""The access-aware (AA) scheduler (Eqn. 5) — the weighted-PF comparison.

AA knows each client's *individual* access probability ``p(i)`` and weights
the PF marginal utility by it, steering grants toward clients likely to
pass CCA.  It does **not** know the joint access structure, so it cannot
over-schedule: groups stay within ``M`` clients per RB, and the paper shows
it cannot recover the lost utilization (Figs. 15–18).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.joint.provider import JointAccessProvider
from repro.core.scheduling.base import UplinkScheduler, build_schedule
from repro.core.scheduling.types import SchedulingContext
from repro.lte.resources import SubframeSchedule

__all__ = ["AccessAwareScheduler"]


class AccessAwareScheduler(UplinkScheduler):
    """PF weighted by individual access probabilities."""

    name = "access-aware"

    def __init__(self, provider: JointAccessProvider) -> None:
        self.provider = provider

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        def utility(rb: int, group: Sequence[int]) -> float:
            streams = min(len(group), context.num_antennas)
            if streams == 0:
                return 0.0
            return sum(
                self.provider.access_probability(ue)
                * context.pf_weight(ue, rb, streams)
                for ue in group
            )

        return build_schedule(
            context,
            rb_utility=utility,
            max_group_size=context.num_antennas,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
        )
