"""The access-aware (AA) scheduler (Eqn. 5) — the weighted-PF comparison.

AA knows each client's *individual* access probability ``p(i)`` and weights
the PF marginal utility by it, steering grants toward clients likely to
pass CCA.  It does **not** know the joint access structure, so it cannot
over-schedule: groups stay within ``M`` clients per RB, and the paper shows
it cannot recover the lost utilization (Figs. 15–18).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.joint.provider import JointAccessProvider
from repro.core.scheduling.base import (
    UplinkScheduler,
    build_schedule,
    build_schedule_fast,
)
from repro.core.scheduling.types import BurstTable, SchedulingContext
from repro.lte.pilots import MAX_ORTHOGONAL_PILOTS
from repro.lte.resources import SubframeSchedule

__all__ = ["AccessAwareScheduler"]


class AccessAwareScheduler(UplinkScheduler):
    """PF weighted by individual access probabilities."""

    name = "access-aware"

    def __init__(self, provider: JointAccessProvider) -> None:
        self.provider = provider
        #: Schedule calls served by the vectorized flavour (perf-harness
        #: guard against silent legacy fallbacks).
        self.fast_path_schedules = 0

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        if context.vectorized:
            # AA's utility is still a plain per-client sum: scaling the PF
            # weight rows by the access-probability vector gives exactly
            # ``p(i) * w(i)`` per entry (IEEE multiplication is commutative
            # bit-for-bit), so the linear fast builder applies unchanged.
            access = np.zeros(context.num_ue_slots)
            for ue in context.ue_ids:
                access[ue] = self.provider.access_probability(ue)
            table = BurstTable(
                context,
                min(context.num_antennas, MAX_ORTHOGONAL_PILOTS),
                scale=access,
            )
            self.fast_path_schedules += 1
            return build_schedule_fast(
                context, max_group_size=context.num_antennas, table=table
            )

        def utility(rb: int, group: Sequence[int]) -> float:
            streams = min(len(group), context.num_antennas)
            if streams == 0:
                return 0.0
            return sum(
                self.provider.access_probability(ue)
                * context.pf_weight(ue, rb, streams)
                for ue in group
            )

        return build_schedule(
            context,
            rb_utility=utility,
            max_group_size=context.num_antennas,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
        )
