"""BLU's speculative scheduler (Eqns. 3–4): over-scheduling on purpose.

Per RB, the group is grown greedily (Eqn. 3) beyond ``M`` clients, valuing
each candidate group by its *expected* utility under the joint access
distribution (Eqn. 4): an outcome where the set ``g`` of clients clears CCA
delivers ``sum_{i in g} r_i / R_i`` when ``|g| <= M`` and nothing (a
collision) when ``|g| > M``.  Interference diversity is what makes this
positive-sum: clients silenced by *different* hidden terminals rarely clear
simultaneously, so they can safely share an RB.

The expected utility uses the provider's pattern table
``π[(i, s)] = P(i clears and exactly s scheduled clients clear)``:

``E(G) = sum_{i in G} (r_i(s_cap)/R_i) * sum_{s <= M} π[(i, s)]``

where ``s_cap = min(|G|, M)`` is the stream count the grant's MCS assumes —
the largest decodable concurrency, so any decodable outcome sustains the
granted rate.  (The paper's Eqn. 4 lets the rate vary with the realized
group; a real grant must fix its MCS up front, so we price every decodable
outcome at the ``s_cap`` rate.  This is the conservative choice: realized
outcomes with fewer streams can only beat the granted rate.)

The group size is capped at ``ceil(f * M)`` with ``f = 2`` by default —
the paper observes diminishing returns past ``[M, 2M]``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.joint.provider import JointAccessProvider
from repro.core.scheduling.base import UplinkScheduler, build_schedule
from repro.core.scheduling.types import SchedulingContext
from repro.errors import SchedulingError
from repro.lte.resources import SubframeSchedule
from repro.obs.metrics import active_registry

__all__ = ["SpeculativeScheduler"]

#: Group sizes beyond 16 clients/RB are far past the paper's [M, 2M] band.
_DEPTH_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0)
_UTILITY_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class SpeculativeScheduler(UplinkScheduler):
    """BLU: PF transformed into a speculative over-scheduler."""

    name = "blu"

    def __init__(
        self,
        provider: JointAccessProvider,
        overschedule_factor: float = 2.0,
    ) -> None:
        if overschedule_factor < 1.0:
            raise SchedulingError(
                f"overschedule factor must be >= 1: {overschedule_factor}"
            )
        self.provider = provider
        self.overschedule_factor = float(overschedule_factor)

    def expected_group_utility(
        self, context: SchedulingContext, rb: int, group: Sequence[int]
    ) -> float:
        """Eqn. 4 for one candidate group on one RB."""
        if not group:
            return 0.0
        m = context.num_antennas
        s_cap = min(len(group), m)
        table = self.provider.pattern_table(frozenset(group))
        utility = 0.0
        for ue in group:
            service_probability = sum(
                probability
                for (member, streams), probability in table.items()
                if member == ue and streams <= m
            )
            if service_probability > 0.0:
                utility += service_probability * context.pf_weight(ue, rb, s_cap)
        return utility

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        max_group = max(
            context.num_antennas,
            math.ceil(self.overschedule_factor * context.num_antennas),
        )

        def utility(rb: int, group: Sequence[int]) -> float:
            return self.expected_group_utility(context, rb, group)

        schedule = build_schedule(
            context,
            rb_utility=utility,
            max_group_size=max_group,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
        )
        registry = active_registry()
        if registry is not None:
            self._record_metrics(registry, context, schedule)
        return schedule

    def _record_metrics(
        self, registry, context: SchedulingContext, schedule: SubframeSchedule
    ) -> None:
        """Observe over-schedule depth and expected utility of one burst.

        Reads only; ``expected_group_utility`` is pure (pattern tables are
        cached on the provider), so recording cannot perturb scheduling.
        """
        registry.counter(
            "scheduler.schedule_calls",
            help="speculative schedule() invocations (grant bursts)",
        ).inc()
        depth = registry.histogram(
            "scheduler.overschedule_depth",
            buckets=_DEPTH_BUCKETS,
            help="clients granted per allocated RB",
        )
        expected = registry.histogram(
            "scheduler.expected_utility",
            buckets=_UTILITY_BUCKETS,
            help="Eqn. 4 expected utility of each grant burst",
        )
        total = 0.0
        for rb in schedule.allocated_rbs():
            group = [grant.ue_id for grant in schedule.rb(rb)]
            depth.observe(len(group))
            total += self.expected_group_utility(context, rb, group)
        expected.observe(total)
