"""BLU's speculative scheduler (Eqns. 3–4): over-scheduling on purpose.

Per RB, the group is grown greedily (Eqn. 3) beyond ``M`` clients, valuing
each candidate group by its *expected* utility under the joint access
distribution (Eqn. 4): an outcome where the set ``g`` of clients clears CCA
delivers ``sum_{i in g} r_i / R_i`` when ``|g| <= M`` and nothing (a
collision) when ``|g| > M``.  Interference diversity is what makes this
positive-sum: clients silenced by *different* hidden terminals rarely clear
simultaneously, so they can safely share an RB.

The expected utility uses the provider's pattern table
``π[(i, s)] = P(i clears and exactly s scheduled clients clear)``:

``E(G) = sum_{i in G} (r_i(s_cap)/R_i) * sum_{s <= M} π[(i, s)]``

where ``s_cap = min(|G|, M)`` is the stream count the grant's MCS assumes —
the largest decodable concurrency, so any decodable outcome sustains the
granted rate.  (The paper's Eqn. 4 lets the rate vary with the realized
group; a real grant must fix its MCS up front, so we price every decodable
outcome at the ``s_cap`` rate.  This is the conservative choice: realized
outcomes with fewer streams can only beat the granted rate.)

The group size is capped at ``ceil(f * M)`` with ``f = 2`` by default —
the paper observes diminishing returns past ``[M, 2M]``.

Eqn. 4 factors into a blueprint-dependent part (the service probabilities,
fixed while the blueprint is fixed) and a rate-dependent part (the PF
weights, fresh every burst).  The vectorized flavour exploits exactly that
split: service-probability vectors are cached per group on the provider,
PF-weight columns are batched once per burst, and each greedy step prices
all candidates through a :class:`~repro.core.scheduling.base.StepScorer`
whose per-candidate accumulation replays the scalar reference's operation
order — selections stay bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.core.joint.provider import (
    JointAccessProvider,
    TopologyJointProvider,
)
from repro.core.scheduling.base import (
    StepScorer,
    UplinkScheduler,
    build_schedule,
    build_schedule_fast,
)
from repro.core.scheduling.types import BurstTable, SchedulingContext
from repro.errors import SchedulingError
from repro.lte.pilots import MAX_ORTHOGONAL_PILOTS
from repro.lte.resources import SubframeSchedule
from repro.obs.metrics import active_registry

__all__ = ["SpeculativeScheduler"]

#: Group sizes beyond 16 clients/RB are far past the paper's [M, 2M] band.
_DEPTH_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0)
_UTILITY_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class _JointTensorScorer(StepScorer):
    """Eqn. 4 step scorer over the provider's bitmask joint tables.

    Keeps the committed group's bitmask and attached-terminal state along
    one RB's greedy path; each candidate valuation asks the tables for the
    extended group's service map (one int-keyed dict hit once the group
    recurs) and accumulates ``service · weight`` in committed-group order —
    the identical float sequence :meth:`expected_group_utility` produces.
    """

    __slots__ = (
        "_tables",
        "_table",
        "_max_streams",
        "_mask",
        "_attached",
        "_members",
    )

    def __init__(self, tables, table, max_streams: int) -> None:
        self._tables = tables
        self._table = table
        self._max_streams = max_streams
        self._mask = 0
        self._attached: tuple = ()
        self._members: List[int] = []

    def start_rb(self, rb: int) -> None:
        self._mask = 0
        self._attached = ()
        self._members = []

    def step_values(
        self, rb: int, group: Sequence[int], candidates: Sequence[int]
    ) -> Sequence[float]:
        max_streams = self._max_streams
        size = len(group) + 1
        weights = self._table.weight_row(
            size if size < max_streams else max_streams, rb
        )
        service_for = self._tables.service
        mask = self._mask
        attached = self._attached
        members = self._members
        values = []
        for candidate in candidates:
            service = service_for(
                mask | (1 << candidate), max_streams, attached, candidate
            )
            total = 0.0
            for ue in members:
                probability = service[ue]
                if probability > 0.0:
                    total += probability * weights[ue]
            probability = service[candidate]
            if probability > 0.0:
                total += probability * weights[candidate]
            values.append(total)
        return values

    def commit(self, ue: int) -> None:
        self._mask |= 1 << ue
        self._attached = self._tables.extend_attached(self._attached, ue)
        self._members.append(ue)

    def value(self, rb: int, group: Sequence[int]) -> float:
        if not group:
            return 0.0
        max_streams = self._max_streams
        size = len(group)
        weights = self._table.weight_row(
            size if size < max_streams else max_streams, rb
        )
        mask = 0
        for ue in group:
            mask |= 1 << ue
        service = self._tables.service(mask, max_streams)
        total = 0.0
        for ue in group:
            probability = service[ue]
            if probability > 0.0:
                total += probability * weights[ue]
        return total


class _ServiceMapScorer(StepScorer):
    """Eqn. 4 step scorer for providers without bitmask tables.

    Falls back to :meth:`JointAccessProvider.decodable_service` (one
    pattern-table pass per candidate group instead of one per candidate
    *member*) — the empirical-trace provider takes this path.
    """

    __slots__ = ("_provider", "_table", "_max_streams", "_members")

    def __init__(self, provider, table, max_streams: int) -> None:
        self._provider = provider
        self._table = table
        self._max_streams = max_streams
        self._members: List[int] = []

    def start_rb(self, rb: int) -> None:
        self._members = []

    def step_values(
        self, rb: int, group: Sequence[int], candidates: Sequence[int]
    ) -> Sequence[float]:
        max_streams = self._max_streams
        size = len(group) + 1
        weights = self._table.weight_row(
            size if size < max_streams else max_streams, rb
        )
        members = self._members
        member_set = frozenset(members)
        values = []
        for candidate in candidates:
            service = self._provider.decodable_service(
                member_set | {candidate}, max_streams
            )
            total = 0.0
            for ue in members:
                probability = service[ue]
                if probability > 0.0:
                    total += probability * weights[ue]
            probability = service[candidate]
            if probability > 0.0:
                total += probability * weights[candidate]
            values.append(total)
        return values

    def commit(self, ue: int) -> None:
        self._members.append(ue)

    def value(self, rb: int, group: Sequence[int]) -> float:
        if not group:
            return 0.0
        max_streams = self._max_streams
        size = len(group)
        weights = self._table.weight_row(
            size if size < max_streams else max_streams, rb
        )
        service = self._provider.decodable_service(
            frozenset(group), max_streams
        )
        total = 0.0
        for ue in group:
            probability = service[ue]
            if probability > 0.0:
                total += probability * weights[ue]
        return total


class SpeculativeScheduler(UplinkScheduler):
    """BLU: PF transformed into a speculative over-scheduler."""

    name = "blu"

    def __init__(
        self,
        provider: JointAccessProvider,
        overschedule_factor: float = 2.0,
    ) -> None:
        if overschedule_factor < 1.0:
            raise SchedulingError(
                f"overschedule factor must be >= 1: {overschedule_factor}"
            )
        self.provider = provider
        self.overschedule_factor = float(overschedule_factor)
        #: Schedule calls served by the vectorized flavour — the perf
        #: harness asserts this is non-zero to catch silent legacy
        #: fallbacks.
        self.fast_path_schedules = 0
        #: Provider counter values already published to the obs registry.
        self._published_cache_hits = 0
        self._published_cache_misses = 0

    def expected_group_utility(
        self, context: SchedulingContext, rb: int, group: Sequence[int]
    ) -> float:
        """Eqn. 4 for one candidate group on one RB.

        The scalar reference the vectorized scorer is checked against: it
        re-filters the full pattern table per member, exactly as the
        original implementation did.
        """
        if not group:
            return 0.0
        m = context.num_antennas
        s_cap = min(len(group), m)
        table = self.provider.pattern_table(frozenset(group))
        utility = 0.0
        for ue in group:
            service_probability = sum(
                probability
                for (member, streams), probability in table.items()
                if member == ue and streams <= m
            )
            if service_probability > 0.0:
                utility += service_probability * context.pf_weight(ue, rb, s_cap)
        return utility

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        max_group = max(
            context.num_antennas,
            math.ceil(self.overschedule_factor * context.num_antennas),
        )
        registry = active_registry()
        rb_utilities: Optional[Dict[int, float]] = (
            {} if registry is not None else None
        )

        if context.vectorized:
            schedule = self._schedule_fast(context, max_group, rb_utilities)
        else:

            def utility(rb: int, group: Sequence[int]) -> float:
                return self.expected_group_utility(context, rb, group)

            schedule = build_schedule(
                context,
                rb_utility=utility,
                max_group_size=max_group,
                grant_streams=lambda size: max(
                    min(size, context.num_antennas), 1
                ),
                rb_utilities=rb_utilities,
            )
        if registry is not None:
            self._record_metrics(registry, context, schedule, rb_utilities)
        return schedule

    def _schedule_fast(
        self,
        context: SchedulingContext,
        max_group: int,
        rb_utilities: Optional[Dict[int, float]],
    ) -> SubframeSchedule:
        """The vectorized flavour: batched weights, cached service maps."""
        max_streams = min(context.num_antennas, MAX_ORTHOGONAL_PILOTS)
        table = BurstTable(context, max_streams)
        provider = self.provider
        if isinstance(provider, TopologyJointProvider):
            scorer: StepScorer = _JointTensorScorer(
                provider.fast_tables(), table, max_streams
            )
        else:
            scorer = _ServiceMapScorer(provider, table, max_streams)
        schedule = build_schedule_fast(
            context,
            max_group_size=max_group,
            table=table,
            scorer=scorer,
            rb_utilities=rb_utilities,
        )
        self.fast_path_schedules += 1
        return schedule

    def _record_metrics(
        self,
        registry,
        context: SchedulingContext,
        schedule: SubframeSchedule,
        rb_utilities: Optional[Dict[int, float]] = None,
    ) -> None:
        """Observe over-schedule depth and expected utility of one burst.

        The per-RB utilities are the ones the greedy builder already
        computed (captured through ``rb_utilities``), so enabling metrics
        no longer re-prices every allocated RB; the scalar recompute
        remains only as a fallback for callers that bypassed the builders.
        """
        registry.counter(
            "scheduler.schedule_calls",
            help="speculative schedule() invocations (grant bursts)",
        ).inc()
        depth = registry.histogram(
            "scheduler.overschedule_depth",
            buckets=_DEPTH_BUCKETS,
            help="clients granted per allocated RB",
        )
        expected = registry.histogram(
            "scheduler.expected_utility",
            buckets=_UTILITY_BUCKETS,
            help="Eqn. 4 expected utility of each grant burst",
        )
        total = 0.0
        for rb in schedule.allocated_rbs():
            group = [grant.ue_id for grant in schedule.rb(rb)]
            depth.observe(len(group))
            if rb_utilities is not None and rb in rb_utilities:
                total += rb_utilities[rb]
            else:
                total += self.expected_group_utility(context, rb, group)
        expected.observe(total)
        self._record_cache_metrics(registry)

    def _record_cache_metrics(self, registry) -> None:
        """Publish provider cache behaviour (counter deltas + size gauge)."""
        provider = self.provider
        hits = getattr(provider, "cache_hits", None)
        if hits is None:
            return
        misses = provider.cache_misses
        registry.counter(
            "scheduler.pattern_cache_hits",
            help="joint-access provider cache hits (all cache layers)",
        ).inc(hits - self._published_cache_hits)
        registry.counter(
            "scheduler.pattern_cache_misses",
            help="joint-access provider cache misses (all cache layers)",
        ).inc(misses - self._published_cache_misses)
        self._published_cache_hits = hits
        self._published_cache_misses = misses
        cache_size = getattr(provider, "cache_size", None)
        if cache_size is not None:
            registry.gauge(
                "scheduler.pattern_cache_size",
                help="memoized joint-access entries across cache layers",
            ).set(cache_size())
