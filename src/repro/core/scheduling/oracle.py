"""Genie-aided oracle scheduler: the utilization upper bound.

The oracle is told, each subframe, exactly which clients will pass CCA
(``context.clear_ues``) — information no real eNB in unlicensed spectrum
can have.  It then runs plain PF restricted to those clients, so every
grant it issues is used.  Useful as the ceiling against which PF's loss
and BLU's recovery are measured.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.scheduling.base import UplinkScheduler, build_schedule
from repro.core.scheduling.types import SchedulingContext
from repro.errors import SchedulingError
from repro.lte.resources import SubframeSchedule

__all__ = ["OracleScheduler"]


class OracleScheduler(UplinkScheduler):
    """PF over the genie-provided set of clients that will clear CCA."""

    name = "oracle"

    #: Genie information is per subframe, so the engine must re-consult the
    #: oracle every UL subframe rather than reusing a burst schedule.
    reschedule_every_subframe = True

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        if context.clear_ues is None:
            raise SchedulingError(
                "oracle scheduler needs context.clear_ues (genie information)"
            )
        clear = context.clear_ues

        def utility(rb: int, group: Sequence[int]) -> float:
            if any(ue not in clear for ue in group):
                return float("-inf")
            streams = min(len(group), context.num_antennas)
            if streams == 0:
                return 0.0
            return sum(context.pf_weight(ue, rb, streams) for ue in group)

        return build_schedule(
            context,
            rb_utility=utility,
            max_group_size=context.num_antennas,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
        )
