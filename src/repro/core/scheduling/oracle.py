"""Genie-aided oracle scheduler: the utilization upper bound.

The oracle is told, each subframe, exactly which clients will pass CCA
(``context.clear_ues``) — information no real eNB in unlicensed spectrum
can have.  It then runs plain PF restricted to those clients, so every
grant it issues is used.  Useful as the ceiling against which PF's loss
and BLU's recovery are measured.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.scheduling.base import (
    UplinkScheduler,
    build_schedule,
    build_schedule_fast,
)
from repro.core.scheduling.types import BurstTable, SchedulingContext
from repro.errors import SchedulingError
from repro.lte.pilots import MAX_ORTHOGONAL_PILOTS
from repro.lte.resources import SubframeSchedule

__all__ = ["OracleScheduler"]


class OracleScheduler(UplinkScheduler):
    """PF over the genie-provided set of clients that will clear CCA."""

    name = "oracle"

    #: Genie information is per subframe, so the engine must re-consult the
    #: oracle every UL subframe rather than reusing a burst schedule.
    reschedule_every_subframe = True

    def __init__(self) -> None:
        #: Schedule calls served by the vectorized flavour (perf-harness
        #: guard against silent legacy fallbacks).
        self.fast_path_schedules = 0

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        if context.clear_ues is None:
            raise SchedulingError(
                "oracle scheduler needs context.clear_ues (genie information)"
            )
        clear = context.clear_ues

        if context.vectorized:
            # An additive 0 / -inf offset vector pushes blocked clients'
            # weights to -inf, reproducing the scalar veto exactly: any
            # group containing one sums to -inf (finite + -inf, -inf +
            # -inf — no +inf exists, so no NaN), which the
            # strict-improvement scan never accepts; clear clients keep
            # their weights bit-for-bit (w + 0.0 == w, no -0.0 occurs).
            offsets = np.full(context.num_ue_slots, -np.inf)
            for ue in clear:
                if 0 <= ue < offsets.shape[0]:
                    offsets[ue] = 0.0
            table = BurstTable(
                context,
                min(context.num_antennas, MAX_ORTHOGONAL_PILOTS),
                offset=offsets,
            )
            self.fast_path_schedules += 1
            return build_schedule_fast(
                context, max_group_size=context.num_antennas, table=table
            )

        def utility(rb: int, group: Sequence[int]) -> float:
            if any(ue not in clear for ue in group):
                return float("-inf")
            streams = min(len(group), context.num_antennas)
            if streams == 0:
                return 0.0
            return sum(context.pf_weight(ue, rb, streams) for ue in group)

        return build_schedule(
            context,
            rb_utility=utility,
            max_group_size=context.num_antennas,
            grant_streams=lambda size: max(min(size, context.num_antennas), 1),
        )
