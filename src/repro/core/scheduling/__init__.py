"""Uplink schedulers: PF baseline, access-aware, BLU speculative, extras."""

from repro.core.scheduling.access_aware import AccessAwareScheduler
from repro.core.scheduling.base import UplinkScheduler, build_schedule, greedy_group
from repro.core.scheduling.channels import (
    BlueprintChannelAssigner,
    ChannelAssigner,
    StaticChannelAssigner,
    build_channel_assigner,
)
from repro.core.scheduling.downlink import (
    AccessAwareDownlinkScheduler,
    downlink_delivered_bits,
)
from repro.core.scheduling.fairness import PfAverageTracker, jain_fairness_index
from repro.core.scheduling.oracle import OracleScheduler
from repro.core.scheduling.pf import ProportionalFairScheduler
from repro.core.scheduling.single_user import SingleUserScheduler
from repro.core.scheduling.speculative import SpeculativeScheduler
from repro.core.scheduling.types import SchedulingContext

__all__ = [
    "AccessAwareDownlinkScheduler",
    "AccessAwareScheduler",
    "BlueprintChannelAssigner",
    "ChannelAssigner",
    "OracleScheduler",
    "PfAverageTracker",
    "ProportionalFairScheduler",
    "SchedulingContext",
    "SingleUserScheduler",
    "SpeculativeScheduler",
    "StaticChannelAssigner",
    "UplinkScheduler",
    "build_channel_assigner",
    "build_schedule",
    "downlink_delivered_bits",
    "greedy_group",
    "jain_fairness_index",
]
