"""The BLU controller: the two-phase eNB loop of Fig. 9.

The controller *is* an uplink scheduler, so it plugs straight into the
simulation engine; internally it sequences the whole system:

1. **Measurement phase** — schedules clients per Algorithm 1 (data still
   flows, but the schedule is optimized for pair coverage), classifies each
   subframe's pilots into access observations, and accumulates ``p(i)``,
   ``p(i, j)`` until every pair has ``T`` joint samples.
2. **Blueprint** — transforms the measurements, runs the multi-start
   gradient-repair inference, and instantiates the exact joint-access
   provider on the inferred topology (Section 3.6 conditioning happens
   inside the provider).
3. **Speculative phase** — delegates to the speculative scheduler
   (Eqns. 3–4).  Observations keep flowing into the estimator ("the outcome
   of the schedule during the speculative phase implicitly contributes to
   measurements"), and the blueprint can be re-inferred every
   ``reinfer_interval`` UL subframes to track slow topology dynamics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.blueprint.inference import (
    BlueprintInference,
    InferenceConfig,
    InferenceResult,
)
from repro.core.joint.provider import TopologyJointProvider
from repro.core.measurement.classifier import AccessObservation
from repro.core.measurement.estimator import AccessEstimator
from repro.core.measurement.pair_scheduler import MeasurementScheduler
from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.speculative import SpeculativeScheduler
from repro.core.scheduling.types import SchedulingContext
from repro.errors import ConfigurationError
from repro.lte.resources import SubframeSchedule, UplinkGrant
from repro.obs.metrics import active_registry
from repro.topology.graph import InterferenceTopology

__all__ = ["BLUPhase", "BLUConfig", "BLUController"]


class BLUPhase(enum.Enum):
    """Where the controller is in its scheduling loop (Fig. 9).

    The base controller cycles MEASUREMENT → SPECULATIVE; the adaptive
    controller (``repro.dynamics``) adds PARTIAL_REMEASURE, entered when
    drift detection flags a subset of clients whose pair statistics must be
    re-collected before an incremental re-blueprint.
    """

    MEASUREMENT = "measurement"
    SPECULATIVE = "speculative"
    PARTIAL_REMEASURE = "partial_remeasure"


@dataclass(frozen=True)
class BLUConfig:
    """Controller parameters (paper defaults: T=50, K=8, f=2)."""

    samples_per_pair: int = 50
    measurement_k: int = 8
    overschedule_factor: float = 2.0
    z_sigma: float = 3.0
    reinfer_interval: int = 0  # UL subframes; 0 disables re-inference
    #: Exponential forgetting of access statistics (1.0 = cumulative);
    #: pair with ``reinfer_interval`` to track topology dynamics.
    estimator_decay: float = 1.0
    inference: InferenceConfig = field(default_factory=InferenceConfig)

    def __post_init__(self) -> None:
        if self.samples_per_pair < 1:
            raise ConfigurationError(
                f"samples_per_pair must be positive: {self.samples_per_pair}"
            )
        if self.measurement_k < 2:
            raise ConfigurationError(
                f"measurement_k must be at least 2: {self.measurement_k}"
            )
        if self.reinfer_interval < 0:
            raise ConfigurationError(
                f"reinfer_interval must be >= 0 (0 disables): "
                f"{self.reinfer_interval}"
            )
        if not 0.0 < self.estimator_decay <= 1.0:
            raise ConfigurationError(
                f"estimator_decay must be in (0, 1]: {self.estimator_decay}"
            )
        if self.overschedule_factor < 1.0:
            raise ConfigurationError(
                f"overschedule_factor must be >= 1: {self.overschedule_factor}"
            )


class BLUController(UplinkScheduler):
    """Measurement -> blueprint -> speculative scheduling, end to end."""

    name = "blu"

    def __init__(
        self, num_ues: int, config: Optional[BLUConfig] = None
    ) -> None:
        if config is None:
            config = BLUConfig()
        if num_ues < 2:
            raise ConfigurationError(
                "BLU needs at least two clients (pair-wise measurements)"
            )
        self.num_ues = num_ues
        self.config = config
        self.estimator = AccessEstimator(num_ues, decay=config.estimator_decay)
        self.measurement_scheduler = MeasurementScheduler(
            num_ues=num_ues,
            distinct_per_subframe=config.measurement_k,
            samples=config.samples_per_pair,
        )
        self.phase = BLUPhase.MEASUREMENT
        self.inference_result: Optional[InferenceResult] = None
        self._speculative: Optional[SpeculativeScheduler] = None
        self._pending_measurement_ues: Optional[list] = None
        self._ul_subframes_since_inference = 0
        self.measurement_subframes_used = 0

    # -- phase transitions ----------------------------------------------------

    @property
    def inferred_topology(self) -> Optional[InterferenceTopology]:
        if self.inference_result is None:
            return None
        return self.inference_result.topology

    def _infer_and_switch(
        self,
        extra_starts: Optional[list] = None,
        inference_config: Optional[InferenceConfig] = None,
    ) -> None:
        """Infer a blueprint from current estimates; enter SPECULATIVE.

        ``extra_starts`` (``(label, WorkingTopology)`` pairs) and
        ``inference_config`` let the adaptive controller warm-start a
        cheaper incremental re-inference; the base controller always runs
        the configured cold multi-start.
        """
        target = self.estimator.to_transformed(z=self.config.z_sigma)
        inference = BlueprintInference(
            inference_config if inference_config is not None
            else self.config.inference
        )
        self.inference_result = inference.infer(target, extra_starts=extra_starts)
        provider = TopologyJointProvider(self.inference_result.topology)
        self._speculative = SpeculativeScheduler(
            provider, overschedule_factor=self.config.overschedule_factor
        )
        self.phase = BLUPhase.SPECULATIVE
        self._ul_subframes_since_inference = 0

    # -- scheduling --------------------------------------------------------------

    def _layout_measurement(
        self, context: SchedulingContext, ues: list
    ) -> SubframeSchedule:
        """OFDMA round-robin of the chosen clients, one per RB."""
        schedule = SubframeSchedule(num_rbs=context.num_rbs)
        for rb in range(context.num_rbs):
            ue = ues[rb % len(ues)]
            schedule.add_grant(
                UplinkGrant(
                    ue_id=ue,
                    rb=rb,
                    rate_bps=context.rate_bps(ue, rb, 1),
                    pilot_index=0,
                )
            )
        return schedule

    def _measurement_schedule(self, context: SchedulingContext) -> SubframeSchedule:
        """Algorithm-1 pick of K clients, laid out one per RB."""
        ues = self.measurement_scheduler.next_schedule()
        self._pending_measurement_ues = ues
        return self._layout_measurement(context, ues)

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        if self.phase is BLUPhase.MEASUREMENT:
            return self._measurement_schedule(context)
        assert self._speculative is not None
        return self._speculative.schedule(context)

    # -- observation feedback -------------------------------------------------------

    def observe(self, observation: AccessObservation) -> None:
        """Per-UL-subframe feedback from the eNB (pilot classification)."""
        self.estimator.record_subframe(
            scheduled=observation.scheduled, accessed=observation.accessed
        )
        if self.phase is BLUPhase.MEASUREMENT:
            self.measurement_scheduler.record(sorted(observation.scheduled))
            self.measurement_subframes_used += 1
            registry = active_registry()
            if registry is not None:
                registry.counter(
                    "controller.measurement_subframes",
                    help="UL subframes spent in the MEASUREMENT phase",
                ).inc()
            if self.measurement_scheduler.finished:
                self._infer_and_switch()
            return

        self._ul_subframes_since_inference += 1
        if (
            self.config.reinfer_interval > 0
            and self._ul_subframes_since_inference >= self.config.reinfer_interval
        ):
            self._infer_and_switch()
