"""The BLU controller: the two-phase eNB loop of Fig. 9.

The controller *is* an uplink scheduler, so it plugs straight into the
simulation engine; internally it sequences the whole system:

1. **Measurement phase** — schedules clients per Algorithm 1 (data still
   flows, but the schedule is optimized for pair coverage), classifies each
   subframe's pilots into access observations, and accumulates ``p(i)``,
   ``p(i, j)`` until every pair has ``T`` joint samples.
2. **Blueprint** — transforms the measurements, runs the multi-start
   gradient-repair inference, and instantiates the exact joint-access
   provider on the inferred topology (Section 3.6 conditioning happens
   inside the provider).
3. **Speculative phase** — delegates to the speculative scheduler
   (Eqns. 3–4).  Observations keep flowing into the estimator ("the outcome
   of the schedule during the speculative phase implicitly contributes to
   measurements"), and the blueprint can be re-inferred every
   ``reinfer_interval`` UL subframes to track slow topology dynamics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.blueprint.inference import (
    BlueprintInference,
    InferenceConfig,
    InferenceResult,
)
from repro.core.joint.provider import TopologyJointProvider
from repro.core.measurement.classifier import AccessObservation
from repro.core.measurement.estimator import AccessEstimator
from repro.core.measurement.pair_scheduler import MeasurementScheduler
from repro.core.scheduling.base import UplinkScheduler
from repro.core.scheduling.pf import ProportionalFairScheduler
from repro.core.scheduling.speculative import SpeculativeScheduler
from repro.core.scheduling.types import SchedulingContext
from repro.errors import ConfigurationError
from repro.lte.resources import SubframeSchedule, UplinkGrant
from repro.obs.metrics import active_registry
from repro.topology.graph import InterferenceTopology

__all__ = ["BLUPhase", "BLUConfig", "BLUController"]


class BLUPhase(enum.Enum):
    """Where the controller is in its scheduling loop (Fig. 9).

    The base controller cycles MEASUREMENT → SPECULATIVE; the adaptive
    controller (``repro.dynamics``) adds PARTIAL_REMEASURE, entered when
    drift detection flags a subset of clients whose pair statistics must be
    re-collected before an incremental re-blueprint.  DEGRADED is the
    graceful-degradation fallback: inference health gating rejected the
    blueprint (residual too high, coverage too thin, or a forced solver
    divergence), so the controller schedules plain PF with periodic
    re-measurement until a later inference passes the gate.
    """

    MEASUREMENT = "measurement"
    SPECULATIVE = "speculative"
    PARTIAL_REMEASURE = "partial_remeasure"
    DEGRADED = "degraded"


@dataclass(frozen=True)
class BLUConfig:
    """Controller parameters (paper defaults: T=50, K=8, f=2)."""

    samples_per_pair: int = 50
    measurement_k: int = 8
    overschedule_factor: float = 2.0
    z_sigma: float = 3.0
    reinfer_interval: int = 0  # UL subframes; 0 disables re-inference
    #: Exponential forgetting of access statistics (1.0 = cumulative);
    #: pair with ``reinfer_interval`` to track topology dynamics.
    estimator_decay: float = 1.0
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    #: Inference health gate: reject a blueprint whose winning aggregate
    #: violation exceeds this and fall back to DEGRADED scheduling.
    #: ``None`` — the default — disables gating entirely, keeping the
    #: controller bit-exact with its pre-resilience behaviour.
    degrade_residual_threshold: Optional[float] = None
    #: Health gate on measurement coverage: the estimator must hold at
    #: least this many samples for its least-sampled pair (0 disables).
    degrade_min_pair_samples: int = 0
    #: In DEGRADED, every Nth TxOP is a measurement layout (the rest are
    #: plain PF) so the estimator keeps improving toward recovery.
    degraded_measure_every: int = 8
    #: Per-pair sample target for the DEGRADED re-measurement campaign
    #: (``None`` reuses ``samples_per_pair``).
    degraded_samples_per_pair: Optional[int] = None

    def __post_init__(self) -> None:
        if self.samples_per_pair < 1:
            raise ConfigurationError(
                f"samples_per_pair must be positive: {self.samples_per_pair}"
            )
        if self.measurement_k < 2:
            raise ConfigurationError(
                f"measurement_k must be at least 2: {self.measurement_k}"
            )
        if self.reinfer_interval < 0:
            raise ConfigurationError(
                f"reinfer_interval must be >= 0 (0 disables): "
                f"{self.reinfer_interval}"
            )
        if not 0.0 < self.estimator_decay <= 1.0:
            raise ConfigurationError(
                f"estimator_decay must be in (0, 1]: {self.estimator_decay}"
            )
        if self.overschedule_factor < 1.0:
            raise ConfigurationError(
                f"overschedule_factor must be >= 1: {self.overschedule_factor}"
            )
        if (
            self.degrade_residual_threshold is not None
            and self.degrade_residual_threshold <= 0.0
        ):
            raise ConfigurationError(
                f"degrade_residual_threshold must be positive or None: "
                f"{self.degrade_residual_threshold}"
            )
        if self.degrade_min_pair_samples < 0:
            raise ConfigurationError(
                f"degrade_min_pair_samples must be >= 0: "
                f"{self.degrade_min_pair_samples}"
            )
        if self.degraded_measure_every < 1:
            raise ConfigurationError(
                f"degraded_measure_every must be >= 1: "
                f"{self.degraded_measure_every}"
            )
        if (
            self.degraded_samples_per_pair is not None
            and self.degraded_samples_per_pair < 1
        ):
            raise ConfigurationError(
                f"degraded_samples_per_pair must be positive or None: "
                f"{self.degraded_samples_per_pair}"
            )

    @property
    def degradation_enabled(self) -> bool:
        """Whether any inference health gate is configured."""
        return (
            self.degrade_residual_threshold is not None
            or self.degrade_min_pair_samples > 0
        )


class BLUController(UplinkScheduler):
    """Measurement -> blueprint -> speculative scheduling, end to end."""

    name = "blu"

    def __init__(
        self, num_ues: int, config: Optional[BLUConfig] = None
    ) -> None:
        if config is None:
            config = BLUConfig()
        if num_ues < 2:
            raise ConfigurationError(
                "BLU needs at least two clients (pair-wise measurements)"
            )
        self.num_ues = num_ues
        self.config = config
        self.estimator = AccessEstimator(num_ues, decay=config.estimator_decay)
        self.measurement_scheduler = MeasurementScheduler(
            num_ues=num_ues,
            distinct_per_subframe=config.measurement_k,
            samples=config.samples_per_pair,
        )
        self.phase = BLUPhase.MEASUREMENT
        self.inference_result: Optional[InferenceResult] = None
        self._speculative: Optional[SpeculativeScheduler] = None
        self._pending_measurement_ues: Optional[list] = None
        self._ul_subframes_since_inference = 0
        self.measurement_subframes_used = 0
        # Graceful degradation (residual-gated): PF fallback + periodic
        # re-measurement while inference is unhealthy.
        self._fallback = ProportionalFairScheduler()
        self._degraded_measurement: Optional[MeasurementScheduler] = None
        self._degraded_txops = 0
        self._degraded_measuring = False
        self.degraded_entries = 0
        self.degraded_recoveries = 0
        # Fault-injection seam (repro.resilience); duck-typed so the core
        # never imports the resilience package.
        self._fault_injector = None
        self._inference_count = 0

    def set_fault_injector(self, injector) -> None:
        """Attach a resilience fault injector (report/solver faults)."""
        self._fault_injector = injector

    # -- phase transitions ----------------------------------------------------

    @property
    def inferred_topology(self) -> Optional[InterferenceTopology]:
        if self.inference_result is None:
            return None
        return self.inference_result.topology

    def _infer_and_switch(
        self,
        extra_starts: Optional[list] = None,
        inference_config: Optional[InferenceConfig] = None,
    ) -> None:
        """Infer a blueprint from current estimates; enter SPECULATIVE.

        ``extra_starts`` (``(label, WorkingTopology)`` pairs) and
        ``inference_config`` let the adaptive controller warm-start a
        cheaper incremental re-inference; the base controller always runs
        the configured cold multi-start.
        """
        target = self.estimator.to_transformed(z=self.config.z_sigma)
        inference = BlueprintInference(
            inference_config if inference_config is not None
            else self.config.inference
        )
        result = inference.infer(target, extra_starts=extra_starts)
        inference_index = self._inference_count
        self._inference_count += 1
        if self._fault_injector is not None and self._fault_injector.solver_diverges(
            inference_index
        ):
            # Injected divergence: keep the topology (the scheduler never
            # sees it) but report non-convergence to the health gate.
            result = InferenceResult(
                topology=result.topology,
                aggregate_violation=float("inf"),
                satisfied=False,
                winning_start=result.winning_start,
                outcomes=result.outcomes,
            )
        self.inference_result = result
        if not self._inference_healthy(result):
            self._enter_degraded()
            return
        provider = TopologyJointProvider(result.topology)
        self._speculative = SpeculativeScheduler(
            provider, overschedule_factor=self.config.overschedule_factor
        )
        if self.phase is BLUPhase.DEGRADED:
            self.degraded_recoveries += 1
            registry = active_registry()
            if registry is not None:
                registry.counter(
                    "controller.degraded_recoveries",
                    help="DEGRADED -> SPECULATIVE recoveries after a "
                    "healthy re-inference",
                ).inc()
        self.phase = BLUPhase.SPECULATIVE
        self._ul_subframes_since_inference = 0

    def _inference_healthy(self, result: InferenceResult) -> bool:
        """Residual-and-coverage health gate over one inference result.

        Always true when no gate is configured (the default), keeping the
        pre-resilience controller behaviour bit-exact.
        """
        cfg = self.config
        if not cfg.degradation_enabled:
            return True
        if (
            cfg.degrade_residual_threshold is not None
            and not result.aggregate_violation <= cfg.degrade_residual_threshold
        ):
            return False
        if (
            cfg.degrade_min_pair_samples > 0
            and self.estimator.min_pair_samples() < cfg.degrade_min_pair_samples
        ):
            return False
        return True

    def _enter_degraded(self) -> None:
        """Reject the blueprint: PF fallback + periodic re-measurement."""
        self._speculative = None
        self.phase = BLUPhase.DEGRADED
        self._ul_subframes_since_inference = 0
        self._degraded_txops = 0
        self._degraded_measuring = False
        samples = (
            self.config.degraded_samples_per_pair
            if self.config.degraded_samples_per_pair is not None
            else self.config.samples_per_pair
        )
        self._degraded_measurement = MeasurementScheduler(
            num_ues=self.num_ues,
            distinct_per_subframe=self.config.measurement_k,
            samples=samples,
        )
        self.degraded_entries += 1
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "controller.degraded_entries",
                help="times the health gate rejected a blueprint and the "
                "controller fell back to DEGRADED scheduling",
            ).inc()

    # -- scheduling --------------------------------------------------------------

    def _layout_measurement(
        self, context: SchedulingContext, ues: list
    ) -> SubframeSchedule:
        """OFDMA round-robin of the chosen clients, one per RB."""
        schedule = SubframeSchedule(num_rbs=context.num_rbs)
        for rb in range(context.num_rbs):
            ue = ues[rb % len(ues)]
            schedule.add_grant(
                UplinkGrant(
                    ue_id=ue,
                    rb=rb,
                    rate_bps=context.rate_bps(ue, rb, 1),
                    pilot_index=0,
                )
            )
        return schedule

    def _measurement_schedule(self, context: SchedulingContext) -> SubframeSchedule:
        """Algorithm-1 pick of K clients, laid out one per RB."""
        ues = self.measurement_scheduler.next_schedule()
        self._pending_measurement_ues = ues
        return self._layout_measurement(context, ues)

    def _degraded_schedule(self, context: SchedulingContext) -> SubframeSchedule:
        """PF fallback, with every Nth TxOP spent on re-measurement."""
        assert self._degraded_measurement is not None
        self._degraded_txops += 1
        if (
            not self._degraded_measurement.finished
            and self._degraded_txops % self.config.degraded_measure_every == 0
        ):
            self._degraded_measuring = True
            ues = self._degraded_measurement.next_schedule()
            return self._layout_measurement(context, ues)
        self._degraded_measuring = False
        return self._fallback.schedule(context)

    def schedule(self, context: SchedulingContext) -> SubframeSchedule:
        if self.phase is BLUPhase.MEASUREMENT:
            return self._measurement_schedule(context)
        if self.phase is BLUPhase.DEGRADED:
            return self._degraded_schedule(context)
        assert self._speculative is not None
        return self._speculative.schedule(context)

    # -- observation feedback -------------------------------------------------------

    def observe(self, observation: AccessObservation) -> None:
        """Per-UL-subframe feedback from the eNB (pilot classification).

        Report-level faults (loss/corruption/bias from an attached
        :class:`~repro.resilience.inject.FaultInjector`) are applied
        here, before any controller state sees the observation.
        """
        if self._fault_injector is not None:
            observation = self._fault_injector.apply_observation(observation)
            if observation is None:  # report lost in transit
                return
        self._observe(observation)

    def _observe(self, observation: AccessObservation) -> None:
        """Phase-dispatched handling of one (possibly faulted) report."""
        self.estimator.record_subframe(
            scheduled=observation.scheduled, accessed=observation.accessed
        )
        if self.phase is BLUPhase.MEASUREMENT:
            self.measurement_scheduler.record(sorted(observation.scheduled))
            self.measurement_subframes_used += 1
            registry = active_registry()
            if registry is not None:
                registry.counter(
                    "controller.measurement_subframes",
                    help="UL subframes spent in the MEASUREMENT phase",
                ).inc()
            if self.measurement_scheduler.finished:
                self._infer_and_switch()
            return

        if self.phase is BLUPhase.DEGRADED:
            registry = active_registry()
            if registry is not None:
                registry.counter(
                    "controller.degraded_subframes",
                    help="UL subframes scheduled in the DEGRADED phase",
                ).inc()
            if self._degraded_measuring:
                assert self._degraded_measurement is not None
                self._degraded_measurement.record(sorted(observation.scheduled))
                if self._degraded_measurement.finished:
                    # Campaign done: retry inference; an unhealthy result
                    # re-enters DEGRADED with a fresh campaign.
                    self._infer_and_switch()
            return

        self._ul_subframes_since_inference += 1
        if (
            self.config.reinfer_interval > 0
            and self._ul_subframes_since_inference >= self.config.reinfer_interval
        ):
            self._infer_and_switch()
