"""BLU core: measurement, blueprint inference, joint distributions,
speculative scheduling, and the two-phase controller."""

from repro.core.controller import BLUConfig, BLUController, BLUPhase

__all__ = ["BLUConfig", "BLUController", "BLUPhase"]
