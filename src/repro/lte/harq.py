"""HARQ: hybrid-ARQ retransmission with Chase combining.

The Release-10 stack the paper's testbed runs includes HARQ: a transport
block whose data fails to decode (fading outage or collision) is kept in a
soft buffer and retransmitted; the receiver combines the energy of all
attempts (Chase combining — effective SINR is the linear sum across
attempts) so a marginal block usually lands on the second try.

Blocked grants are *not* HARQ events: the client never transmitted, so
there is nothing to combine — exactly the distinction BLU's pilot-based
classifier draws (Section 3.3).

The pool is deliberately scheduler-agnostic: the engine asks it, per UE and
subframe, whether a retransmission is pending; if so, the UE's next
transmission opportunity carries the retransmission instead of new data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["HarqConfig", "HarqTransportBlock", "HarqPool"]

#: LTE FDD uplink HARQ: 8 parallel processes per UE.
DEFAULT_NUM_PROCESSES = 8


@dataclass(frozen=True)
class HarqConfig:
    """HARQ knobs."""

    max_transmissions: int = 4  # initial + 3 retransmissions
    num_processes: int = DEFAULT_NUM_PROCESSES

    def __post_init__(self) -> None:
        if self.max_transmissions < 1:
            raise ConfigurationError(
                f"max_transmissions must be >= 1: {self.max_transmissions}"
            )
        if self.num_processes < 1:
            raise ConfigurationError(
                f"num_processes must be >= 1: {self.num_processes}"
            )


@dataclass
class HarqTransportBlock:
    """One in-flight transport block and its soft-combining state."""

    ue_id: int
    bits: float
    required_sinr_linear: float
    accumulated_sinr_linear: float = 0.0
    transmissions: int = 0

    def add_attempt(self, sinr_linear: float) -> None:
        if sinr_linear < 0:
            raise ConfigurationError(f"negative SINR energy: {sinr_linear}")
        self.accumulated_sinr_linear += sinr_linear
        self.transmissions += 1

    @property
    def decodable(self) -> bool:
        """Chase combining: decoded once combined SINR covers the need."""
        return self.accumulated_sinr_linear >= self.required_sinr_linear


class HarqPool:
    """Per-UE HARQ processes for one cell."""

    def __init__(
        self, num_ues: int, config: Optional[HarqConfig] = None
    ) -> None:
        if config is None:
            config = HarqConfig()
        if num_ues < 1:
            raise ConfigurationError(f"need at least one UE: {num_ues}")
        self.config = config
        self._pending: Dict[int, List[HarqTransportBlock]] = {
            ue: [] for ue in range(num_ues)
        }
        self.blocks_delivered = 0
        self.blocks_dropped = 0
        self.retransmissions = 0

    # -- queries -----------------------------------------------------------

    def pending(self, ue: int) -> Optional[HarqTransportBlock]:
        """The oldest retransmission waiting for this UE, if any."""
        queue = self._pending_queue(ue)
        return queue[0] if queue else None

    def pending_count(self, ue: int) -> int:
        return len(self._pending_queue(ue))

    def _pending_queue(self, ue: int) -> List[HarqTransportBlock]:
        try:
            return self._pending[ue]
        except KeyError:
            raise ConfigurationError(f"unknown UE id {ue}")

    # -- transitions ----------------------------------------------------------

    def first_attempt_failed(
        self, ue: int, bits: float, required_sinr_linear: float,
        attempt_sinr_linear: float,
    ) -> None:
        """Register a new transport block whose first transmission failed."""
        queue = self._pending_queue(ue)
        if len(queue) >= self.config.num_processes:
            # All processes busy: the block is dropped (buffer overflow).
            self.blocks_dropped += 1
            return
        block = HarqTransportBlock(
            ue_id=ue, bits=bits, required_sinr_linear=required_sinr_linear
        )
        block.add_attempt(attempt_sinr_linear)
        queue.append(block)

    def retransmission_result(
        self, ue: int, attempt_sinr_linear: float
    ) -> Optional[float]:
        """Apply one retransmission to the UE's oldest pending block.

        Returns the delivered bits when the block decodes, ``None`` while it
        is still pending.  Blocks that exhaust their attempts are dropped.
        """
        queue = self._pending_queue(ue)
        if not queue:
            raise ConfigurationError(f"UE {ue} has no pending HARQ block")
        block = queue[0]
        block.add_attempt(attempt_sinr_linear)
        self.retransmissions += 1
        if block.decodable:
            queue.pop(0)
            self.blocks_delivered += 1
            return block.bits
        if block.transmissions >= self.config.max_transmissions:
            queue.pop(0)
            self.blocks_dropped += 1
        return None

    def retransmission_blocked(self, ue: int) -> None:
        """The UE was scheduled to retransmit but its CCA failed.

        The attempt does not count against ``max_transmissions`` (nothing
        was sent), mirroring LAA behaviour: the grant is wasted, the soft
        buffer persists.
        """
        self._pending_queue(ue)  # validate the UE id
