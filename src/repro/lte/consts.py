"""Physical-layer and frame-structure constants for the LTE substrate.

Values follow a 10 MHz Release-10 carrier, matching the testbed configuration
in the paper (10 MHz LTE signal, 1 ms subframes, 3-subframe UL bursts).
"""

from __future__ import annotations

#: Duration of one LTE subframe in seconds.
SUBFRAME_DURATION_S = 1e-3

#: Number of subframes per second.
SUBFRAMES_PER_SECOND = 1000

#: Resource blocks available in a 10 MHz LTE carrier.
RBS_10MHZ = 50

#: Resource blocks available in a 20 MHz LTE carrier.
RBS_20MHZ = 100

#: Subcarriers per resource block.
SUBCARRIERS_PER_RB = 12

#: Subcarrier spacing in Hz.
SUBCARRIER_SPACING_HZ = 15_000

#: Bandwidth of one resource block in Hz.
RB_BANDWIDTH_HZ = SUBCARRIERS_PER_RB * SUBCARRIER_SPACING_HZ

#: OFDM data symbols per subframe (normal cyclic prefix, 2 slots x 7 symbols).
SYMBOLS_PER_SUBFRAME = 14

#: Symbols per subframe consumed by uplink demodulation reference signals
#: (one DMRS symbol per slot).
DMRS_SYMBOLS_PER_SUBFRAME = 2

#: Data-bearing resource elements in one RB over one subframe.
DATA_RE_PER_RB = SUBCARRIERS_PER_RB * (SYMBOLS_PER_SUBFRAME - DMRS_SYMBOLS_PER_SUBFRAME)

#: Subframes granted per uplink burst in the testbed ("bursts of three
#: subframes").
SUBFRAMES_PER_BURST = 3

#: Default TxOP length bounds in subframes (paper: "TxOP (2-10 ms)").
TXOP_MIN_SUBFRAMES = 2
TXOP_MAX_SUBFRAMES = 10

#: LAA energy-detection CCA threshold range in dBm (paper: [-70, -65] dBm).
ED_THRESHOLD_DBM_LOW = -70.0
ED_THRESHOLD_DBM_HIGH = -65.0

#: Default energy-detection threshold used by LTE nodes.
DEFAULT_ED_THRESHOLD_DBM = -72.0

#: WiFi preamble-detection (carrier sense) threshold in dBm (paper: -85 dBm).
WIFI_CS_THRESHOLD_DBM = -85.0

#: Default transmit power of WiFi/LTE nodes in dBm.
DEFAULT_TX_POWER_DBM = 20.0

#: Thermal noise floor for a 10 MHz channel in dBm (kTB + typical noise figure).
NOISE_FLOOR_10MHZ_DBM = -95.0

#: Default exponential-weighting constant for the PF average-throughput
#: update (alpha in the paper's R_i update).
DEFAULT_PF_ALPHA = 100.0
