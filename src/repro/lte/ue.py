"""User equipment (UE) model: grant usage gated by energy-sensing CCA.

In eLAA/MulteFire a scheduled client performs a clear-channel assessment
immediately before using its uplink grant; if the medium at the client is
busy (e.g. a WiFi hidden terminal is transmitting), the client stays silent
and the grant is wasted.  This asymmetry — the eNB schedules, the client
senses — is the root of the under-utilization the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts
from repro.lte.channel import UplinkChannel

__all__ = ["UserEquipment"]


@dataclass
class _CcaStats:
    """Counters of CCA outcomes over the UE's lifetime."""

    attempts: int = 0
    clear: int = 0

    @property
    def clear_fraction(self) -> float:
        return self.clear / self.attempts if self.attempts else 0.0


class UserEquipment:
    """A single-antenna LTE client operating in unlicensed spectrum.

    The UE owns its uplink channel process and its CCA state.  Each uplink
    subframe the simulation asks the UE whether its CCA passed; the decision
    is driven either by a sensed power level (geometric mode) or directly by
    a busy flag (interference-graph mode).
    """

    def __init__(
        self,
        ue_id: int,
        channel: UplinkChannel,
        ed_threshold_dbm: float = consts.DEFAULT_ED_THRESHOLD_DBM,
    ) -> None:
        if ue_id < 0:
            raise ConfigurationError(f"UE id must be non-negative: {ue_id}")
        self.ue_id = ue_id
        self.channel = channel
        self.ed_threshold_dbm = float(ed_threshold_dbm)
        self._stats = _CcaStats()

    def advance_channel(self) -> np.ndarray:
        """Advance the fading process one subframe; return per-RB SINR."""
        return self.channel.step()

    def reported_rates_bps(self) -> np.ndarray:
        """Per-RB rates the eNB believes this UE can sustain (current CSI)."""
        return self.channel.rates_bps()

    def sinr_db(self, rb: int) -> float:
        return float(self.channel.sinr_db[rb])

    def cca_clear_from_power(self, sensed_power_dbm: float) -> bool:
        """CCA decision from the aggregate interference power at the UE."""
        clear = sensed_power_dbm < self.ed_threshold_dbm
        self._record(clear)
        return clear

    def cca_clear_from_busy(self, medium_busy: bool) -> bool:
        """CCA decision when the medium state is already a busy flag."""
        clear = not medium_busy
        self._record(clear)
        return clear

    def _record(self, clear: bool) -> None:
        self._stats.attempts += 1
        if clear:
            self._stats.clear += 1

    @property
    def observed_clear_fraction(self) -> float:
        """Empirical fraction of CCA attempts that were clear."""
        return self._stats.clear_fraction

    @property
    def cca_attempts(self) -> int:
        return self._stats.attempts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UserEquipment(id={self.ue_id}, "
            f"ed_threshold={self.ed_threshold_dbm} dBm)"
        )
