"""NOMA-style successive interference cancellation (SIC) reception.

Section 5 of the paper: non-orthogonal multiple access schedules multiple
clients on the same UL resource via SIC and power control, and "the
benefits from BLU's speculative scheduler in counteracting the effects of
asynchronous interference ... will apply to NOMA too."  This module
provides that receiver so the claim can be exercised: with SIC, an
over-scheduled RB where more than ``M`` clients clear CCA is no longer an
automatic collision — power-separated streams peel off one by one.

Model (standard SIC with an ``M``-antenna combiner):

* streams decode strongest-first;
* when decoding a stream, the ``M - 1`` strongest remaining interferers
  are spatially nulled; the rest add to the noise floor;
* a decoded stream is subtracted perfectly; decoding stops at the first
  stream whose effective SINR cannot carry its granted rate (classic SIC
  abort), and every remaining stream is lost.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.lte import mcs
from repro.lte.phy import GrantOutcome, RBReception
from repro.lte.pilots import PilotObservation
from repro.lte.resources import RBSchedule

__all__ = ["receive_rb_sic"]


def _linear(power_db: float) -> float:
    return 10.0 ** (power_db / 10.0)


def receive_rb_sic(
    rb_schedule: RBSchedule,
    transmitting_ues: Iterable[int],
    sinr_db_by_ue: Mapping[int, float],
    num_antennas: int,
    subframe_duration_s: float = 1e-3,
    granted_rate_by_ue: Optional[Mapping[int, float]] = None,
    rate_scale: float = 1.0,
) -> RBReception:
    """Decode one RB with a SIC receiver (NOMA-capable counterpart of
    :func:`repro.lte.phy.receive_rb`).

    Arguments mirror ``receive_rb``; ``sinr_db_by_ue`` is each stream's
    single-stream SNR (its power over the noise floor).
    """
    if num_antennas < 1:
        raise ConfigurationError(f"num_antennas must be >= 1: {num_antennas}")
    transmitters = sorted(set(transmitting_ues))
    granted_ids = set(rb_schedule.ue_ids)
    unknown = set(transmitters) - granted_ids
    if unknown:
        raise ConfigurationError(
            f"transmitters {sorted(unknown)} were never granted RB {rb_schedule.rb}"
        )
    if granted_rate_by_ue is None:
        granted_rate_by_ue = {g.ue_id: g.rate_bps for g in rb_schedule}

    observation = PilotObservation.from_transmitters(rb_schedule.rb, transmitters)
    reception = RBReception(rb=rb_schedule.rb, pilot_observation=observation)

    for grant in rb_schedule:
        if grant.ue_id not in observation.detected_ues:
            reception.outcomes[grant.ue_id] = GrantOutcome.BLOCKED

    # Strongest-first SIC over the transmitting streams.
    remaining: List[int] = sorted(
        transmitters, key=lambda ue: sinr_db_by_ue[ue], reverse=True
    )
    aborted = False
    while remaining:
        target = remaining[0]
        others = remaining[1:]
        if aborted:
            break
        # Null the (M-1) strongest remaining interferers; the rest pile up.
        unnulled = sorted(
            (_linear(sinr_db_by_ue[ue]) for ue in others), reverse=True
        )[max(num_antennas - 1, 0):]
        residual = sum(unnulled)
        effective_sinr_linear = _linear(sinr_db_by_ue[target]) / (1.0 + residual)
        effective_sinr_db = (
            10.0 * math.log10(effective_sinr_linear)
            if effective_sinr_linear > 0
            else float("-inf")
        )
        achievable = rate_scale * mcs.rb_rate_bps(effective_sinr_db)
        granted = granted_rate_by_ue.get(target, 0.0)
        if granted > 0 and achievable + 1e-9 >= granted:
            reception.outcomes[target] = GrantOutcome.DECODED
            reception.delivered_bits[target] = granted * subframe_duration_s
            remaining = others  # perfect cancellation
        else:
            aborted = True

    # Everything left after an abort is lost: interference-limited streams
    # are collisions, a lone stream that missed its rate is fading.
    for ue in remaining:
        if len(remaining) > 1:
            reception.outcomes[ue] = GrantOutcome.COLLIDED
        else:
            reception.outcomes[ue] = GrantOutcome.FADED
    return reception
