"""Wireless channel models: path loss and time-correlated Rayleigh fading.

The trace-based evaluation in the paper replays per-subframe CSI collected
from WARP UEs.  Here the equivalent substrate is a per-(UE, RB) block-fading
process: a log-distance path-loss mean plus an AR(1)-correlated Rayleigh
fading term, sampled once per subframe.  The eNB observes the resulting SINR
(perfect CSI at the receiver, as with the decoded WARP subframes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts, mcs

__all__ = [
    "PathLossModel",
    "FadingProcess",
    "UplinkChannel",
    "UplinkChannelBank",
    "ChannelView",
]


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with indoor-enterprise defaults.

    ``PL(d) = pl0_db + 10 * exponent * log10(d / d0)``, in dB.

    Defaults (exponent 3.0, 40 dB at 1 m) are typical for the enterprise
    office environments used in the paper's testbed.
    """

    exponent: float = 3.0
    pl0_db: float = 40.0
    d0_m: float = 1.0

    def loss_db(self, distance_m: float) -> float:
        d = max(float(distance_m), self.d0_m)
        return self.pl0_db + 10.0 * self.exponent * np.log10(d / self.d0_m)

    def rx_power_dbm(self, tx_power_dbm: float, distance_m: float) -> float:
        return tx_power_dbm - self.loss_db(distance_m)


class FadingProcess:
    """AR(1)-correlated Rayleigh block fading for one link across RBs.

    Each subframe produces a vector of per-RB linear power gains with unit
    mean.  Temporal correlation is controlled by ``doppler_coherence``
    (the AR(1) coefficient): 0 gives i.i.d. fading per subframe, values near
    1 give slowly varying channels.

    The process is complex Gaussian per RB; the power gain is ``|h|^2``
    which is exponential with unit mean (Rayleigh amplitude).
    """

    def __init__(
        self,
        num_rbs: int,
        doppler_coherence: float = 0.9,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= doppler_coherence < 1.0:
            raise ConfigurationError(
                f"doppler_coherence must be in [0, 1): {doppler_coherence}"
            )
        if num_rbs < 1:
            raise ConfigurationError(f"num_rbs must be positive: {num_rbs}")
        self.num_rbs = num_rbs
        self.rho = doppler_coherence
        self._rng = rng if rng is not None else np.random.default_rng()
        self._h = self._draw_innovation()

    def _draw_innovation(self) -> np.ndarray:
        real = self._rng.standard_normal(self.num_rbs)
        imag = self._rng.standard_normal(self.num_rbs)
        return (real + 1j * imag) / np.sqrt(2.0)

    def step(self) -> np.ndarray:
        """Advance one subframe; return per-RB linear power gains (mean 1)."""
        innovation = self._draw_innovation()
        self._h = self.rho * self._h + np.sqrt(1.0 - self.rho**2) * innovation
        return np.abs(self._h) ** 2

    def current_gains(self) -> np.ndarray:
        """Per-RB power gains of the current state without advancing."""
        return np.abs(self._h) ** 2


class UplinkChannel:
    """The uplink channel of one UE: path loss mean + fading, per RB.

    Produces per-subframe, per-RB SINR (dB) at the eNB, and the matching
    CQI-model rate used by schedulers as ``r_{i,b}``.
    """

    def __init__(
        self,
        mean_rx_power_dbm: float,
        num_rbs: int,
        noise_floor_dbm: float = consts.NOISE_FLOOR_10MHZ_DBM,
        doppler_coherence: float = 0.9,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.mean_rx_power_dbm = float(mean_rx_power_dbm)
        self.noise_floor_dbm = float(noise_floor_dbm)
        self.num_rbs = num_rbs
        self._fading = FadingProcess(num_rbs, doppler_coherence, rng)
        self._sinr_db = self._compute_sinr(self._fading.current_gains())

    def _compute_sinr(self, gains: np.ndarray) -> np.ndarray:
        mean_snr_db = self.mean_rx_power_dbm - self.noise_floor_dbm
        with np.errstate(divide="ignore"):
            fading_db = 10.0 * np.log10(gains)
        return mean_snr_db + fading_db

    def step(self) -> np.ndarray:
        """Advance one subframe; return per-RB SINR in dB."""
        self._sinr_db = self._compute_sinr(self._fading.step())
        return self._sinr_db

    def adjust_mean_snr_db(self, delta_db: float) -> None:
        """Shift the link's mean power (mobility / shadowing dynamics).

        Consumes no randomness — the fading state is untouched — so fast
        and legacy engine paths stay stream-identical across adjustments.
        """
        self.mean_rx_power_dbm += float(delta_db)
        self._sinr_db = self._compute_sinr(self._fading.current_gains())

    @property
    def sinr_db(self) -> np.ndarray:
        """Per-RB SINR (dB) for the current subframe."""
        return self._sinr_db

    def rates_bps(self) -> np.ndarray:
        """Per-RB instantaneous CQI-model rates for the current subframe."""
        return mcs.rb_rate_bps_array(self._sinr_db)

    def mean_snr_db(self) -> float:
        return self.mean_rx_power_dbm - self.noise_floor_dbm


class UplinkChannelBank:
    """All UE uplink channels of one cell as a single batched process.

    Semantically ``num_ues`` independent :class:`UplinkChannel` instances —
    same AR(1) Rayleigh model, same per-UE RNG streams (each UE's generator
    is spawned from the parent in UE order, exactly like the per-object
    construction) — but stepped as one ``(num_ues, num_rbs)`` array op per
    subframe.  Innovations are pre-drawn in blocks per UE; because batched
    ``standard_normal`` draws consume the stream identically to scalar
    draws, a bank run is bit-for-bit identical to an object-per-UE run
    under the same seed (the engine's fast-path regression test asserts
    this).
    """

    _BLOCK_SUBFRAMES = 128

    def __init__(
        self,
        mean_rx_power_dbm: "np.ndarray | list[float]",
        num_rbs: int,
        noise_floor_dbm: float = consts.NOISE_FLOOR_10MHZ_DBM,
        doppler_coherence: float = 0.9,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= doppler_coherence < 1.0:
            raise ConfigurationError(
                f"doppler_coherence must be in [0, 1): {doppler_coherence}"
            )
        if num_rbs < 1:
            raise ConfigurationError(f"num_rbs must be positive: {num_rbs}")
        mean_rx = np.asarray(mean_rx_power_dbm, dtype=float)
        if mean_rx.ndim != 1 or mean_rx.size < 1:
            raise ConfigurationError(
                f"mean_rx_power_dbm must be a non-empty vector: {mean_rx.shape}"
            )
        self.num_ues = int(mean_rx.size)
        self.num_rbs = int(num_rbs)
        self.rho = float(doppler_coherence)
        self.noise_floor_dbm = float(noise_floor_dbm)
        self._mean_snr_db = mean_rx - self.noise_floor_dbm
        parent = rng if rng is not None else np.random.default_rng()
        # One child generator per UE, spawned in UE order — the same parent
        # stream consumption as building UplinkChannel objects in a loop.
        self._rngs = [
            np.random.default_rng(parent.integers(0, 2**63))
            for _ in range(self.num_ues)
        ]
        self._h = np.stack([self._draw_initial(r) for r in self._rngs])
        self._innovations: np.ndarray | None = None
        self._cursor = 0
        self._sinr_db = self._compute_sinr(np.abs(self._h) ** 2)

    def _draw_initial(self, rng: np.random.Generator) -> np.ndarray:
        real = rng.standard_normal(self.num_rbs)
        imag = rng.standard_normal(self.num_rbs)
        return (real + 1j * imag) / np.sqrt(2.0)

    def _compute_sinr(self, gains: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore"):
            fading_db = 10.0 * np.log10(gains)
        return self._mean_snr_db[:, None] + fading_db

    def _refill(self) -> None:
        block = self._BLOCK_SUBFRAMES
        # Per UE: (block, 2, num_rbs) normals — flattened, that is exactly
        # the real/imag draw order of `block` successive FadingProcess steps.
        raw = np.stack(
            [r.standard_normal((block, 2, self.num_rbs)) for r in self._rngs]
        )
        self._innovations = (raw[:, :, 0, :] + 1j * raw[:, :, 1, :]) / np.sqrt(2.0)
        self._cursor = 0

    def step(self) -> np.ndarray:
        """Advance all channels one subframe; return ``(U, R)`` SINRs (dB)."""
        if self._innovations is None or self._cursor >= self._BLOCK_SUBFRAMES:
            self._refill()
        innovation = self._innovations[:, self._cursor, :]
        self._cursor += 1
        self._h = self.rho * self._h + np.sqrt(1.0 - self.rho**2) * innovation
        self._sinr_db = self._compute_sinr(np.abs(self._h) ** 2)
        return self._sinr_db

    @property
    def sinr_db(self) -> np.ndarray:
        """Per-(UE, RB) SINR (dB) for the current subframe."""
        return self._sinr_db

    def sinr_row(self, ue: int) -> np.ndarray:
        """The current per-RB SINR view of one UE (no copy)."""
        return self._sinr_db[ue]

    def adjust_mean_snr_db(self, ue: int, delta_db: float) -> None:
        """Shift one UE's mean SNR; RNG state untouched (see
        :meth:`UplinkChannel.adjust_mean_snr_db`)."""
        if not 0 <= ue < self.num_ues:
            raise ConfigurationError(f"unknown UE id {ue}")
        self._mean_snr_db[ue] += float(delta_db)
        self._sinr_db = self._compute_sinr(np.abs(self._h) ** 2)

    def mean_snr_db(self, ue: int) -> float:
        return float(self._mean_snr_db[ue])

    def view(self, ue: int) -> "ChannelView":
        return ChannelView(self, ue)


class ChannelView:
    """Read-only :class:`UplinkChannel`-shaped view of one bank row.

    Lets code written against per-UE channel objects (HARQ accounting,
    diagnostics) keep working unchanged when the engine runs on the bank.
    Stepping happens on the bank, never through a view.
    """

    __slots__ = ("_bank", "_ue")

    def __init__(self, bank: UplinkChannelBank, ue: int) -> None:
        self._bank = bank
        self._ue = ue

    @property
    def num_rbs(self) -> int:
        return self._bank.num_rbs

    @property
    def sinr_db(self) -> np.ndarray:
        """Per-RB SINR (dB) for the current subframe."""
        return self._bank.sinr_row(self._ue)

    def rates_bps(self) -> np.ndarray:
        """Per-RB instantaneous CQI-model rates for the current subframe."""
        return mcs.rb_rate_bps_array(self.sinr_db)

    def mean_snr_db(self) -> float:
        return self._bank.mean_snr_db(self._ue)
