"""Client traffic models and uplink queues.

The paper's evaluation is full-buffer (every client always has data), and
footnote 1 notes that "coupling constraints across RBs (e.g. finite buffer
data for clients) ... can be accommodated through simple extensions to the
proposed scheduler".  This module provides that extension: per-client
arrival processes and uplink queues, consumed by the simulation engine —
clients with empty queues are simply not schedulable, and a grant delivers
at most what is queued.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts

__all__ = [
    "TrafficSource",
    "FullBufferTraffic",
    "PoissonTraffic",
    "PeriodicTraffic",
    "UeQueue",
]


class TrafficSource:
    """Interface: bits arriving at a client's uplink buffer per subframe."""

    def arrivals_bits(self) -> float:
        """Bits generated during one subframe."""
        raise NotImplementedError

    @property
    def is_full_buffer(self) -> bool:
        """True when the client always has data (infinite backlog)."""
        return False


class FullBufferTraffic(TrafficSource):
    """The paper's evaluation model: an always-backlogged client."""

    def arrivals_bits(self) -> float:
        return math.inf

    @property
    def is_full_buffer(self) -> bool:
        return True


class PoissonTraffic(TrafficSource):
    """Poisson packet arrivals with a mean offered load in bits/s."""

    def __init__(
        self,
        mean_rate_bps: float,
        packet_bits: float = 12_000.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if mean_rate_bps < 0:
            raise ConfigurationError(f"negative offered load: {mean_rate_bps}")
        if packet_bits <= 0:
            raise ConfigurationError(f"packet size must be positive: {packet_bits}")
        self.mean_rate_bps = float(mean_rate_bps)
        self.packet_bits = float(packet_bits)
        self._packets_per_subframe = (
            mean_rate_bps * consts.SUBFRAME_DURATION_S / packet_bits
        )
        self._rng = rng if rng is not None else np.random.default_rng()

    def arrivals_bits(self) -> float:
        packets = self._rng.poisson(self._packets_per_subframe)
        return float(packets) * self.packet_bits


class PeriodicTraffic(TrafficSource):
    """Constant-bit-rate traffic: a fixed burst every ``period`` subframes.

    Models periodic uplink sources (sensor reports, voice frames, the
    AR/VR and live-streaming applications the paper's introduction cites).
    """

    def __init__(self, bits_per_burst: float, period_subframes: int) -> None:
        if bits_per_burst <= 0:
            raise ConfigurationError(
                f"burst size must be positive: {bits_per_burst}"
            )
        if period_subframes < 1:
            raise ConfigurationError(
                f"period must be at least one subframe: {period_subframes}"
            )
        self.bits_per_burst = float(bits_per_burst)
        self.period = int(period_subframes)
        self._tick = 0

    def arrivals_bits(self) -> float:
        self._tick += 1
        if self._tick >= self.period:
            self._tick = 0
            return self.bits_per_burst
        return 0.0


class UeQueue:
    """One client's uplink buffer."""

    def __init__(self, source: TrafficSource) -> None:
        self.source = source
        self._queued = math.inf if source.is_full_buffer else 0.0
        self.total_arrived = 0.0
        self.total_drained = 0.0

    @property
    def queued_bits(self) -> float:
        return self._queued

    @property
    def backlogged(self) -> bool:
        return self._queued > 0.0

    def step_arrivals(self) -> float:
        """Apply one subframe of arrivals; return the bits added."""
        if self.source.is_full_buffer:
            return math.inf
        arrived = self.source.arrivals_bits()
        self._queued += arrived
        self.total_arrived += arrived
        return arrived

    def drain(self, bits: float) -> float:
        """Remove up to ``bits`` from the queue; return what actually left."""
        if bits < 0:
            raise ConfigurationError(f"cannot drain negative bits: {bits}")
        if self.source.is_full_buffer:
            self.total_drained += bits
            return bits
        taken = min(bits, self._queued)
        self._queued -= taken
        self.total_drained += taken
        return taken
