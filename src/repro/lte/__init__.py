"""LTE substrate: frame structure, rates, channels, UE/eNB node models."""

from repro.lte import consts
from repro.lte.channel import FadingProcess, PathLossModel, UplinkChannel
from repro.lte.enb import ENodeB, SubframeReception
from repro.lte.mcs import (
    CQI_TABLE,
    CqiEntry,
    cqi_to_efficiency,
    rb_rate_bps,
    shannon_rb_rate_bps,
    sinr_to_cqi,
    sinr_to_efficiency,
)
from repro.lte.phy import (
    GrantOutcome,
    RBReception,
    effective_rate_bps,
    mumimo_sinr_penalty_db,
    receive_rb,
)
from repro.lte.harq import HarqConfig, HarqPool, HarqTransportBlock
from repro.lte.noma import receive_rb_sic
from repro.lte.pilots import (
    MAX_ORTHOGONAL_PILOTS,
    PilotObservation,
    assign_pilot_indices,
)
from repro.lte.resources import RBSchedule, SubframeSchedule, TxOp, UplinkGrant
from repro.lte.traffic import (
    FullBufferTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TrafficSource,
    UeQueue,
)
from repro.lte.ue import UserEquipment

__all__ = [
    "consts",
    "CQI_TABLE",
    "CqiEntry",
    "ENodeB",
    "FadingProcess",
    "FullBufferTraffic",
    "GrantOutcome",
    "HarqConfig",
    "HarqPool",
    "HarqTransportBlock",
    "MAX_ORTHOGONAL_PILOTS",
    "PathLossModel",
    "PeriodicTraffic",
    "PilotObservation",
    "PoissonTraffic",
    "RBReception",
    "RBSchedule",
    "SubframeReception",
    "SubframeSchedule",
    "TrafficSource",
    "TxOp",
    "UeQueue",
    "UplinkChannel",
    "UplinkGrant",
    "UserEquipment",
    "assign_pilot_indices",
    "cqi_to_efficiency",
    "effective_rate_bps",
    "mumimo_sinr_penalty_db",
    "rb_rate_bps",
    "receive_rb",
    "receive_rb_sic",
    "shannon_rb_rate_bps",
    "sinr_to_cqi",
    "sinr_to_efficiency",
]
