"""Resource-grid and grant structures for LTE uplink scheduling.

These types carry a schedule from the scheduler, through the simulated air
interface, to the eNB receiver:

* :class:`UplinkGrant` — one client's allocation on one RB of one subframe.
* :class:`RBSchedule` — the (possibly over-scheduled) set of grants on one RB.
* :class:`SubframeSchedule` — schedule across all RBs of one subframe.
* :class:`TxOp` — a transmission opportunity: a run of subframes acquired by
  the eNB after its own CCA/backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import SchedulingError
from repro.lte import consts

__all__ = ["UplinkGrant", "RBSchedule", "SubframeSchedule", "TxOp"]


@dataclass(frozen=True)
class UplinkGrant:
    """A scheduled uplink allocation for one client on one resource block.

    Attributes:
        ue_id: identifier of the granted client.
        rb: resource-block index.
        rate_bps: rate the eNB expects if the grant is used, from the
            client's reported channel (``r_{i,b}`` or ``r_{i,b,g}``).
        pilot_index: orthogonal DMRS cyclic-shift index.  Grants that share
            an RB must carry distinct pilot indices so the eNB can tell a
            collision (multiple pilots seen) from fading (one pilot seen,
            data undecodable) — Section 3.3 of the paper.
    """

    ue_id: int
    rb: int
    rate_bps: float
    pilot_index: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps < 0:
            raise SchedulingError(f"negative grant rate: {self.rate_bps}")
        if self.rb < 0:
            raise SchedulingError(f"negative RB index: {self.rb}")


@dataclass
class RBSchedule:
    """All grants issued on one resource block of one subframe.

    Grants must be added through :meth:`add` (which also maintains the
    cached id/pilot indexes used on the reception hot path); do not append
    to ``grants`` directly.
    """

    rb: int
    grants: List[UplinkGrant] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._ue_ids: Tuple[int, ...] = tuple(g.ue_id for g in self.grants)
        self._ue_set = set(self._ue_ids)
        self._pilot_set = {g.pilot_index for g in self.grants}

    def add(self, grant: UplinkGrant) -> None:
        if grant.rb != self.rb:
            raise SchedulingError(
                f"grant for RB {grant.rb} added to schedule of RB {self.rb}"
            )
        if grant.ue_id in self._ue_set:
            raise SchedulingError(
                f"UE {grant.ue_id} already granted on RB {self.rb}"
            )
        if grant.pilot_index in self._pilot_set:
            raise SchedulingError(
                f"pilot index {grant.pilot_index} reused on RB {self.rb}"
            )
        self.grants.append(grant)
        self._ue_ids += (grant.ue_id,)
        self._ue_set.add(grant.ue_id)
        self._pilot_set.add(grant.pilot_index)

    @property
    def ue_ids(self) -> Tuple[int, ...]:
        return self._ue_ids

    def __len__(self) -> int:
        return len(self.grants)

    def __iter__(self) -> Iterator[UplinkGrant]:
        return iter(self.grants)


@dataclass
class SubframeSchedule:
    """The complete uplink schedule of one subframe.

    The schedule maps every RB index in ``range(num_rbs)`` to an
    :class:`RBSchedule` (possibly empty).
    """

    num_rbs: int = consts.RBS_10MHZ
    rb_schedules: Dict[int, RBSchedule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rb in range(self.num_rbs):
            self.rb_schedules.setdefault(rb, RBSchedule(rb=rb))

    def rb(self, rb: int) -> RBSchedule:
        try:
            return self.rb_schedules[rb]
        except KeyError:
            raise SchedulingError(f"RB index {rb} outside grid of {self.num_rbs}")

    def add_grant(self, grant: UplinkGrant) -> None:
        self.rb(grant.rb).add(grant)

    def scheduled_ues(self) -> Tuple[int, ...]:
        """Distinct UE ids granted anywhere in this subframe, sorted."""
        ids = {g.ue_id for rbs in self.rb_schedules.values() for g in rbs}
        return tuple(sorted(ids))

    def grants_for(self, ue_id: int) -> List[UplinkGrant]:
        return [
            g
            for rbs in self.rb_schedules.values()
            for g in rbs
            if g.ue_id == ue_id
        ]

    @property
    def total_grants(self) -> int:
        return sum(len(rbs) for rbs in self.rb_schedules.values())

    def allocated_rbs(self) -> List[int]:
        """RB indices that carry at least one grant."""
        return [rb for rb, rbs in sorted(self.rb_schedules.items()) if len(rbs)]


@dataclass(frozen=True)
class TxOp:
    """A transmission opportunity acquired by the eNB.

    The eNB performs CCA/backoff once, then owns the channel for
    ``dl_subframes + ul_subframes`` consecutive subframes (Fig. 2b: a 2-10 ms
    TxOP with a flexible DL/UL split).  Only the UL part is scheduled by the
    uplink schedulers in this package.
    """

    start_subframe: int
    dl_subframes: int
    ul_subframes: int

    def __post_init__(self) -> None:
        total = self.dl_subframes + self.ul_subframes
        if not consts.TXOP_MIN_SUBFRAMES <= total <= consts.TXOP_MAX_SUBFRAMES:
            raise SchedulingError(
                f"TxOP of {total} subframes outside "
                f"[{consts.TXOP_MIN_SUBFRAMES}, {consts.TXOP_MAX_SUBFRAMES}]"
            )
        if self.dl_subframes < 1:
            raise SchedulingError("TxOP needs at least one DL subframe for grants")
        if self.ul_subframes < 0:
            raise SchedulingError("negative UL subframe count")

    @property
    def total_subframes(self) -> int:
        return self.dl_subframes + self.ul_subframes

    @property
    def end_subframe(self) -> int:
        """First subframe index after this TxOP."""
        return self.start_subframe + self.total_subframes

    def ul_subframe_indices(self) -> Sequence[int]:
        first_ul = self.start_subframe + self.dl_subframes
        return range(first_ul, self.end_subframe)
