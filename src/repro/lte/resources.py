"""Resource-grid and grant structures for LTE uplink scheduling.

These types carry a schedule from the scheduler, through the simulated air
interface, to the eNB receiver:

* :class:`UplinkGrant` — one client's allocation on one RB of one subframe.
* :class:`RBSchedule` — the (possibly over-scheduled) set of grants on one RB.
* :class:`SubframeSchedule` — schedule across all RBs of one subframe.
* :class:`TxOp` — a transmission opportunity: a run of subframes acquired by
  the eNB after its own CCA/backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import SchedulingError
from repro.lte import consts

__all__ = ["UplinkGrant", "RBSchedule", "SubframeSchedule", "TxOp"]


class _GrantFields(NamedTuple):
    ue_id: int
    rb: int
    rate_bps: float
    pilot_index: int = 0


class UplinkGrant(_GrantFields):
    """A scheduled uplink allocation for one client on one resource block.

    A validated, immutable named tuple: schedulers construct tens of
    grants per subframe on the hot path, and tuple construction is about
    half the cost of a frozen dataclass while keeping field names,
    equality, hashing, and the assignment-raises contract.

    Attributes:
        ue_id: identifier of the granted client.
        rb: resource-block index.
        rate_bps: rate the eNB expects if the grant is used, from the
            client's reported channel (``r_{i,b}`` or ``r_{i,b,g}``).
        pilot_index: orthogonal DMRS cyclic-shift index.  Grants that share
            an RB must carry distinct pilot indices so the eNB can tell a
            collision (multiple pilots seen) from fading (one pilot seen,
            data undecodable) — Section 3.3 of the paper.
    """

    __slots__ = ()

    def __new__(
        cls, ue_id: int, rb: int, rate_bps: float, pilot_index: int = 0
    ) -> "UplinkGrant":
        if rate_bps < 0:
            raise SchedulingError(f"negative grant rate: {rate_bps}")
        if rb < 0:
            raise SchedulingError(f"negative RB index: {rb}")
        return tuple.__new__(cls, (ue_id, rb, rate_bps, pilot_index))


@dataclass
class RBSchedule:
    """All grants issued on one resource block of one subframe.

    Grants must be added through :meth:`add` (which also maintains the
    cached id/pilot indexes used on the reception hot path); do not append
    to ``grants`` directly.
    """

    rb: int
    grants: List[UplinkGrant] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The id/pilot indexes are caches: builders append whole validated
        # groups per RB and never read them, while the reception path and
        # incremental `add` do.  Building them lazily keeps the scheduler
        # hot path from paying for structures only the receiver (or a
        # validating caller) consults.
        self._ue_ids: Optional[Tuple[int, ...]] = None
        self._ue_set: Optional[set] = None
        self._pilot_set: Optional[set] = None

    def _index(self) -> None:
        self._ue_ids = tuple(g.ue_id for g in self.grants)
        self._ue_set = set(self._ue_ids)
        self._pilot_set = {g.pilot_index for g in self.grants}

    def add(self, grant: UplinkGrant) -> None:
        if self._ue_set is None:
            self._index()
        if grant.rb != self.rb:
            raise SchedulingError(
                f"grant for RB {grant.rb} added to schedule of RB {self.rb}"
            )
        if grant.ue_id in self._ue_set:
            raise SchedulingError(
                f"UE {grant.ue_id} already granted on RB {self.rb}"
            )
        if grant.pilot_index in self._pilot_set:
            raise SchedulingError(
                f"pilot index {grant.pilot_index} reused on RB {self.rb}"
            )
        self.grants.append(grant)
        self._ue_ids += (grant.ue_id,)
        self._ue_set.add(grant.ue_id)
        self._pilot_set.add(grant.pilot_index)

    def grant_group(self, ues: Sequence[int], rates: Sequence[float]) -> None:
        """Append one grant per client with sequential pilot indices.

        The trusted bulk path for schedule builders: the caller guarantees
        what :meth:`add` would re-check grant by grant — ``ues`` are
        distinct, not yet granted on this RB, and ``rates`` (aligned with
        ``ues``: ``rates[i]`` is the grant rate of ``ues[i]``) are
        non-negative.  Greedy builders construct groups satisfying all
        three by construction, and the per-grant validation is pure
        overhead at tens of grants per subframe.
        """
        rb = self.rb
        start = len(self.grants)
        new = tuple.__new__
        added = [
            new(UplinkGrant, (ue, rb, rate, pilot))
            for pilot, (ue, rate) in enumerate(zip(ues, rates), start=start)
        ]
        self.grants.extend(added)
        if self._ue_set is not None:
            self._ue_ids += tuple(ues)
            self._ue_set.update(ues)
            self._pilot_set.update(range(start, start + len(added)))
        elif self._ue_ids is not None:
            self._ue_ids += tuple(ues)

    @property
    def ue_ids(self) -> Tuple[int, ...]:
        ids = self._ue_ids
        if ids is None:
            ids = self._ue_ids = tuple(g.ue_id for g in self.grants)
        return ids

    def __len__(self) -> int:
        return len(self.grants)

    def __iter__(self) -> Iterator[UplinkGrant]:
        return iter(self.grants)


@dataclass
class SubframeSchedule:
    """The complete uplink schedule of one subframe.

    The schedule maps every RB index in ``range(num_rbs)`` to an
    :class:`RBSchedule` (possibly empty).
    """

    num_rbs: int = consts.RBS_10MHZ
    rb_schedules: Dict[int, RBSchedule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rb in range(self.num_rbs):
            self.rb_schedules.setdefault(rb, RBSchedule(rb=rb))

    @classmethod
    def empty(cls, num_rbs: int) -> "SubframeSchedule":
        """A fresh all-empty schedule, skipping dataclass machinery.

        Hot-path constructor for schedule builders: equivalent to
        ``SubframeSchedule(num_rbs=num_rbs)`` but builds the per-RB
        structures directly (one empty :class:`RBSchedule` per RB), which
        is several times cheaper than the generated ``__init__`` chain at
        tens of RBs per scheduling call.
        """
        self = object.__new__(cls)
        self.num_rbs = num_rbs
        new = object.__new__
        schedules = {}
        for rb in range(num_rbs):
            slot = new(RBSchedule)
            slot.rb = rb
            slot.grants = []
            slot._ue_ids = None
            slot._ue_set = None
            slot._pilot_set = None
            schedules[rb] = slot
        self.rb_schedules = schedules
        return self

    def rb(self, rb: int) -> RBSchedule:
        try:
            return self.rb_schedules[rb]
        except KeyError:
            raise SchedulingError(f"RB index {rb} outside grid of {self.num_rbs}")

    def add_grant(self, grant: UplinkGrant) -> None:
        self.rb(grant.rb).add(grant)

    def scheduled_ues(self) -> Tuple[int, ...]:
        """Distinct UE ids granted anywhere in this subframe, sorted."""
        ids = {g.ue_id for rbs in self.rb_schedules.values() for g in rbs}
        return tuple(sorted(ids))

    def grants_for(self, ue_id: int) -> List[UplinkGrant]:
        return [
            g
            for rbs in self.rb_schedules.values()
            for g in rbs
            if g.ue_id == ue_id
        ]

    @property
    def total_grants(self) -> int:
        return sum(len(rbs) for rbs in self.rb_schedules.values())

    def allocated_rbs(self) -> List[int]:
        """RB indices that carry at least one grant."""
        return [rb for rb, rbs in sorted(self.rb_schedules.items()) if len(rbs)]


@dataclass(frozen=True)
class TxOp:
    """A transmission opportunity acquired by the eNB.

    The eNB performs CCA/backoff once, then owns the channel for
    ``dl_subframes + ul_subframes`` consecutive subframes (Fig. 2b: a 2-10 ms
    TxOP with a flexible DL/UL split).  Only the UL part is scheduled by the
    uplink schedulers in this package.
    """

    start_subframe: int
    dl_subframes: int
    ul_subframes: int

    def __post_init__(self) -> None:
        total = self.dl_subframes + self.ul_subframes
        if not consts.TXOP_MIN_SUBFRAMES <= total <= consts.TXOP_MAX_SUBFRAMES:
            raise SchedulingError(
                f"TxOP of {total} subframes outside "
                f"[{consts.TXOP_MIN_SUBFRAMES}, {consts.TXOP_MAX_SUBFRAMES}]"
            )
        if self.dl_subframes < 1:
            raise SchedulingError("TxOP needs at least one DL subframe for grants")
        if self.ul_subframes < 0:
            raise SchedulingError("negative UL subframe count")

    @property
    def total_subframes(self) -> int:
        return self.dl_subframes + self.ul_subframes

    @property
    def end_subframe(self) -> int:
        """First subframe index after this TxOP."""
        return self.start_subframe + self.total_subframes

    def ul_subframe_indices(self) -> Sequence[int]:
        first_ul = self.start_subframe + self.dl_subframes
        return range(first_ul, self.end_subframe)
