"""The eNB: TxOP acquisition, grant issuance, and uplink reception.

The eNB is the only node in the cell that contends for the channel
(Fig. 2b): it runs CCA/backoff against interference *it* can hear, then owns
a TxOP of a few subframes.  The DL part of the TxOP carries grants; the UL
part carries the scheduled client transmissions, each gated by the client's
own CCA.  Reception on every RB follows :func:`repro.lte.phy.receive_rb`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts, mcs
from repro.lte.noma import receive_rb_sic
from repro.lte.phy import (
    GrantOutcome,
    RBReception,
    mumimo_sinr_penalty_db,
    receive_rb,
)
from repro.lte.pilots import PilotObservation
from repro.lte.resources import SubframeSchedule, TxOp

__all__ = ["ENodeB", "SubframeReception"]


@dataclass
class SubframeReception:
    """Reception result of all RBs in one uplink subframe."""

    subframe: int
    rb_receptions: Dict[int, RBReception] = field(default_factory=dict)

    @property
    def delivered_bits(self) -> float:
        return sum(r.total_bits for r in self.rb_receptions.values())

    def delivered_bits_by_ue(self) -> Dict[int, float]:
        totals: Dict[int, float] = {}
        for reception in self.rb_receptions.values():
            for ue, bits in reception.delivered_bits.items():
                totals[ue] = totals.get(ue, 0.0) + bits
        return totals

    def utilized_rbs(self) -> int:
        return sum(1 for r in self.rb_receptions.values() if r.utilized)

    def outcome_counts(self) -> Dict[GrantOutcome, int]:
        counts = {outcome: 0 for outcome in GrantOutcome}
        for reception in self.rb_receptions.values():
            for outcome in reception.outcomes.values():
                counts[outcome] += 1
        return counts


class ENodeB:
    """An LTE base station with ``M`` receive antennas in unlicensed band.

    Responsibilities:

    * acquire TxOPs through its own CCA/backoff (a Bernoulli busy process
      models interference audible at the eNB; true *hidden* terminals never
      appear here — that is what makes them hidden);
    * receive and classify every granted RB of every uplink subframe.
    """

    def __init__(
        self,
        num_antennas: int,
        num_rbs: int = consts.RBS_10MHZ,
        enb_busy_probability: float = 0.0,
        dl_subframes_per_txop: int = 1,
        ul_subframes_per_txop: int = consts.SUBFRAMES_PER_BURST,
        rate_scale: float = 1.0,
        receiver: str = "linear",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if num_antennas < 1:
            raise ConfigurationError(f"num_antennas must be >= 1: {num_antennas}")
        if not 0.0 <= enb_busy_probability < 1.0:
            raise ConfigurationError(
                f"enb_busy_probability must be in [0, 1): {enb_busy_probability}"
            )
        self.num_antennas = num_antennas
        self.num_rbs = num_rbs
        self.enb_busy_probability = enb_busy_probability
        self.dl_subframes_per_txop = dl_subframes_per_txop
        self.ul_subframes_per_txop = ul_subframes_per_txop
        self.rate_scale = float(rate_scale)
        if receiver not in ("linear", "sic"):
            raise ConfigurationError(
                f"receiver must be 'linear' or 'sic': {receiver!r}"
            )
        self.receiver = receiver
        self._rng = rng if rng is not None else np.random.default_rng()
        self._txops_acquired = 0
        self._txop_attempts = 0

    def try_acquire_txop(self, start_subframe: int) -> Optional[TxOp]:
        """Attempt CCA at ``start_subframe``; return a TxOP on success.

        On failure (eNB-audible interference) the eNB backs off one subframe
        and the caller retries; ``None`` is returned.
        """
        self._txop_attempts += 1
        if self._rng.random() < self.enb_busy_probability:
            return None
        self._txops_acquired += 1
        return TxOp(
            start_subframe=start_subframe,
            dl_subframes=self.dl_subframes_per_txop,
            ul_subframes=self.ul_subframes_per_txop,
        )

    def receive_subframe(
        self,
        subframe: int,
        schedule: SubframeSchedule,
        transmitting_ues: Sequence[int],
        sinr_db_by_ue_rb: Mapping[int, "Mapping[int, float] | np.ndarray"],
    ) -> SubframeReception:
        """Decode one uplink subframe.

        Args:
            subframe: absolute subframe index (for bookkeeping).
            schedule: the grants issued for this subframe.
            transmitting_ues: UEs whose CCA passed this subframe.  A UE
                either transmits on all its grants or none (CCA is per
                subframe, not per RB — the whole carrier is sensed).
            sinr_db_by_ue_rb: per-UE instantaneous SINRs, indexable by RB —
                a ``{rb: sinr_db}`` dict or a per-RB ndarray row (the
                engine's fast path hands channel-bank rows in directly).
        """
        transmitting = set(transmitting_ues)
        result = SubframeReception(subframe=subframe)
        receive = receive_rb_sic if self.receiver == "sic" else receive_rb
        for rb in schedule.allocated_rbs():
            rb_schedule = schedule.rb(rb)
            rb_transmitters = [u for u in rb_schedule.ue_ids if u in transmitting]
            sinr_by_ue = {
                ue: sinr_db_by_ue_rb[ue][rb]
                for ue in rb_transmitters
                if ue in sinr_db_by_ue_rb
            }
            result.rb_receptions[rb] = receive(
                rb_schedule=rb_schedule,
                transmitting_ues=rb_transmitters,
                sinr_db_by_ue=sinr_by_ue,
                num_antennas=self.num_antennas,
                subframe_duration_s=consts.SUBFRAME_DURATION_S,
                rate_scale=self.rate_scale,
            )
        return result

    def receive_subframe_fast(
        self,
        subframe: int,
        schedule: SubframeSchedule,
        transmitting_ues: Sequence[int],
        sinr_db_by_ue_rb: Mapping[int, "Mapping[int, float] | np.ndarray"],
    ) -> SubframeReception:
        """:meth:`receive_subframe` with the per-RB decode inlined.

        For the linear receiver this skips the per-RB validation and
        dictionary shuffling of :func:`repro.lte.phy.receive_rb` (the engine
        already guarantees transmitters are granted and SINRs are present)
        while producing identical :class:`RBReception` objects.  The SIC
        receiver falls back to the generic path.
        """
        if self.receiver != "linear":
            return self.receive_subframe(
                subframe=subframe,
                schedule=schedule,
                transmitting_ues=transmitting_ues,
                sinr_db_by_ue_rb=sinr_db_by_ue_rb,
            )
        transmitting = set(transmitting_ues)
        result = SubframeReception(subframe=subframe)
        antennas = self.num_antennas
        scale = self.rate_scale
        bits_per_bps = consts.SUBFRAME_DURATION_S
        rate_for = mcs.rb_rate_bps
        for rb in schedule.allocated_rbs():
            rb_schedule = schedule.rb(rb)
            rb_transmitters = [
                u for u in rb_schedule.ue_ids if u in transmitting
            ]
            detected = frozenset(rb_transmitters)
            reception = RBReception(
                rb=rb,
                pilot_observation=PilotObservation(
                    rb=rb, detected_ues=detected
                ),
            )
            num_streams = len(rb_transmitters)
            collided = num_streams > antennas
            penalty = (
                mumimo_sinr_penalty_db(num_streams, antennas)
                if 0 < num_streams <= antennas
                else 0.0
            )
            outcomes = reception.outcomes
            delivered = reception.delivered_bits
            for grant in rb_schedule.grants:
                ue = grant.ue_id
                if ue not in detected:
                    outcomes[ue] = GrantOutcome.BLOCKED
                elif collided:
                    outcomes[ue] = GrantOutcome.COLLIDED
                else:
                    achievable = scale * rate_for(
                        sinr_db_by_ue_rb[ue][rb] + penalty
                    )
                    granted = grant.rate_bps
                    if achievable + 1e-9 >= granted and granted > 0:
                        outcomes[ue] = GrantOutcome.DECODED
                        delivered[ue] = granted * bits_per_bps
                    else:
                        outcomes[ue] = GrantOutcome.FADED
            result.rb_receptions[rb] = reception
        return result

    @property
    def txop_success_fraction(self) -> float:
        if self._txop_attempts == 0:
            return 0.0
        return self._txops_acquired / self._txop_attempts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ENodeB(M={self.num_antennas}, rbs={self.num_rbs})"
