"""Orthogonal uplink pilot (DMRS) model.

Section 3.3 of the paper relies on one PHY property: even when multiple
clients are over-scheduled on the same RB, their DMRS pilots are kept
orthogonal (distinct cyclic shifts), and pilots are sent at the lowest
modulation so they survive fading that kills data.  The eNB therefore learns,
per RB, exactly *which* granted clients transmitted — enabling it to classify
a decoding failure as collision (several pilots present) versus fading (one
pilot present, data lost) versus hidden-terminal blocking (no pilot at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence

from repro.errors import SchedulingError

__all__ = ["MAX_ORTHOGONAL_PILOTS", "assign_pilot_indices", "PilotObservation"]

#: LTE DMRS supports up to 8 orthogonal cyclic shifts per RB.
MAX_ORTHOGONAL_PILOTS = 8


def assign_pilot_indices(ue_ids: Sequence[int]) -> dict:
    """Assign distinct pilot indices to the UEs sharing an RB.

    Raises :class:`SchedulingError` when more UEs share an RB than there are
    orthogonal cyclic shifts — such a schedule could not keep pilots
    orthogonal and would break BLU's loss classification.
    """
    if len(ue_ids) > MAX_ORTHOGONAL_PILOTS:
        raise SchedulingError(
            f"{len(ue_ids)} UEs on one RB exceeds "
            f"{MAX_ORTHOGONAL_PILOTS} orthogonal pilots"
        )
    if len(set(ue_ids)) != len(ue_ids):
        raise SchedulingError(f"duplicate UE ids in pilot assignment: {ue_ids}")
    return {ue: index for index, ue in enumerate(ue_ids)}


@dataclass(frozen=True)
class PilotObservation:
    """What the eNB's pilot detector saw on one RB of one subframe."""

    rb: int
    detected_ues: FrozenSet[int]

    @staticmethod
    def from_transmitters(rb: int, transmitters: Iterable[int]) -> "PilotObservation":
        """Pilots are robust: every transmitting UE's pilot is detected."""
        return PilotObservation(rb=rb, detected_ues=frozenset(transmitters))

    @property
    def num_detected(self) -> int:
        return len(self.detected_ues)
