"""Uplink PHY reception model: decodability of (over-)scheduled RBs.

The reception rule is the one that makes speculative scheduling a gamble
(Section 2.3 of the paper): an eNB with ``M`` antennas can spatially resolve
at most ``M`` simultaneous streams on an RB.

* 0 transmitters  -> the RB is wasted (grants blocked by hidden terminals).
* 1..M transmitters -> every stream is decoded, unless instantaneous fading
  drops the channel below what the granted rate needs (fading outage).
* > M transmitters -> collision; *all* streams on that RB are lost.

Multi-stream reception costs array gain.  With ``m`` streams at ``M``
antennas a zero-forcing receiver retains ``(M - m + 1) / M`` of the array's
degrees of freedom, so per-stream SINR is scaled by that factor.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lte import mcs
from repro.lte.pilots import PilotObservation
from repro.lte.resources import RBSchedule

__all__ = [
    "GrantOutcome",
    "RBReception",
    "mumimo_sinr_penalty_db",
    "effective_rate_bps",
    "receive_rb",
]


class GrantOutcome(enum.Enum):
    """Fate of one uplink grant, as classified by the eNB (Section 3.3)."""

    #: Grant used and data decoded.
    DECODED = "decoded"
    #: No pilot received: the UE's CCA failed (hidden-terminal blocking).
    BLOCKED = "blocked"
    #: More pilots than antennas on the RB: unresolvable collision.
    COLLIDED = "collided"
    #: Pilot received, stream count fine, but data undecodable: fading loss.
    FADED = "faded"


@dataclass
class RBReception:
    """The eNB-side result of one RB in one uplink subframe."""

    rb: int
    pilot_observation: PilotObservation
    outcomes: Dict[int, GrantOutcome] = field(default_factory=dict)
    delivered_bits: Dict[int, float] = field(default_factory=dict)

    @property
    def utilized(self) -> bool:
        """True when at least one stream on this RB was decoded."""
        return any(o is GrantOutcome.DECODED for o in self.outcomes.values())

    @property
    def total_bits(self) -> float:
        return sum(self.delivered_bits.values())

    def ues_with(self, outcome: GrantOutcome) -> List[int]:
        return sorted(u for u, o in self.outcomes.items() if o is outcome)


@lru_cache(maxsize=None)
def mumimo_sinr_penalty_db(num_streams: int, num_antennas: int) -> float:
    """Per-stream SINR penalty (dB, non-positive) for ``num_streams`` at
    ``num_antennas`` antennas under zero-forcing reception.

    Pure in its two small-integer arguments, and on the per-grant hot path
    of both scheduling and reception — hence memoized.
    """
    if num_streams < 1:
        raise ConfigurationError(f"num_streams must be >= 1: {num_streams}")
    if num_streams > num_antennas:
        raise ConfigurationError(
            f"{num_streams} streams exceed {num_antennas} antennas"
        )
    retained = (num_antennas - num_streams + 1) / num_antennas
    return 10.0 * math.log10(retained)


def effective_rate_bps(
    sinr_db: float, num_streams: int, num_antennas: int
) -> float:
    """CQI-model rate of one stream after the multi-stream SINR penalty."""
    penalty = mumimo_sinr_penalty_db(num_streams, num_antennas)
    return mcs.rb_rate_bps(sinr_db + penalty)


def receive_rb(
    rb_schedule: RBSchedule,
    transmitting_ues: Iterable[int],
    sinr_db_by_ue: Mapping[int, float],
    num_antennas: int,
    subframe_duration_s: float = 1e-3,
    granted_rate_by_ue: Optional[Mapping[int, float]] = None,
    rate_scale: float = 1.0,
) -> RBReception:
    """Decode one RB of one uplink subframe at the eNB.

    Args:
        rb_schedule: the grants issued on this RB (possibly over-scheduled).
        transmitting_ues: granted UEs whose CCA passed and who transmitted.
        sinr_db_by_ue: instantaneous per-UE SINR on this RB *this subframe*.
        num_antennas: eNB receive antennas ``M``.
        subframe_duration_s: used to convert decoded rate to delivered bits.
        granted_rate_by_ue: the rate each grant was issued at.  A stream is
            decodable only if the instantaneous channel still supports the
            granted rate; otherwise the stream is a fading loss.  Defaults to
            the rates embedded in the grants.
        rate_scale: physical RBs per allocation unit.  Granted rates are
            per allocation unit; the achievable rate from the single-RB
            rate model is multiplied by this before comparison.

    Returns:
        An :class:`RBReception` with a :class:`GrantOutcome` for every grant.
    """
    transmitters = sorted(set(transmitting_ues))
    granted_ids = set(rb_schedule.ue_ids)
    unknown = set(transmitters) - granted_ids
    if unknown:
        raise ConfigurationError(
            f"transmitters {sorted(unknown)} were never granted RB {rb_schedule.rb}"
        )

    if granted_rate_by_ue is None:
        granted_rate_by_ue = {g.ue_id: g.rate_bps for g in rb_schedule}

    observation = PilotObservation.from_transmitters(rb_schedule.rb, transmitters)
    reception = RBReception(rb=rb_schedule.rb, pilot_observation=observation)

    num_streams = len(transmitters)
    collided = num_streams > num_antennas

    for grant in rb_schedule:
        ue = grant.ue_id
        if ue not in observation.detected_ues:
            reception.outcomes[ue] = GrantOutcome.BLOCKED
            continue
        if collided:
            reception.outcomes[ue] = GrantOutcome.COLLIDED
            continue
        sinr_db = sinr_db_by_ue.get(ue)
        if sinr_db is None:
            raise ConfigurationError(f"no SINR available for transmitting UE {ue}")
        achievable = rate_scale * effective_rate_bps(
            sinr_db, num_streams, num_antennas
        )
        granted = granted_rate_by_ue.get(ue, grant.rate_bps)
        if achievable + 1e-9 >= granted and granted > 0:
            reception.outcomes[ue] = GrantOutcome.DECODED
            reception.delivered_bits[ue] = granted * subframe_duration_s
        else:
            reception.outcomes[ue] = GrantOutcome.FADED
    return reception
