"""CQI / MCS rate model for the LTE substrate.

The scheduler needs per-RB instantaneous rates ``r_{i,b}``.  We derive them
from SINR through the standard LTE CQI table (36.213 Table 7.2.3-1): each CQI
index maps to a modulation order and code rate, i.e. a spectral efficiency in
bits per resource element.  Rates are then ``efficiency * data REs per RB /
subframe duration``.

CQI selection thresholds are derived from Shannon capacity with an
implementation-efficiency margin: CQI ``c`` is usable at the lowest SINR
where the RB's capacity, derated by ``IMPLEMENTATION_EFFICIENCY``, covers
the table entry's information bits.  This construction guarantees the
physical invariant that no CQI-model rate ever exceeds channel capacity
(verified by property tests), while tracking published link-level LTE
thresholds within ~1 dB.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.lte import consts

__all__ = [
    "CqiEntry",
    "CQI_TABLE",
    "sinr_to_cqi",
    "sinr_to_cqi_array",
    "cqi_to_efficiency",
    "sinr_to_efficiency",
    "rb_rate_bps",
    "rb_rate_bps_array",
    "min_sinr_db_for_rate",
    "shannon_rb_rate_bps",
]


@dataclass(frozen=True)
class CqiEntry:
    """One row of the LTE CQI table."""

    index: int
    modulation: str
    bits_per_symbol: int
    code_rate: float

    @property
    def efficiency(self) -> float:
        """Spectral efficiency in information bits per resource element."""
        return self.bits_per_symbol * self.code_rate


#: LTE CQI table (36.213 Table 7.2.3-1).  Index 0 means out of range.
CQI_TABLE = (
    CqiEntry(0, "none", 0, 0.0),
    CqiEntry(1, "QPSK", 2, 78 / 1024),
    CqiEntry(2, "QPSK", 2, 120 / 1024),
    CqiEntry(3, "QPSK", 2, 193 / 1024),
    CqiEntry(4, "QPSK", 2, 308 / 1024),
    CqiEntry(5, "QPSK", 2, 449 / 1024),
    CqiEntry(6, "QPSK", 2, 602 / 1024),
    CqiEntry(7, "16QAM", 4, 378 / 1024),
    CqiEntry(8, "16QAM", 4, 490 / 1024),
    CqiEntry(9, "16QAM", 4, 616 / 1024),
    CqiEntry(10, "64QAM", 6, 466 / 1024),
    CqiEntry(11, "64QAM", 6, 567 / 1024),
    CqiEntry(12, "64QAM", 6, 666 / 1024),
    CqiEntry(13, "64QAM", 6, 772 / 1024),
    CqiEntry(14, "64QAM", 6, 873 / 1024),
    CqiEntry(15, "64QAM", 6, 948 / 1024),
)

#: Fraction of Shannon capacity a practical LTE link achieves.
IMPLEMENTATION_EFFICIENCY = 0.75


def _cqi_threshold_db(entry: CqiEntry) -> float:
    """Lowest SINR (dB) at which ``entry`` fits under derated capacity.

    The entry delivers ``efficiency * DATA_RE_PER_RB`` bits per subframe;
    derated capacity delivers ``0.75 * RB_BW * 1 ms * log2(1 + snr)`` bits.
    Solving for equality gives the threshold.
    """
    bits_needed = entry.efficiency * consts.DATA_RE_PER_RB
    capacity_scale = (
        IMPLEMENTATION_EFFICIENCY
        * consts.RB_BANDWIDTH_HZ
        * consts.SUBFRAME_DURATION_S
    )
    snr_linear = 2.0 ** (bits_needed / capacity_scale) - 1.0
    return 10.0 * float(np.log10(snr_linear))


_CQI_SINR_THRESHOLDS_DB = tuple(
    _cqi_threshold_db(entry) for entry in CQI_TABLE[1:]
)

# The thresholds ascend with the CQI index (capacity is monotone in the
# entry's bits), which is what lets CQI selection be a bisection instead of
# a linear scan — both for scalars and for whole SINR arrays at once.
assert all(
    a < b
    for a, b in zip(_CQI_SINR_THRESHOLDS_DB, _CQI_SINR_THRESHOLDS_DB[1:])
), "CQI thresholds must ascend"

_THRESHOLDS_ARRAY = np.asarray(_CQI_SINR_THRESHOLDS_DB)
_EFFICIENCY_ARRAY = np.asarray([entry.efficiency for entry in CQI_TABLE])
_RB_RATE_ARRAY = (
    _EFFICIENCY_ARRAY * consts.DATA_RE_PER_RB / consts.SUBFRAME_DURATION_S
)
# Python-list mirror for the scalar hot path: list indexing beats ndarray
# scalar indexing, and the values are the identical float64 results.
_RB_RATE_LIST = [float(rate) for rate in _RB_RATE_ARRAY]


def sinr_to_cqi(sinr_db: float) -> int:
    """Return the highest CQI index supported at ``sinr_db`` (0 if none)."""
    return bisect_right(_CQI_SINR_THRESHOLDS_DB, sinr_db)


def sinr_to_cqi_array(sinr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`sinr_to_cqi` over an SINR array."""
    return np.searchsorted(_THRESHOLDS_ARRAY, sinr_db, side="right")


def cqi_to_efficiency(cqi: int) -> float:
    """Spectral efficiency (bits per resource element) for a CQI index."""
    if not 0 <= cqi < len(CQI_TABLE):
        raise ValueError(f"CQI index out of range: {cqi}")
    return CQI_TABLE[cqi].efficiency


def sinr_to_efficiency(sinr_db: float) -> float:
    """Spectral efficiency achieved at a given SINR via CQI selection."""
    return cqi_to_efficiency(sinr_to_cqi(sinr_db))


def rb_rate_bps(sinr_db: float) -> float:
    """Instantaneous rate of one RB for one subframe, in bits per second.

    This is the rate model used for ``r_{i,b}`` throughout the schedulers:
    the CQI-table spectral efficiency at the measured SINR, applied to the
    data-bearing resource elements of the RB.  Implemented as a CQI
    bisection plus a precomputed per-CQI rate table; the values are
    bit-identical to computing ``efficiency * DATA_RE_PER_RB /
    SUBFRAME_DURATION_S`` on the fly.
    """
    return _RB_RATE_LIST[bisect_right(_CQI_SINR_THRESHOLDS_DB, sinr_db)]


def rb_rate_bps_array(sinr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`rb_rate_bps` over an SINR array.

    Element-for-element identical to the scalar function: CQI selection is
    the same bisection, and the per-CQI rates are precomputed with the same
    ``efficiency * DATA_RE_PER_RB / SUBFRAME_DURATION_S`` arithmetic.
    """
    return _RB_RATE_ARRAY[sinr_to_cqi_array(sinr_db)]


#: Per-CQI rate tables with a rate scale pre-applied, keyed by the scale.
_SCALED_RATE_ARRAYS: dict = {}


def scaled_rb_rate_bps_array(sinr_db: np.ndarray, scale: float) -> np.ndarray:
    """``scale * rb_rate_bps_array(sinr_db)`` with the multiply hoisted.

    Bit-identical to scaling the result array: the scale is applied once
    per CQI table entry instead of once per element, and each element's
    value is the product of the same two float64 operands either way —
    IEEE multiplication does not care when it runs.  This removes a
    full-size elementwise pass from the per-burst table computation.
    """
    if scale == 1.0:
        return _RB_RATE_ARRAY[sinr_to_cqi_array(sinr_db)]
    table = _SCALED_RATE_ARRAYS.get(scale)
    if table is None:
        table = scale * _RB_RATE_ARRAY
        if len(_SCALED_RATE_ARRAYS) > 64:
            _SCALED_RATE_ARRAYS.clear()
        _SCALED_RATE_ARRAYS[scale] = table
    return table[sinr_to_cqi_array(sinr_db)]


def min_sinr_db_for_rate(rate_bps: float) -> float:
    """Smallest per-RB SINR (dB) whose CQI sustains ``rate_bps``.

    The inverse of :func:`rb_rate_bps` (rates between CQI steps round up to
    the next step's threshold).  Used by HARQ to derive the soft-combining
    target of a failed transport block.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive: {rate_bps}")
    for index, threshold in enumerate(_CQI_SINR_THRESHOLDS_DB, start=1):
        if rb_rate_bps(threshold) + 1e-9 >= rate_bps:
            return threshold
    raise ValueError(
        f"rate {rate_bps:.0f} bps exceeds the top CQI's per-RB capability"
    )


def shannon_rb_rate_bps(sinr_db: float, bandwidth_efficiency: float = 0.75) -> float:
    """Shannon-bound RB rate with an implementation-efficiency factor.

    Provided as an alternative smooth rate model (useful in property tests to
    check the CQI model is sane: the CQI rate must never exceed capacity).
    """
    sinr = 10.0 ** (sinr_db / 10.0)
    capacity = consts.RB_BANDWIDTH_HZ * np.log2(1.0 + sinr)
    return float(bandwidth_efficiency * capacity)
