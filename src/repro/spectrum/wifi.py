"""WiFi hidden-terminal substrate: traffic, rate adaptation, and CSMA/CA.

The paper's hidden terminals are ath9k laptops exchanging iperf UDP flows
with dynamic rate selection.  This module reproduces the behaviourally
relevant parts at subframe granularity:

* an 802.11a/g/n-style bitrate table with SNR-driven rate selection;
* per-node traffic profiles (saturated or Poisson offered load) that turn
  into per-frame airtimes, and hence multi-subframe busy bursts;
* CSMA/CA contention between mutually audible WiFi nodes — nodes that hear
  each other never overlap, while mutually hidden nodes may.

The output is a stream of :class:`~repro.spectrum.medium.MediumSnapshot`
(which nodes occupy the air in each subframe), consumed by the LTE cell as
its interference environment and recordable as a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts
from repro.spectrum.medium import MediumSnapshot

__all__ = [
    "WIFI_BITRATES",
    "select_bitrate_mbps",
    "frame_airtime_subframes",
    "channelized_audibility",
    "TrafficProfile",
    "WiFiNode",
    "WiFiContentionSimulator",
]

#: (bitrate in Mbps, minimum SNR in dB) for 802.11a/g OFDM rates.
WIFI_BITRATES: Tuple[Tuple[float, float], ...] = (
    (6.0, 5.0),
    (9.0, 6.0),
    (12.0, 8.0),
    (18.0, 11.0),
    (24.0, 15.0),
    (36.0, 19.0),
    (48.0, 23.0),
    (54.0, 25.0),
)

#: MAC framing overhead per frame in microseconds (DIFS + preamble + SIFS+ACK).
_FRAME_OVERHEAD_US = 28.0 + 20.0 + 16.0 + 44.0


def select_bitrate_mbps(snr_db: float) -> float:
    """Dynamic rate selection: highest bitrate whose SNR floor is met.

    Falls back to the lowest rate when the link is very poor (a real sender
    would still try at 6 Mbps).
    """
    chosen = WIFI_BITRATES[0][0]
    for bitrate, min_snr in WIFI_BITRATES:
        if snr_db >= min_snr:
            chosen = bitrate
    return chosen


def frame_airtime_subframes(payload_bytes: int, bitrate_mbps: float) -> int:
    """Airtime of one (possibly aggregated) frame, in whole LTE subframes.

    WiFi frames are shorter than 1 ms, but senders with queued data transmit
    back-to-back bursts; we charge at least one subframe per burst.
    """
    if payload_bytes <= 0:
        raise ConfigurationError(f"payload must be positive: {payload_bytes}")
    if bitrate_mbps <= 0:
        raise ConfigurationError(f"bitrate must be positive: {bitrate_mbps}")
    airtime_us = payload_bytes * 8.0 / bitrate_mbps + _FRAME_OVERHEAD_US
    subframes = int(np.ceil(airtime_us / (consts.SUBFRAME_DURATION_S * 1e6)))
    return max(subframes, 1)


@dataclass(frozen=True)
class TrafficProfile:
    """Offered load of one WiFi sender.

    ``arrival_rate`` is the mean number of frame bursts per subframe for a
    Poisson profile; ``saturated=True`` means the sender always has a frame
    queued (iperf at full rate).
    """

    saturated: bool = False
    arrival_rate: float = 0.2
    payload_bytes: int = 12_000

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ConfigurationError(
                f"arrival rate must be non-negative: {self.arrival_rate}"
            )
        if self.payload_bytes <= 0:
            raise ConfigurationError(
                f"payload must be positive: {self.payload_bytes}"
            )


class WiFiNode:
    """A WiFi sender contending for the unlicensed channel."""

    def __init__(
        self,
        node_id: int,
        traffic: TrafficProfile,
        snr_to_receiver_db: float = 25.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.node_id = node_id
        self.traffic = traffic
        self.bitrate_mbps = select_bitrate_mbps(snr_to_receiver_db)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._queue = 0
        self._tx_remaining = 0
        self._backoff = 0

    @property
    def transmitting(self) -> bool:
        return self._tx_remaining > 0

    def arrivals(self) -> None:
        """Queue new frame bursts for this subframe."""
        if self.traffic.saturated:
            if self._queue == 0:
                self._queue = 1
        elif self.traffic.arrival_rate > 0:
            self._queue += int(self._rng.poisson(self.traffic.arrival_rate))

    def wants_channel(self) -> bool:
        return self._queue > 0 and not self.transmitting

    def start_transmission(self) -> None:
        if self._queue <= 0:
            raise ConfigurationError("node started transmitting with empty queue")
        self._queue -= 1
        self._tx_remaining = frame_airtime_subframes(
            self.traffic.payload_bytes, self.bitrate_mbps
        )

    def tick_transmission(self) -> None:
        if self._tx_remaining > 0:
            self._tx_remaining -= 1

    def draw_backoff(self, cw: int = 16) -> int:
        self._backoff = int(self._rng.integers(0, cw))
        return self._backoff


def channelized_audibility(
    audible: Mapping[int, FrozenSet[int]],
    node_channels: Mapping[int, int],
    plan,
    margins_db: Optional[Mapping[int, float]] = None,
) -> Dict[int, FrozenSet[int]]:
    """Prune a carrier-sense audibility map through a channel plan.

    ``audible`` is the co-channel map (who would hear whom were everyone
    on one channel); node ``a`` keeps hearing node ``b`` only when ``b``'s
    received margin at ``a`` (``margins_db[b]``, default 0) survives the
    ACLR attenuation between their channels.  Nodes parked on orthogonal
    channels therefore stop deferring to each other — they contend as if
    alone, which is precisely how putting neighbours on different channels
    removes contention *and* creates cross-channel hidden terminals when
    the leakage still corrupts a receiver the sender cannot sense.
    """
    margins = margins_db or {}
    pruned: Dict[int, FrozenSet[int]] = {}
    for listener, heard in audible.items():
        listen_channel = int(node_channels[listener])
        pruned[listener] = frozenset(
            peer
            for peer in heard
            if plan.aclr_db(listen_channel, int(node_channels[peer]))
            <= float(margins.get(peer, 0.0))
        )
    return pruned


class WiFiContentionSimulator:
    """Subframe-granularity CSMA/CA among a set of WiFi nodes.

    ``audible`` maps each node to the set of peers it can carrier-sense.
    Each subframe: transmissions in flight continue; then nodes with queued
    traffic contend in backoff order, starting a transmission only if no
    node audible to them is (now) transmitting.  Mutually hidden nodes can
    and do overlap — exactly the asynchrony the LTE cell suffers from.
    """

    def __init__(
        self,
        nodes: Sequence[WiFiNode],
        audible: Mapping[int, FrozenSet[int]],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate WiFi node ids: {ids}")
        self.nodes: Dict[int, WiFiNode] = {n.node_id: n for n in nodes}
        for node_id in self.nodes:
            if node_id not in audible:
                raise ConfigurationError(
                    f"node {node_id} missing from audibility map"
                )
        self.audible = {k: frozenset(v) for k, v in audible.items()}
        self._rng = rng if rng is not None else np.random.default_rng()
        self._subframe = 0

    def step(self) -> MediumSnapshot:
        """Advance one subframe; return the set of transmitting nodes."""
        for node in self.nodes.values():
            node.arrivals()

        # Continue in-flight transmissions for this subframe, then decrement.
        active: Set[int] = {n.node_id for n in self.nodes.values() if n.transmitting}

        # Contenders join in backoff order if their neighbourhood is clear.
        contenders = [n for n in self.nodes.values() if n.wants_channel()]
        contenders.sort(key=lambda n: (n.draw_backoff(), n.node_id))
        for node in contenders:
            heard_busy = bool(self.audible[node.node_id] & active)
            if not heard_busy:
                node.start_transmission()
                active.add(node.node_id)

        snapshot = MediumSnapshot.make(self._subframe, active)
        for node in self.nodes.values():
            node.tick_transmission()
        self._subframe += 1
        return snapshot

    def run(self, num_subframes: int) -> List[MediumSnapshot]:
        return [self.step() for _ in range(num_subframes)]

    def activity_trace(self, num_subframes: int) -> Dict[int, np.ndarray]:
        """Per-node boolean busy traces over ``num_subframes`` subframes."""
        traces = {node_id: np.zeros(num_subframes, dtype=bool) for node_id in self.nodes}
        for t in range(num_subframes):
            snapshot = self.step()
            for node_id in snapshot.active_terminals:
                traces[node_id][t] = True
        return traces
