"""Shared-medium state: who is transmitting in a subframe, and who hears it.

The medium couples the hidden-terminal substrate to the LTE cell.  Two modes
are supported and produce the same interface (the set of silenced UEs):

* **graph mode** — a ground-truth interference graph directly lists which
  hidden terminal silences which UE (the abstraction the blueprint operates
  on);
* **energy mode** — received powers are computed from geometry and compared
  against the UE's energy-detection threshold, including the aggregation of
  several simultaneously active terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Set

from repro.spectrum.cca import aggregate_power_dbm

__all__ = ["MediumSnapshot", "silenced_ues_from_graph", "silenced_ues_from_power"]


@dataclass(frozen=True)
class MediumSnapshot:
    """The medium during one subframe: which hidden terminals are active."""

    subframe: int
    active_terminals: FrozenSet[int]

    @staticmethod
    def make(subframe: int, active: Iterable[int]) -> "MediumSnapshot":
        return MediumSnapshot(subframe=subframe, active_terminals=frozenset(active))

    @property
    def is_idle(self) -> bool:
        return not self.active_terminals


def silenced_ues_from_graph(
    snapshot: MediumSnapshot,
    edges: Mapping[int, FrozenSet[int]],
) -> Set[int]:
    """UEs silenced this subframe, given ``edges[ue] = {terminal ids heard}``.

    A UE is silenced when any hidden terminal it can sense is active — the
    binary interference model of the paper (Section 3.5, "Interference
    Impact").
    """
    silenced: Set[int] = set()
    for ue, audible in edges.items():
        if audible & snapshot.active_terminals:
            silenced.add(ue)
    return silenced


def silenced_ues_from_power(
    snapshot: MediumSnapshot,
    rx_power_dbm: Mapping[int, Mapping[int, float]],
    ed_threshold_dbm_by_ue: Mapping[int, float],
) -> Set[int]:
    """UEs silenced this subframe under the energy-aggregation model.

    Args:
        snapshot: active terminals this subframe.
        rx_power_dbm: ``{ue: {terminal: rx power in dBm}}`` for every link.
        ed_threshold_dbm_by_ue: each UE's energy-detection threshold.
    """
    silenced: Set[int] = set()
    for ue, links in rx_power_dbm.items():
        active_powers = [
            p for terminal, p in links.items()
            if terminal in snapshot.active_terminals
        ]
        if not active_powers:
            continue
        if aggregate_power_dbm(active_powers) >= ed_threshold_dbm_by_ue[ue]:
            silenced.add(ue)
    return silenced
