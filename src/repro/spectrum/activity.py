"""Per-subframe activity processes for interfering (hidden) terminals.

The blueprint model of the paper treats each hidden terminal ``k`` as an
independent stochastic source that occupies the medium with stationary
probability ``q(k)`` in any given subframe.  Three concrete processes are
provided:

* :class:`BernoulliActivity` — i.i.d. occupancy, the paper's analytic model.
* :class:`MarkovOnOffActivity` — bursty on/off occupancy with geometric
  sojourn times; same stationary marginal, realistic temporal correlation
  (WiFi frame bursts span multiple LTE subframes).
* :class:`TraceActivity` — replay of a recorded busy/idle trace, used by the
  trace-combination emulation layer.

All processes are independent across terminals, matching the paper's
assumption that distinct hidden terminals are independent sources.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ActivityProcess",
    "BernoulliActivity",
    "ChannelizedActivitySet",
    "DynamicIndependentActivity",
    "ExclusiveGroupActivity",
    "IndependentActivity",
    "JointActivityModel",
    "MarkovOnOffActivity",
    "TraceActivity",
]


class ActivityProcess:
    """Interface: one busy/idle sample per subframe."""

    def step(self) -> bool:
        """Advance one subframe; return True if the terminal is busy."""
        raise NotImplementedError

    def sample_block(self, n: int) -> np.ndarray:
        """Advance ``n`` subframes at once; return the busy samples.

        Produces exactly the sequence ``n`` successive :meth:`step` calls
        would, consuming the process RNG identically, so batched and
        per-subframe stepping are interchangeable under a fixed seed.
        Subclasses override this with a vectorized draw where possible.
        """
        return np.fromiter(
            (self.step() for _ in range(n)), dtype=bool, count=n
        )

    @property
    def stationary_probability(self) -> float:
        """Long-run fraction of busy subframes, ``q(k)``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return the process to its initial state (traces rewind)."""


class BernoulliActivity(ActivityProcess):
    """Independent busy/idle coin flips with probability ``q`` per subframe."""

    def __init__(self, q: float, rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"activity probability out of [0,1]: {q}")
        self.q = float(q)
        self._rng = rng if rng is not None else np.random.default_rng()

    def step(self) -> bool:
        return bool(self._rng.random() < self.q)

    def sample_block(self, n: int) -> np.ndarray:
        # Generator.random(n) consumes the stream exactly like n scalar
        # draws, so this matches n step() calls bit for bit.
        return self._rng.random(n) < self.q

    def retune(self, q: float) -> None:
        """Change the busy probability in place (duty-cycle drift).

        The RNG stream is untouched: the same uniform draws are simply
        compared against the new threshold from the next subframe on.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"activity probability out of [0,1]: {q}")
        self.q = float(q)

    @property
    def stationary_probability(self) -> float:
        return self.q

    def __repr__(self) -> str:  # pragma: no cover
        return f"BernoulliActivity(q={self.q:.3f})"


class MarkovOnOffActivity(ActivityProcess):
    """Two-state Markov busy/idle process.

    Parameterized by the stationary busy probability ``q`` and the mean busy
    burst length in subframes.  Sojourn times are geometric; the stationary
    marginal equals ``q`` exactly, so pair-wise access estimation converges
    to the same values as with :class:`BernoulliActivity`, just more slowly.
    """

    def __init__(
        self,
        q: float,
        mean_busy_subframes: float = 3.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(
                f"Markov activity needs q strictly inside (0,1): {q}"
            )
        if mean_busy_subframes < 1.0:
            raise ConfigurationError(
                f"mean busy burst must be >= 1 subframe: {mean_busy_subframes}"
            )
        self.q = float(q)
        self.mean_busy = float(mean_busy_subframes)
        # Leave-busy probability from the mean sojourn; leave-idle from the
        # stationarity balance  q * p_leave_busy = (1-q) * p_leave_idle.
        self._p_busy_to_idle = 1.0 / self.mean_busy
        self._p_idle_to_busy = self.q * self._p_busy_to_idle / (1.0 - self.q)
        if self._p_idle_to_busy > 1.0:
            raise ConfigurationError(
                f"q={q} with mean busy burst {mean_busy_subframes} is "
                "unreachable (idle->busy probability would exceed 1)"
            )
        self._rng = rng if rng is not None else np.random.default_rng()
        self._busy = bool(self._rng.random() < self.q)

    def step(self) -> bool:
        if self._busy:
            if self._rng.random() < self._p_busy_to_idle:
                self._busy = False
        else:
            if self._rng.random() < self._p_idle_to_busy:
                self._busy = True
        return self._busy

    def sample_block(self, n: int) -> np.ndarray:
        # The chain draws exactly one uniform per subframe in either state,
        # so pre-drawing the block keeps the stream identical to stepping.
        draws = self._rng.random(n)
        out = np.empty(n, dtype=bool)
        busy = self._busy
        p_bi = self._p_busy_to_idle
        p_ib = self._p_idle_to_busy
        for t, u in enumerate(draws):
            if busy:
                if u < p_bi:
                    busy = False
            elif u < p_ib:
                busy = True
            out[t] = busy
        self._busy = busy
        return out

    def retune(self, q: float) -> None:
        """Change the stationary busy probability in place (duty-cycle
        drift).  The mean busy burst length is kept; the chain's current
        state and RNG stream are untouched, so the new marginal phases in
        over the following sojourns."""
        if not 0.0 < q < 1.0:
            raise ConfigurationError(
                f"Markov activity needs q strictly inside (0,1): {q}"
            )
        p_idle_to_busy = q * self._p_busy_to_idle / (1.0 - q)
        if p_idle_to_busy > 1.0:
            raise ConfigurationError(
                f"q={q} with mean busy burst {self.mean_busy} is "
                "unreachable (idle->busy probability would exceed 1)"
            )
        self.q = float(q)
        self._p_idle_to_busy = p_idle_to_busy

    @property
    def stationary_probability(self) -> float:
        return self.q

    def reset(self) -> None:
        self._busy = bool(self._rng.random() < self.q)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MarkovOnOffActivity(q={self.q:.3f}, "
            f"mean_busy={self.mean_busy:.1f} sf)"
        )


class TraceActivity(ActivityProcess):
    """Replay a recorded busy/idle sequence, wrapping around at the end."""

    def __init__(self, samples: Sequence[bool]) -> None:
        if len(samples) == 0:
            raise ConfigurationError("activity trace is empty")
        self._samples = np.asarray(samples, dtype=bool)
        self._cursor = 0

    def step(self) -> bool:
        sample = bool(self._samples[self._cursor])
        self._cursor = (self._cursor + 1) % len(self._samples)
        return sample

    def sample_block(self, n: int) -> np.ndarray:
        indices = (self._cursor + np.arange(n)) % len(self._samples)
        self._cursor = int((self._cursor + n) % len(self._samples))
        return self._samples[indices]

    @property
    def stationary_probability(self) -> float:
        return float(self._samples.mean())

    def reset(self) -> None:
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TraceActivity(len={len(self._samples)}, "
            f"q={self.stationary_probability:.3f})"
        )


class JointActivityModel:
    """Joint busy/idle sampling across a whole set of hidden terminals.

    The per-terminal :class:`ActivityProcess` abstraction assumes
    independence.  Real hidden terminals are WiFi nodes that often
    carrier-sense *each other*: mutually audible terminals share airtime and
    are busy at complementary times.  That anti-correlation is the
    "interference diversity" BLU exploits — clients silenced by contending
    terminals are almost never silenced together.  A joint model samples the
    full active set per subframe so such coupling can be expressed.
    """

    num_terminals: int = 0

    def step(self) -> FrozenSet[int]:
        """Advance one subframe; return the indices of busy terminals."""
        raise NotImplementedError

    def step_vector(self) -> np.ndarray:
        """Advance one subframe; return the busy mask as a boolean vector.

        The default adapts :meth:`step`; models with a native vectorized
        sampler (see :class:`IndependentActivity`) override it.  A model
        instance must be driven through one interface or the other, not a
        mix — both consume the same randomness, but implementations may
        pre-draw blocks.
        """
        mask = np.zeros(self.num_terminals, dtype=bool)
        active = self.step()
        if active:
            mask[list(active)] = True
        return mask

    def marginal(self, index: int) -> float:
        """Stationary busy probability of one terminal."""
        raise NotImplementedError


class IndependentActivity(JointActivityModel):
    """Adapter: a list of independent per-terminal processes.

    :meth:`step_vector` batches the per-terminal draws: each process
    pre-samples a block of subframes from its own RNG (stream-identical to
    per-subframe stepping), and one row of the block is served per call.
    """

    _BLOCK_SUBFRAMES = 512

    def __init__(self, processes: Sequence[ActivityProcess]) -> None:
        self._processes = list(processes)
        self.num_terminals = len(self._processes)
        self._block: Optional[np.ndarray] = None
        self._cursor = 0

    def step(self) -> FrozenSet[int]:
        return frozenset(
            k for k, process in enumerate(self._processes) if process.step()
        )

    def step_vector(self) -> np.ndarray:
        if self.num_terminals == 0:
            return np.zeros(0, dtype=bool)
        if self._block is None or self._cursor >= len(self._block):
            n = self._BLOCK_SUBFRAMES
            self._block = np.column_stack(
                [process.sample_block(n) for process in self._processes]
            )
            self._cursor = 0
        row = self._block[self._cursor]
        self._cursor += 1
        return row

    def marginal(self, index: int) -> float:
        return self._processes[index].stationary_probability


class DynamicIndependentActivity(JointActivityModel):
    """Independent per-terminal processes whose population can change.

    The churn timeline needs to add and remove hidden terminals and re-tune
    duty cycles *mid-run*.  :class:`IndependentActivity` pre-draws blocks of
    samples for speed, which would bake pre-churn parameters into already
    materialized booleans; this variant steps every process one subframe at
    a time instead, so a mutation takes effect on the very next subframe and
    the fast and legacy engine paths consume identical per-process RNG
    streams (the dynamics bit-exactness smoke relies on this).
    """

    def __init__(self, processes: Sequence[ActivityProcess]) -> None:
        self._processes = list(processes)
        self.num_terminals = len(self._processes)

    def step(self) -> FrozenSet[int]:
        return frozenset(
            k for k, process in enumerate(self._processes) if process.step()
        )

    def step_vector(self) -> np.ndarray:
        mask = np.zeros(self.num_terminals, dtype=bool)
        for k, process in enumerate(self._processes):
            if process.step():
                mask[k] = True
        return mask

    def marginal(self, index: int) -> float:
        return self._processes[index].stationary_probability

    # -- churn mutations ---------------------------------------------------

    def add_process(self, process: ActivityProcess) -> int:
        """Append a terminal's process (hidden-node arrival); returns index."""
        self._processes.append(process)
        self.num_terminals = len(self._processes)
        return self.num_terminals - 1

    def remove_process(self, index: int) -> None:
        """Remove a terminal's process (hidden-node departure)."""
        if not 0 <= index < self.num_terminals:
            raise ConfigurationError(f"unknown terminal index {index}")
        del self._processes[index]
        self.num_terminals = len(self._processes)

    def retune(self, index: int, q: float) -> None:
        """Change one terminal's busy probability (duty-cycle drift)."""
        if not 0 <= index < self.num_terminals:
            raise ConfigurationError(f"unknown terminal index {index}")
        process = self._processes[index]
        retune = getattr(process, "retune", None)
        if retune is None:
            raise ConfigurationError(
                f"{type(process).__name__} does not support duty-cycle drift"
            )
        retune(q)


class ExclusiveGroupActivity(JointActivityModel):
    """Contending hidden terminals: groups share airtime exclusively.

    ``groups`` partitions (a subset of) the terminal indices into CSMA
    neighbourhoods.  Each subframe, at most one member of a group is busy:
    member ``k`` with probability ``q_k`` (its exact stationary marginal),
    nobody with probability ``1 - sum(q_k)``.  Terminals not named in any
    group are independent Bernoulli sources.  Within-group busy indicators
    are therefore mutually exclusive — the saturated-CSMA limit of WiFi
    neighbours time-sharing a channel.
    """

    def __init__(
        self,
        marginals: Sequence[float],
        groups: Sequence[Sequence[int]],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._q = [float(q) for q in marginals]
        self.num_terminals = len(self._q)
        for q in self._q:
            if not 0.0 <= q < 1.0:
                raise ConfigurationError(f"marginal outside [0,1): {q}")
        seen: set = set()
        self._groups = []
        for group in groups:
            members = [int(k) for k in group]
            for k in members:
                if not 0 <= k < self.num_terminals:
                    raise ConfigurationError(f"unknown terminal index {k}")
                if k in seen:
                    raise ConfigurationError(
                        f"terminal {k} appears in more than one group"
                    )
                seen.add(k)
            total = sum(self._q[k] for k in members)
            if total >= 1.0 + 1e-9:
                raise ConfigurationError(
                    f"group {members} wants {total:.2f} > 1 total airtime; "
                    "exclusive sharing is infeasible"
                )
            self._groups.append(members)
        self._independent = [
            k for k in range(self.num_terminals) if k not in seen
        ]
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def groups(self) -> List[List[int]]:
        return [list(g) for g in self._groups]

    def step(self) -> FrozenSet[int]:
        active = set()
        for members in self._groups:
            draw = self._rng.random()
            cumulative = 0.0
            for k in members:
                cumulative += self._q[k]
                if draw < cumulative:
                    active.add(k)
                    break
        for k in self._independent:
            if self._rng.random() < self._q[k]:
                active.add(k)
        return frozenset(active)

    def marginal(self, index: int) -> float:
        return self._q[index]


class ChannelizedActivitySet:
    """Per-channel view over one global population of activity processes.

    The processes belong to the whole band — a terminal transmitting on
    its home channel leaks into neighbours per the plan's ACLR mask — so
    per-channel "activity" is a *projection*, not a partition: terminal
    ``k`` counts as active on channel ``c`` when it is busy and its
    received margin survives ``aclr(c, home_k)``.  Stationary busy
    probabilities fold the same leakage, giving the effective per-channel
    busy probability a CCA sensor on that channel experiences.
    """

    def __init__(
        self,
        processes: Sequence[ActivityProcess],
        channels: Sequence[int],
        plan,
        margins_db: Optional[Sequence[float]] = None,
    ) -> None:
        if len(channels) != len(processes):
            raise ConfigurationError(
                f"{len(channels)} home channels for {len(processes)} "
                f"activity processes"
            )
        margins = (
            tuple(float(m) for m in margins_db)
            if margins_db is not None
            else (0.0,) * len(processes)
        )
        if len(margins) != len(processes):
            raise ConfigurationError(
                f"{len(margins)} margins for {len(processes)} processes"
            )
        self._processes = list(processes)
        self._channels = tuple(int(c) for c in channels)
        self._margins = margins
        self._plan = plan
        for channel in self._channels:
            plan._check_channel(channel)

    @property
    def num_terminals(self) -> int:
        return len(self._processes)

    def couples(self, index: int, channel: int) -> bool:
        """Whether terminal ``index`` is audible on ``channel`` at all."""
        return (
            self._plan.aclr_db(channel, self._channels[index])
            <= self._margins[index]
        )

    def step(self) -> Tuple[FrozenSet[int], ...]:
        """Advance every process once; return the active set per channel.

        One draw per terminal per subframe regardless of the channel
        count — the busy indicator is shared, only audibility differs.
        """
        busy = [k for k, p in enumerate(self._processes) if p.step()]
        return tuple(
            frozenset(k for k in busy if self.couples(k, channel))
            for channel in range(self._plan.num_channels)
        )

    def stationary_probability_on(self, channel: int) -> float:
        """Effective busy probability of ``channel`` with leakage folded."""
        idle = 1.0
        for k, process in enumerate(self._processes):
            if self.couples(k, channel):
                idle *= 1.0 - process.stationary_probability
        return 1.0 - idle

    def reset(self) -> None:
        for process in self._processes:
            process.reset()
