"""Unlicensed-spectrum substrate: sensing, medium state, WiFi interferers."""

from repro.spectrum.activity import (
    ActivityProcess,
    BernoulliActivity,
    MarkovOnOffActivity,
    TraceActivity,
)
from repro.spectrum.cca import (
    LTE_ENERGY_SENSING,
    WIFI_PREAMBLE_SENSING,
    SensingModel,
    aggregate_power_dbm,
    dbm_to_mw,
    mw_to_dbm,
)
from repro.spectrum.medium import (
    MediumSnapshot,
    silenced_ues_from_graph,
    silenced_ues_from_power,
)
from repro.spectrum.wifi import (
    WIFI_BITRATES,
    TrafficProfile,
    WiFiContentionSimulator,
    WiFiNode,
    frame_airtime_subframes,
    select_bitrate_mbps,
)

__all__ = [
    "ActivityProcess",
    "BernoulliActivity",
    "LTE_ENERGY_SENSING",
    "MarkovOnOffActivity",
    "MediumSnapshot",
    "SensingModel",
    "TraceActivity",
    "TrafficProfile",
    "WIFI_BITRATES",
    "WIFI_PREAMBLE_SENSING",
    "WiFiContentionSimulator",
    "WiFiNode",
    "aggregate_power_dbm",
    "dbm_to_mw",
    "frame_airtime_subframes",
    "mw_to_dbm",
    "select_bitrate_mbps",
    "silenced_ues_from_graph",
    "silenced_ues_from_power",
]
