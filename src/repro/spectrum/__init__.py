"""Unlicensed-spectrum substrate: sensing, channels, medium state, WiFi."""

from repro.spectrum.activity import (
    ActivityProcess,
    BernoulliActivity,
    ChannelizedActivitySet,
    MarkovOnOffActivity,
    TraceActivity,
)
from repro.spectrum.cca import (
    LTE_ENERGY_SENSING,
    WIFI_PREAMBLE_SENSING,
    SensingModel,
    aggregate_power_dbm,
    cross_channel_power_dbm,
    dbm_to_mw,
    mw_to_dbm,
    per_channel_busy,
)
from repro.spectrum.channels import ACLR_ORTHOGONAL_DB, ChannelPlan
from repro.spectrum.medium import (
    MediumSnapshot,
    silenced_ues_from_graph,
    silenced_ues_from_power,
)
from repro.spectrum.wifi import (
    WIFI_BITRATES,
    TrafficProfile,
    WiFiContentionSimulator,
    WiFiNode,
    channelized_audibility,
    frame_airtime_subframes,
    select_bitrate_mbps,
)

__all__ = [
    "ACLR_ORTHOGONAL_DB",
    "ActivityProcess",
    "BernoulliActivity",
    "ChannelPlan",
    "ChannelizedActivitySet",
    "LTE_ENERGY_SENSING",
    "MarkovOnOffActivity",
    "MediumSnapshot",
    "SensingModel",
    "TraceActivity",
    "TrafficProfile",
    "WIFI_BITRATES",
    "WIFI_PREAMBLE_SENSING",
    "WiFiContentionSimulator",
    "WiFiNode",
    "aggregate_power_dbm",
    "channelized_audibility",
    "cross_channel_power_dbm",
    "dbm_to_mw",
    "frame_airtime_subframes",
    "mw_to_dbm",
    "per_channel_busy",
    "select_bitrate_mbps",
    "silenced_ues_from_graph",
    "silenced_ues_from_power",
]
