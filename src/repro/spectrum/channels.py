"""The frequency axis: channel plans and adjacent-channel leakage (ACLR).

BLU's blueprint machinery assumes one unlicensed channel, but real LAA
deployments spread across the 5 GHz band where interference is
frequency-selective.  A :class:`ChannelPlan` pins down the candidate
channels (center frequency and bandwidth per channel) and the pairwise
adjacent-channel leakage between them, following the IEEE 802.11
spectral-mask shape used by SiNE's ACLR engine: co-channel energy passes
unattenuated, the transition band attenuates 20–28 dB, the first adjacent
channel ~40 dB, and anything further ~45 dB, with every breakpoint scaling
with the channel bandwidth.

Leakage is what makes the channel axis interesting rather than ``n``
independent copies of the same cell: a transmitter *homed* on channel
``f1`` still deposits ``tx_power - aclr_db`` of energy on channel ``f2``,
so a node can be a hidden terminal on its own channel and merely a faint
(or inert) neighbour one channel over — or, with enough received margin,
harmful on both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import SpecError

__all__ = [
    "ChannelPlan",
    "ACLR_ORTHOGONAL_DB",
]

#: Attenuation beyond which two channels are treated as fully orthogonal
#: (the 802.11 spectral mask floor).
ACLR_ORTHOGONAL_DB = 45.0

#: First-adjacent-channel attenuation (one full bandwidth of separation).
_ACLR_ADJACENT_DB = 40.0

#: Transition-band attenuation ramp endpoints (spectral-mask shoulder).
_ACLR_SHOULDER_LOW_DB = 20.0
_ACLR_SHOULDER_HIGH_DB = 28.0


@dataclass(frozen=True)
class ChannelPlan:
    """An immutable set of candidate channels with their leakage structure.

    Attributes:
        centers_mhz: center frequency of each channel, in MHz.  Channel
            indices used throughout the stack are positions in this tuple.
        bandwidth_mhz: occupied bandwidth, shared by all channels (LAA
            carriers in one plan use one numerology).
    """

    centers_mhz: Tuple[float, ...] = (5180.0,)
    bandwidth_mhz: float = 20.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "centers_mhz", tuple(float(c) for c in self.centers_mhz)
        )
        if len(self.centers_mhz) < 1:
            raise SpecError(
                "channels.centers_mhz must list at least one channel"
            )
        if self.bandwidth_mhz <= 0:
            raise SpecError(
                f"channels.bandwidth_mhz must be positive: {self.bandwidth_mhz}"
            )
        for center in self.centers_mhz:
            if center <= 0:
                raise SpecError(
                    f"channels.centers_mhz must be positive: {center}"
                )
        if len(set(self.centers_mhz)) != len(self.centers_mhz):
            raise SpecError(
                f"channels.centers_mhz has duplicates: {list(self.centers_mhz)}"
            )

    # -- construction --------------------------------------------------------

    @staticmethod
    def default() -> "ChannelPlan":
        """The single-channel plan every existing scenario implicitly uses."""
        return ChannelPlan()

    @staticmethod
    def spaced(
        num_channels: int,
        start_mhz: float = 5180.0,
        spacing_mhz: float = 20.0,
        bandwidth_mhz: float = 20.0,
    ) -> "ChannelPlan":
        """``num_channels`` evenly spaced channels (the 5 GHz lattice)."""
        if num_channels < 1:
            raise SpecError(
                f"channels.num_channels must be >= 1: {num_channels}"
            )
        if spacing_mhz <= 0:
            raise SpecError(
                f"channels.spacing_mhz must be positive: {spacing_mhz}"
            )
        return ChannelPlan(
            centers_mhz=tuple(
                start_mhz + k * spacing_mhz for k in range(num_channels)
            ),
            bandwidth_mhz=bandwidth_mhz,
        )

    # -- basic queries --------------------------------------------------------

    @property
    def num_channels(self) -> int:
        return len(self.centers_mhz)

    def _check_channel(self, channel: int) -> int:
        if not 0 <= channel < self.num_channels:
            raise SpecError(
                f"unknown channel index {channel}; plan has "
                f"{self.num_channels} channel(s)"
            )
        return int(channel)

    def separation_mhz(self, a: int, b: int) -> float:
        """Absolute center-frequency separation between two channels."""
        self._check_channel(a)
        self._check_channel(b)
        return abs(self.centers_mhz[a] - self.centers_mhz[b])

    # -- the ACLR model --------------------------------------------------------

    def aclr_db(self, a: int, b: int) -> float:
        """Spectral-mask attenuation between channels ``a`` and ``b``, in dB.

        Piecewise in the center separation ``sep`` relative to the
        bandwidth ``bw`` (the 802.11 mask shape, breakpoints scaling with
        bandwidth):

        * ``sep < bw/2``  — overlapping/co-channel: 0 dB;
        * ``bw/2 <= sep < bw`` — transition band: 20 dB ramping to 28 dB;
        * ``bw <= sep < 2*bw`` — first adjacent channel: 40 dB;
        * ``sep >= 2*bw`` — orthogonal: 45 dB.

        Symmetric by construction (it only depends on ``|Δf|``) and
        non-decreasing in the separation.
        """
        sep = self.separation_mhz(a, b)
        half = self.bandwidth_mhz / 2.0
        if sep < half:
            return 0.0
        if sep < self.bandwidth_mhz:
            ramp = (sep - half) / half
            return (
                _ACLR_SHOULDER_LOW_DB
                + (_ACLR_SHOULDER_HIGH_DB - _ACLR_SHOULDER_LOW_DB) * ramp
            )
        if sep < 2.0 * self.bandwidth_mhz:
            return _ACLR_ADJACENT_DB
        return ACLR_ORTHOGONAL_DB

    def coupling(self, a: int, b: int) -> float:
        """Linear power fraction leaking from channel ``a`` into ``b``."""
        return 10.0 ** (-self.aclr_db(a, b) / 10.0)

    def orthogonal(self, a: int, b: int) -> bool:
        """Whether the mask floor applies (fully disjoint channels)."""
        return self.aclr_db(a, b) >= ACLR_ORTHOGONAL_DB

    def leakage_matrix_db(self) -> np.ndarray:
        """The full symmetric ``(n, n)`` ACLR matrix in dB (0 diagonal)."""
        n = self.num_channels
        matrix = np.zeros((n, n), dtype=float)
        for a in range(n):
            for b in range(a + 1, n):
                matrix[a, b] = matrix[b, a] = self.aclr_db(a, b)
        return matrix

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "centers_mhz": list(self.centers_mhz),
            "bandwidth_mhz": self.bandwidth_mhz,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChannelPlan":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"channels.plan must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"centers_mhz", "bandwidth_mhz"})
        if unknown:
            raise SpecError(
                f"unknown field(s) {unknown} in channels.plan; "
                f"allowed: ['bandwidth_mhz', 'centers_mhz']"
            )
        centers = data.get("centers_mhz", (5180.0,))
        if not isinstance(centers, Sequence) or isinstance(centers, str):
            raise SpecError(
                f"channels.plan.centers_mhz must be a list: {centers!r}"
            )
        try:
            centers = tuple(float(c) for c in centers)
            bandwidth = float(data.get("bandwidth_mhz", 20.0))
        except (TypeError, ValueError) as error:
            raise SpecError(f"channels.plan is malformed: {error}") from error
        return cls(centers_mhz=centers, bandwidth_mhz=bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChannelPlan({self.num_channels} x {self.bandwidth_mhz} MHz)"
        )
