"""Clear-channel assessment: sensing models and threshold arithmetic.

The asymmetry at the heart of Fig. 4c of the paper: WiFi nodes detect each
other through preamble (carrier) sensing at -85 dBm, while a heterogeneous
LTE/WiFi pair must fall back to energy detection at [-70, -65] dBm.  The
~20 dB sensitivity gap shrinks every node's sensing range and inflates the
hidden-terminal count once an LTE cell replaces a WiFi cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.lte import consts

__all__ = [
    "SensingModel",
    "WIFI_PREAMBLE_SENSING",
    "LTE_ENERGY_SENSING",
    "aggregate_power_dbm",
    "cross_channel_power_dbm",
    "dbm_to_mw",
    "mw_to_dbm",
    "per_channel_busy",
]


def dbm_to_mw(power_dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (power_dbm / 10.0)


def mw_to_dbm(power_mw: float) -> float:
    """Convert milliwatts to dBm (-inf for zero power)."""
    if power_mw <= 0.0:
        return float("-inf")
    return 10.0 * np.log10(power_mw)


def aggregate_power_dbm(powers_dbm: Iterable[float]) -> float:
    """Sum an iterable of received powers (dBm) in the linear domain."""
    total_mw = sum(dbm_to_mw(p) for p in powers_dbm)
    return mw_to_dbm(total_mw)


@dataclass(frozen=True)
class SensingModel:
    """A named sensing mechanism with its detection threshold.

    ``senses(rx_power_dbm)`` answers: does a listener using this mechanism
    detect (and defer to) a transmission arriving at ``rx_power_dbm``?
    """

    name: str
    threshold_dbm: float

    def __post_init__(self) -> None:
        if not -120.0 <= self.threshold_dbm <= 0.0:
            raise ConfigurationError(
                f"implausible sensing threshold: {self.threshold_dbm} dBm"
            )

    def senses(self, rx_power_dbm: float) -> bool:
        return rx_power_dbm >= self.threshold_dbm

    def busy(self, powers_dbm: Iterable[float]) -> bool:
        """CCA busy decision against the aggregate of active interferers."""
        return self.senses(aggregate_power_dbm(powers_dbm))


def cross_channel_power_dbm(
    rx_power_dbm: float, plan, listen_channel: int, tx_channel: int
) -> float:
    """Received power after ACLR attenuation between two channels.

    ``rx_power_dbm`` is the co-channel received power of a transmission
    homed on ``tx_channel``; a listener on ``listen_channel`` sees it
    reduced by the :class:`~repro.spectrum.channels.ChannelPlan` mask.
    """
    return rx_power_dbm - plan.aclr_db(listen_channel, tx_channel)


def per_channel_busy(
    model: SensingModel,
    transmissions: Iterable[Tuple[int, float]],
    plan,
) -> Tuple[bool, ...]:
    """CCA busy decision on every channel of a plan, leakage folded in.

    ``transmissions`` is ``(tx_channel, rx_power_dbm)`` per active
    transmitter; each listen channel aggregates the (ACLR-attenuated)
    energy of *all* of them before the threshold test, so a strong
    neighbour one channel over can flip a channel busy even with no
    co-channel transmitter — the adjacent-channel hidden-terminal effect.
    """
    active = list(transmissions)
    decisions = []
    for listen in range(plan.num_channels):
        total_mw = sum(
            dbm_to_mw(cross_channel_power_dbm(power, plan, listen, tx_channel))
            for tx_channel, power in active
        )
        decisions.append(model.senses(mw_to_dbm(total_mw)))
    return tuple(decisions)


#: WiFi preamble (carrier) sensing at -85 dBm (paper Section 2.2).
WIFI_PREAMBLE_SENSING = SensingModel(
    name="wifi-preamble", threshold_dbm=consts.WIFI_CS_THRESHOLD_DBM
)

#: LAA energy detection; the default sits inside the paper's [-70, -65] span
#: (we use the conservative regulatory -72 dBm figure as the default).
LTE_ENERGY_SENSING = SensingModel(
    name="lte-energy", threshold_dbm=consts.DEFAULT_ED_THRESHOLD_DBM
)
