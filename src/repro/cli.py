"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare``       — run PF / AA / BLU / oracle on a synthetic cell and
                      print the comparison table.
* ``sweep``         — sweep one parameter (antennas, ues, activity,
                      subframes) and tabulate throughput per scheduler.
* ``dynamics``      — churn demo: a hidden WiFi node appears mid-run;
                      compare the adaptive controller against frozen /
                      full-restart BLU and the dynamics-aware oracle.
* ``run-spec``      — execute an ``ExperimentSpec`` JSON file (optionally
                      as a seed grid with checkpointing and supervised
                      retry/timeout execution).
* ``deploy``        — run a multi-cell deployment campaign
                      (``DeploymentSpec`` JSON) sharded by interference
                      cluster, and print the utilization/fairness report.
* ``resume``        — finish an interrupted checkpointed grid, sweep, or
                      deployment campaign from its manifest.
* ``chaos``         — adversarially exercise checkpoint/resume: N seeded
                      rounds of kill points × storage faults against a
                      spec, each round recovered and audited; nonzero
                      exit on any invariant violation.
* ``monitor``       — tail a campaign's ``--telemetry-dir`` and render
                      per-item progress, heartbeats, and ETA live.
* ``obs-report``    — summarize the telemetry a ``--obs-dir`` run wrote
                      and validate any trace files next to it.
* ``obs-export``    — render a run directory's ``metrics.json`` as
                      OpenMetrics text (Prometheus exposition format).
* ``validate-specs``— parse and build every spec in a directory.
* ``infer``         — generate a scenario, measure, infer the blueprint,
                      and report its accuracy against ground truth.
* ``scenario``      — draw a random enterprise scenario and describe it.
* ``overhead``      — print the measurement-overhead table for a cell size.
* ``trace``         — record a scenario's interference trace to ``.npz``.
* ``trace-info``    — summarize a recorded trace file.

Every simulation command builds its experiment through
:mod:`repro.experiments` — a declarative, JSON-round-trippable
:class:`~repro.experiments.ExperimentSpec` resolved against the
scenario/scheduler registries — so anything runnable here is exportable
to (and reproducible from) a ``specs/*.json`` file.

``compare``, ``dynamics``, and ``run-spec`` accept ``--obs`` /
``--obs-dir`` / ``--trace-out`` to collect :mod:`repro.obs` telemetry:
the merged metrics table is printed after the results, ``metrics.json``
(plus OpenMetrics ``metrics.prom``) lands in ``--obs-dir``, and
``--trace-out`` writes the combined event timeline (``.jsonl``, or
Chrome-viewer ``.json``).  ``--stream`` additionally records windowed
time series (``series.json``, summarized after the metrics table), and
``--telemetry-dir`` on campaign commands streams live progress events
for ``repro monitor``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro import (
    BlueprintInference,
    InferenceConfig,
    ScenarioConfig,
    edge_set_accuracy,
    generate_scenario,
    minimum_subframes,
)
from repro.analysis import comparison_report, format_comparison, format_table
from repro.core.measurement.pair_scheduler import (
    MeasurementScheduler,
    tuple_measurement_subframes,
)
from repro.errors import ObsError, SpecError
from repro.experiments import (
    ExperimentSpec,
    ScenarioSpec,
    SchedulerSpec,
    TimelineSpec,
    build_experiment,
    run_experiment_sweep,
)
from repro.sim.config import SimulationConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BLU (CoNEXT 2017) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="run a scheduler comparison")
    compare.add_argument("--ues", type=int, default=8)
    compare.add_argument("--hts-per-ue", type=int, default=2)
    compare.add_argument("--activity", type=float, default=0.4)
    compare.add_argument("--antennas", type=int, default=1)
    compare.add_argument("--subframes", type=int, default=4000)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--with-oracle", action="store_true", help="include the genie bound"
    )
    compare.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown report section instead of the ASCII table",
    )
    compare.add_argument(
        "--export-spec",
        metavar="PATH",
        help="also write the experiment spec as JSON to PATH",
    )
    compare.add_argument(
        "--n-jobs", type=int, default=1,
        help="worker processes for the comparison (-1 = all cores)",
    )
    _add_obs_args(compare)

    sweep = sub.add_parser(
        "sweep", help="sweep one parameter across a scheduler comparison"
    )
    sweep.add_argument(
        "--param",
        choices=("antennas", "ues", "activity", "subframes"),
        default="antennas",
    )
    sweep.add_argument(
        "--values",
        default="1,2,4",
        help="comma-separated values of the swept parameter",
    )
    sweep.add_argument("--ues", type=int, default=8)
    sweep.add_argument("--hts-per-ue", type=int, default=2)
    sweep.add_argument("--activity", type=float, default=0.4)
    sweep.add_argument("--antennas", type=int, default=1)
    sweep.add_argument("--subframes", type=int, default=2000)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--with-oracle", action="store_true")
    sweep.add_argument("--n-jobs", type=int, default=1)

    dynamics = sub.add_parser(
        "dynamics", help="online adaptation demo under hidden-node churn"
    )
    dynamics.add_argument("--ues", type=int, default=6)
    dynamics.add_argument("--hts-per-ue", type=int, default=1)
    dynamics.add_argument("--activity", type=float, default=0.25)
    dynamics.add_argument("--subframes", type=int, default=16000)
    dynamics.add_argument(
        "--arrive-at", type=int, default=6000,
        help="subframe at which the new hidden node appears",
    )
    dynamics.add_argument(
        "--arrival-q", type=float, default=0.45,
        help="busy probability of the arriving node",
    )
    dynamics.add_argument(
        "--affected", type=int, default=2,
        help="how many clients the arriving node silences",
    )
    dynamics.add_argument("--seed", type=int, default=0)
    dynamics.add_argument(
        "--export-spec",
        metavar="PATH",
        help="also write the experiment spec as JSON to PATH",
    )
    _add_obs_args(dynamics)

    run_spec = sub.add_parser(
        "run-spec", help="execute an experiment spec JSON file"
    )
    run_spec.add_argument("spec", help="path to an ExperimentSpec .json")
    run_spec.add_argument("--n-jobs", type=int, default=1)
    run_spec.add_argument(
        "--baseline",
        default=None,
        help="scheduler name to normalize gains against (default: first)",
    )
    run_spec.add_argument(
        "--seeds",
        default=None,
        help=(
            "comma-separated seeds: run the (scheduler x seed) grid "
            "instead of a single comparison"
        ),
    )
    run_spec.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "persist one result file per completed grid cell into DIR; "
            "re-running skips completed cells (requires --seeds)"
        ),
    )
    _add_resilience_args(run_spec)
    _add_obs_args(run_spec)
    _add_telemetry_arg(run_spec)

    deploy = sub.add_parser(
        "deploy",
        help="run a multi-cell deployment campaign from a DeploymentSpec JSON",
    )
    deploy.add_argument("spec", help="path to a DeploymentSpec .json")
    deploy.add_argument(
        "--n-jobs", type=int, default=1,
        help="worker processes for cluster shards (-1 = all cores)",
    )
    deploy.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "persist one result file per completed interference cluster "
            "into DIR; re-running (or `repro resume DIR`) skips them"
        ),
    )
    deploy.add_argument(
        "--per-cell",
        action="store_true",
        help="also print the per-cell metric table",
    )
    _add_resilience_args(deploy)
    _add_obs_args(deploy)
    _add_telemetry_arg(deploy)

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted checkpointed grid/sweep/deployment "
        "from its manifest",
    )
    resume.add_argument(
        "checkpoint_dir", help="directory written by a --checkpoint-dir run"
    )
    resume.add_argument("--n-jobs", type=int, default=1)
    _add_resilience_args(resume)
    _add_obs_args(resume)
    _add_telemetry_arg(resume)

    chaos = sub.add_parser(
        "chaos",
        help="run seeded storage-chaos rounds against a spec and audit "
        "every recovery",
    )
    chaos.add_argument(
        "spec",
        help="path to an ExperimentSpec or DeploymentSpec .json to torture",
    )
    chaos.add_argument(
        "--rounds", type=int, default=10, metavar="N",
        help="number of seeded chaos rounds (default: 10)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="chaos seed; the full fault schedule and verdict are "
        "reproducible from it (default: 0)",
    )
    chaos.add_argument(
        "--seeds",
        default="0,1",
        help="comma-separated engine seeds for experiment-spec grids "
        "(ignored for deployment specs; default: 0,1)",
    )
    chaos.add_argument(
        "--workdir",
        metavar="DIR",
        default=None,
        help="keep per-round checkpoint/telemetry directories in DIR "
        "(default: a temporary directory, removed afterwards)",
    )
    chaos.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the machine-readable JSON verdict to PATH",
    )

    monitor = sub.add_parser(
        "monitor",
        help="tail a campaign's telemetry directory and render progress",
    )
    monitor.add_argument(
        "directory", help="directory written by a --telemetry-dir run"
    )
    monitor.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit instead of tailing",
    )
    monitor.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between frames while tailing (default: 2)",
    )
    monitor.add_argument(
        "--stall-after", type=float, default=10.0, metavar="SECONDS",
        help=(
            "mark a running item STALLED once its heartbeat reports more "
            "elapsed time than this, or its heartbeats stop (default: 10)"
        ),
    )

    obs_export = sub.add_parser(
        "obs-export",
        help="render an --obs-dir run's metrics.json as OpenMetrics text",
    )
    obs_export.add_argument(
        "run_dir", help="directory holding metrics.json"
    )
    obs_export.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the exposition to PATH instead of stdout",
    )

    obs_report = sub.add_parser(
        "obs-report",
        help="summarize telemetry from an --obs-dir run directory",
    )
    obs_report.add_argument(
        "run_dir", help="directory holding metrics.json (and trace files)"
    )

    validate = sub.add_parser(
        "validate-specs",
        help="parse and registry-build every spec in a directory",
    )
    validate.add_argument(
        "directory",
        nargs="?",
        default="specs",
        help="directory of ExperimentSpec .json files (default: specs/)",
    )

    infer = sub.add_parser("infer", help="blueprint inference accuracy demo")
    infer.add_argument("--ues", type=int, default=8)
    infer.add_argument("--wifi", type=int, default=16)
    infer.add_argument("--trace-subframes", type=int, default=4000)
    infer.add_argument("--seed", type=int, default=0)

    scenario = sub.add_parser("scenario", help="describe a random deployment")
    scenario.add_argument("--ues", type=int, default=8)
    scenario.add_argument("--wifi", type=int, default=16)
    scenario.add_argument("--seed", type=int, default=0)

    overhead = sub.add_parser("overhead", help="measurement overhead table")
    overhead.add_argument("--ues", type=int, default=20)
    overhead.add_argument("--k", type=int, default=8)
    overhead.add_argument("--samples", type=int, default=50)

    trace = sub.add_parser("trace", help="record a scenario trace to .npz")
    trace.add_argument("output", help="output path (.npz)")
    trace.add_argument("--ues", type=int, default=8)
    trace.add_argument("--wifi", type=int, default=16)
    trace.add_argument("--subframes", type=int, default=5000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--no-contention",
        action="store_true",
        help="use independent Bernoulli activity instead of CSMA coupling",
    )

    info = sub.add_parser("trace-info", help="summarize a recorded trace")
    info.add_argument("path", help="trace file written by the trace command")
    return parser


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout (parallel runs only)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry each failing/timed-out cell up to N times",
    )
    parser.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="base delay before a retry (doubles per attempt)",
    )


def _supervisor_from_args(args: argparse.Namespace):
    """A SupervisorConfig when any resilience flag is set, else None.

    ``None`` keeps the strict historical semantics (first failure
    aborts); any flag opts into supervised quarantine-on-failure runs.
    """
    from repro.resilience import SupervisorConfig

    if args.timeout is None and args.retries is None and args.backoff is None:
        return None
    return SupervisorConfig(
        timeout_s=args.timeout,
        max_retries=args.retries if args.retries is not None else 0,
        backoff_base_s=args.backoff if args.backoff is not None else 0.0,
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs",
        action="store_true",
        help="collect repro.obs metrics and print the telemetry report",
    )
    parser.add_argument(
        "--obs-dir",
        metavar="DIR",
        default=None,
        help=(
            "write the merged metrics.json (and OpenMetrics metrics.prom) "
            "into DIR (implies --obs)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write the combined event trace: .jsonl for line-delimited, "
            ".json for the Chrome viewer (implies --obs with tracing)"
        ),
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "record windowed time series during the run (implies --obs; "
            "series.json lands in --obs-dir)"
        ),
    )
    parser.add_argument(
        "--stream-window",
        type=int,
        default=None,
        metavar="SUBFRAMES",
        help="subframes per time-series window (default: 100)",
    )


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help=(
            "stream live progress events (heartbeats, retries, per-item "
            "completions) into DIR/telemetry.jsonl for `repro monitor`"
        ),
    )


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(
        args.obs or args.obs_dir or args.trace_out
        or getattr(args, "stream", False)
        or getattr(args, "stream_window", None) is not None
    )


def _apply_obs_args(
    spec: ExperimentSpec, args: argparse.Namespace
) -> ExperimentSpec:
    """Overlay the CLI observability flags onto a spec's ``obs`` field."""
    if not _obs_requested(args):
        return spec
    from repro.obs.config import ObsConfig

    base = spec.obs or ObsConfig()
    return spec.replace(
        obs=dataclasses.replace(
            base,
            enabled=True,
            tracing=base.tracing or bool(args.trace_out),
            stream=base.stream or bool(args.stream)
            or args.stream_window is not None,
            stream_window=(
                args.stream_window
                if args.stream_window is not None
                else base.stream_window
            ),
        )
    )


def _emit_obs_artifacts(
    results: Dict[str, object], args: argparse.Namespace, title: str
) -> None:
    """Print the metrics table and write --obs-dir / --trace-out files.

    No-op when neither the flags nor the spec asked for observability
    (results then carry no snapshots).
    """
    from repro.obs.report import (
        collect_snapshot,
        format_obs_report,
        write_metrics_json,
    )
    from repro.obs.trace import (
        merge_run_traces,
        write_trace_chrome,
        write_trace_jsonl,
    )

    snapshot = collect_snapshot(results.values())
    if snapshot is None:
        if _obs_requested(args):
            print("no observability data collected", file=sys.stderr)
        return
    print()
    print(format_obs_report(snapshot, title=f"{title} telemetry"))
    frames = {
        name: result.obs_series
        for name, result in results.items()
        if getattr(result, "obs_series", None) is not None
    }
    if frames:
        from repro.analysis.timeseries import format_timeseries_report

        print()
        print(format_timeseries_report(frames))
    if args.obs_dir:
        print(f"wrote {write_metrics_json(args.obs_dir, snapshot)}")
        from repro.obs.openmetrics import write_metrics_prom

        print(f"wrote {write_metrics_prom(args.obs_dir, snapshot)}")
        if frames:
            from repro.obs.stream import TimeSeriesFrame, write_series_json

            parsed = {
                name: TimeSeriesFrame.from_dict(frame)
                for name, frame in frames.items()
            }
            print(f"wrote {write_series_json(args.obs_dir, parsed)}")
    if args.trace_out:
        events = merge_run_traces(
            {
                name: getattr(result, "obs_trace", None) or []
                for name, result in results.items()
            }
        )
        out = Path(args.trace_out)
        if out.suffix == ".jsonl":
            write_trace_jsonl(events, out)
        else:
            write_trace_chrome(events, out)
        print(f"wrote {len(events)} trace events to {out}")


def _comparison_schedulers(with_oracle: bool) -> dict:
    schedulers = {
        "pf": SchedulerSpec("pf"),
        "access-aware": SchedulerSpec("access-aware"),
        "blu": SchedulerSpec(
            "blu",
            {"samples_per_pair": 50, "inference": {"seed": 0}},
        ),
        "blu-perfect": SchedulerSpec("speculative"),
    }
    if with_oracle:
        schedulers["oracle"] = SchedulerSpec("oracle")
    return schedulers


def _compare_spec(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"compare-testbed-{args.ues}ues",
        scenario=ScenarioSpec(
            kind="testbed",
            params={
                "num_ues": args.ues,
                "hts_per_ue": args.hts_per_ue,
                "activity": args.activity,
                "seed": args.seed,
            },
            snr={"kind": "uniform", "seed": args.seed + 1},
        ),
        sim=SimulationConfig(
            num_subframes=args.subframes, num_antennas=args.antennas
        ),
        schedulers=_comparison_schedulers(args.with_oracle),
        seed=args.seed,
    )


def _maybe_export(spec: ExperimentSpec, path: Optional[str]) -> None:
    if path:
        Path(path).write_text(spec.to_json())
        print(f"wrote spec to {path}")


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = _apply_obs_args(_compare_spec(args), args)
    _maybe_export(spec, args.export_spec)
    plan = build_experiment(spec)
    results = plan.run(n_jobs=args.n_jobs)
    if args.markdown:
        print(
            comparison_report(
                results,
                title=(
                    f"{args.ues} UEs, {plan.topology.num_terminals} hidden "
                    f"terminals, M={args.antennas}"
                ),
                baseline="pf",
            )
        )
    else:
        print(
            format_comparison(
                {name: result.summary() for name, result in results.items()},
                metrics=["throughput_mbps", "rb_utilization", "jain_index"],
                baseline="pf",
                title=(
                    f"{args.ues} UEs, {plan.topology.num_terminals} hidden "
                    f"terminals, M={args.antennas}, {args.subframes} subframes"
                ),
            )
        )
    _emit_obs_artifacts(results, args, title=spec.name)
    return 0


def _parse_sweep_values(param: str, text: str) -> List:
    caster = float if param == "activity" else int
    try:
        return [caster(chunk) for chunk in text.split(",") if chunk.strip()]
    except ValueError:
        raise SpecError(f"bad --values for {param}: {text!r}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    values = _parse_sweep_values(args.param, args.values)
    if not values:
        print("--values is empty", file=sys.stderr)
        return 2
    specs = []
    for value in values:
        view = argparse.Namespace(**vars(args))
        setattr(view, args.param, value)
        spec = _compare_spec(view)
        specs.append(spec.replace(name=f"{spec.name}-{args.param}{value}"))
    points = run_experiment_sweep(specs, parameters=values, n_jobs=args.n_jobs)
    names = list(specs[0].scheduler_names)
    rows = [
        [point.parameter]
        + [point.results[name].summary()["throughput_mbps"] for name in names]
        for point in points
    ]
    print(
        format_table(
            [args.param] + names,
            rows,
            title=f"throughput_mbps vs {args.param}",
        )
    )
    return 0


def _dynamics_spec(args: argparse.Namespace) -> ExperimentSpec:
    affected = list(range(args.affected))
    blu_params = {"inference": {"seed": 0}}
    return ExperimentSpec(
        name=f"dynamics-hidden-node-{args.ues}ues",
        scenario=ScenarioSpec(
            kind="testbed",
            params={
                "num_ues": args.ues,
                "hts_per_ue": args.hts_per_ue,
                "activity": args.activity,
                "seed": args.seed,
            },
            snr={"kind": "uniform", "seed": args.seed + 1},
        ),
        sim=SimulationConfig(num_subframes=args.subframes),
        schedulers={
            "blu-adaptive": SchedulerSpec("blu-adaptive", {"blu": blu_params}),
            "blu-frozen": SchedulerSpec("blu", blu_params),
            "blu-restart": SchedulerSpec(
                "blu-restart",
                {"restart_at": args.arrive_at, "blu": blu_params},
            ),
            "oracle": SchedulerSpec("staged-oracle"),
        },
        timeline=TimelineSpec(
            "hidden-node-churn",
            {"arrive_at": args.arrive_at, "q": args.arrival_q, "ues": affected},
        ),
        seed=args.seed,
        record_series=True,
    )


def _cmd_dynamics(args: argparse.Namespace) -> int:
    from repro.analysis.dynamics import dynamics_report, recovery_ratio

    if not 1 <= args.affected <= args.ues:
        print(f"--affected must be in [1, {args.ues}]", file=sys.stderr)
        return 2
    spec = _apply_obs_args(_dynamics_spec(args), args)
    _maybe_export(spec, args.export_spec)
    plan = build_experiment(spec)
    # Serial run on purpose: it captures the live controller instances so
    # the report can read the adaptive controller's dynamics metrics.
    results = plan.run(n_jobs=1)
    metrics = {
        name: scheduler.metrics
        for name, scheduler in plan.schedulers.items()
        if hasattr(scheduler, "metrics")
    }
    print(
        dynamics_report(
            results,
            metrics_by_name=metrics,
            change_subframe=args.arrive_at,
            title=(
                f"hidden-node churn: +1 terminal (q={args.arrival_q}) at "
                f"subframe {args.arrive_at}, {args.ues} UEs"
            ),
        )
    )
    post = args.arrive_at * len(results["oracle"].utilization_series) // max(
        args.subframes, 1
    )
    ratio = recovery_ratio(
        results["blu-adaptive"], results["blu-restart"], start=post
    )
    print(
        f"\npost-change utilization, adaptive vs full restart: {ratio:.3f}x"
    )
    _emit_obs_artifacts(results, args, title=spec.name)
    return 0


def _format_grid(triples) -> int:
    """Print a grid-result table; exit code 1 if any cell failed."""
    from repro.resilience import FailedItem

    rows = []
    failures = 0
    for name, seed, result in triples:
        if result is None or isinstance(result, FailedItem):
            failures += 1
            detail = (
                f"FAILED ({result.error_type} after {result.attempts} "
                f"attempt(s))" if isinstance(result, FailedItem) else "missing"
            )
            rows.append([name, seed, detail, "-"])
            continue
        summary = result.summary()
        rows.append(
            [
                name,
                seed,
                f"{summary['throughput_mbps']:.3f}",
                f"{summary['rb_utilization']:.3f}",
            ]
        )
    print(
        format_table(
            ["scheduler", "seed", "throughput_mbps", "rb_utilization"],
            rows,
            title=f"Grid: {len(rows)} cells, {failures} failed",
        )
    )
    if failures:
        print(f"{failures} cell(s) failed permanently", file=sys.stderr)
        return 1
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    path = Path(args.spec)
    if not path.is_file():
        print(f"no such spec file: {path}", file=sys.stderr)
        return 2
    if args.checkpoint_dir is not None and args.seeds is None:
        print("--checkpoint-dir requires --seeds (grid mode)", file=sys.stderr)
        return 2
    try:
        spec = _apply_obs_args(ExperimentSpec.from_json(path.read_text()), args)
        if args.seeds is not None:
            from repro.experiments import run_experiment_grid

            seeds = [int(value) for value in args.seeds.split(",") if value]
            triples = run_experiment_grid(
                spec,
                seeds,
                n_jobs=args.n_jobs,
                checkpoint_dir=args.checkpoint_dir,
                supervisor=_supervisor_from_args(args),
                telemetry_dir=args.telemetry_dir,
            )
            _print_quarantine(args.checkpoint_dir)
            return _format_grid(triples)
        if args.telemetry_dir is not None:
            print(
                "--telemetry-dir requires --seeds (grid mode); ignoring",
                file=sys.stderr,
            )
        plan = build_experiment(spec)
        results = plan.run(n_jobs=args.n_jobs)
    except SpecError as error:
        print(f"spec error: {error}", file=sys.stderr)
        return 1
    baseline = args.baseline or next(iter(spec.scheduler_names))
    print(
        format_comparison(
            {name: result.summary() for name, result in results.items()},
            metrics=["throughput_mbps", "rb_utilization", "jain_index"],
            baseline=baseline,
            title=spec.name,
        )
    )
    if plan.multichannel is not None and plan.ue_channels is not None:
        from repro.analysis.channels import channel_assignment_report

        print()
        print(
            channel_assignment_report(plan.multichannel, plan.ue_channels)
        )
    _emit_obs_artifacts(results, args, title=spec.name)
    return 0


def _apply_deploy_obs_args(spec, args: argparse.Namespace):
    """Overlay the CLI observability flags onto a DeploymentSpec."""
    if not _obs_requested(args):
        return spec
    from repro.obs.config import ObsConfig

    base = spec.obs or ObsConfig()
    return spec.replace(
        obs=dataclasses.replace(
            base,
            enabled=True,
            stream=base.stream or bool(args.stream)
            or args.stream_window is not None,
            stream_window=(
                args.stream_window
                if args.stream_window is not None
                else base.stream_window
            ),
        )
    )


def _format_campaign(campaign, per_cell: bool = False) -> int:
    """Print a campaign's deployment report; exit 1 on failed clusters."""
    deployment = campaign.deployment
    sizes = sorted((len(c) for c in deployment.clusters), reverse=True)
    print(
        f"{deployment.num_cells} cells / {deployment.total_ues} UEs in "
        f"{deployment.num_clusters} interference cluster(s) "
        f"(largest: {sizes[0]}), "
        f"{deployment.cross_cell_terminal_count()} cross-cell hidden "
        f"terminal(s)"
    )
    if per_cell and campaign.cell_results:
        rows = [
            [
                cell_id,
                deployment.cluster_of(cell_id),
                f"{summary['throughput_mbps']:.3f}",
                f"{summary['rb_utilization']:.3f}",
                f"{summary['jain_index']:.3f}",
            ]
            for cell_id, summary in campaign.summaries().items()
        ]
        print()
        print(
            format_table(
                ["cell", "cluster", "throughput_mbps", "rb_utilization",
                 "jain_index"],
                rows,
                title="Per-cell results",
            )
        )
    if campaign.cell_results:
        report = campaign.report()
        rows = [
            ["aggregate throughput (Mbps)",
             f"{report['aggregate_throughput_mbps']:.3f}"],
            ["mean RB utilization", f"{report['mean_rb_utilization']:.3f}"],
            ["cell fairness (Jain)", f"{report['cell_fairness']:.4f}"],
            ["UE fairness (Jain)", f"{report['ue_fairness']:.4f}"],
        ]
        for metric, stats in report["per_metric"].items():
            rows.append(
                [
                    f"{metric} p10/p50/p90",
                    f"{stats['p10']:.3f} / {stats['p50']:.3f} / "
                    f"{stats['p90']:.3f}",
                ]
            )
        print()
        print(
            format_table(
                ["metric", "value"],
                rows,
                title=f"Deployment report: {campaign.spec.name}",
            )
        )
    for cell in getattr(campaign, "quarantined_cells", []):
        print(f"DEGRADED: {cell.note()}", file=sys.stderr)
    if campaign.failed_clusters:
        print(
            f"{len(campaign.failed_clusters)} cluster(s) failed permanently: "
            f"{sorted(campaign.failed_clusters)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _emit_campaign_obs(campaign, args: argparse.Namespace) -> None:
    """Print/write the campaign's merged telemetry (deploy and resume)."""
    from repro.obs.report import format_obs_report, write_metrics_json

    snapshot = campaign.obs_snapshot()
    if snapshot is None:
        if _obs_requested(args):
            print("no observability data collected", file=sys.stderr)
        return
    print()
    print(format_obs_report(snapshot, title=f"{campaign.spec.name} telemetry"))
    frame = campaign.obs_series()
    if frame is not None:
        from repro.analysis.timeseries import format_timeseries_report

        print()
        print(format_timeseries_report({campaign.spec.name: frame}))
    if args.obs_dir:
        print(f"wrote {write_metrics_json(args.obs_dir, snapshot)}")
        from repro.obs.openmetrics import write_metrics_prom

        print(f"wrote {write_metrics_prom(args.obs_dir, snapshot)}")
        if frame is not None:
            from repro.obs.stream import write_series_json

            print(
                f"wrote "
                f"{write_series_json(args.obs_dir, {campaign.spec.name: frame})}"
            )


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.deploy import DeploymentSpec, run_campaign

    path = Path(args.spec)
    if not path.is_file():
        print(f"no such spec file: {path}", file=sys.stderr)
        return 2
    try:
        spec = _apply_deploy_obs_args(
            DeploymentSpec.from_json(path.read_text()), args
        )
        campaign = run_campaign(
            spec,
            n_jobs=args.n_jobs,
            checkpoint_dir=args.checkpoint_dir,
            supervisor=_supervisor_from_args(args),
            telemetry_dir=args.telemetry_dir,
        )
    except SpecError as error:
        print(f"spec error: {error}", file=sys.stderr)
        return 1
    code = _format_campaign(campaign, per_cell=args.per_cell)
    _emit_campaign_obs(campaign, args)
    return code


def _print_quarantine(checkpoint_dir) -> None:
    """Surface quarantined (corrupt, recomputed) cell files as DEGRADED."""
    if checkpoint_dir is None:
        return
    from repro.resilience import CheckpointStore

    files = CheckpointStore(checkpoint_dir).quarantined_files()
    if files:
        print(
            f"DEGRADED: {len(files)} corrupt checkpoint cell file(s) "
            f"quarantined under {CheckpointStore(checkpoint_dir).quarantine_dir} "
            "and recomputed",
            file=sys.stderr,
        )


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.errors import CheckpointError
    from repro.experiments import resume_checkpoint

    directory = Path(args.checkpoint_dir)
    if not directory.is_dir():
        print(
            f"no such checkpoint directory: {directory}\n"
            "expected a directory previously written by a --checkpoint-dir "
            "run of `repro run-spec` or `repro deploy`",
            file=sys.stderr,
        )
        return 2
    if not (directory / "manifest.json").is_file():
        contents = sorted(path.name for path in directory.iterdir())[:5]
        detail = (
            f"it holds {contents}" if contents else "it is empty"
        )
        print(
            f"{directory} is not a resumable checkpoint directory: no "
            f"manifest.json found ({detail}).\n"
            "Point `repro resume` at the exact directory passed as "
            "--checkpoint-dir when the run was started.",
            file=sys.stderr,
        )
        return 2
    try:
        kind, payload = resume_checkpoint(
            directory,
            n_jobs=args.n_jobs,
            supervisor=_supervisor_from_args(args),
            telemetry_dir=args.telemetry_dir,
        )
    except (CheckpointError, SpecError) as error:
        print(f"resume error: {error}", file=sys.stderr)
        return 1
    if kind == "grid":
        _print_quarantine(directory)
        return _format_grid(payload)
    if kind == "deploy":
        # Checkpoint payloads carry each cell's telemetry (to_state keeps
        # obs fields), so a resumed campaign can summarize the merged
        # snapshot exactly like the original `deploy --obs` run.
        code = _format_campaign(payload)
        _emit_campaign_obs(payload, args)
        return code
    rows = [
        [str(point.parameter), name, f"{result.summary()['throughput_mbps']:.3f}"]
        for point in payload
        for name, result in point.results.items()
    ]
    print(
        format_table(
            ["parameter", "scheduler", "throughput_mbps"],
            rows,
            title=f"Resumed sweep: {len(payload)} points",
        )
    )
    _print_quarantine(directory)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.errors import ChaosError
    from repro.resilience import run_chaos
    from repro.resilience.chaos import write_verdict

    path = Path(args.spec)
    if not path.is_file():
        print(f"no such spec file: {path}", file=sys.stderr)
        return 2
    if args.rounds < 1:
        print("--rounds must be at least 1", file=sys.stderr)
        return 2
    try:
        spec_data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        print(f"spec error: {path} is not valid JSON: {error}", file=sys.stderr)
        return 2
    try:
        seeds = tuple(
            int(value) for value in args.seeds.split(",") if value.strip()
        )
    except ValueError:
        print(f"bad --seeds: {args.seeds!r}", file=sys.stderr)
        return 2

    def _run(workdir) -> int:
        try:
            verdict = run_chaos(
                spec_data, rounds=args.rounds, seed=args.seed,
                workdir=workdir, seeds=seeds or (0, 1),
            )
        except (ChaosError, SpecError) as error:
            print(f"chaos error: {error}", file=sys.stderr)
            return 2
        print(
            f"chaos: {verdict.rounds_passed}/{len(verdict.rounds)} rounds "
            f"passed all auditor invariants "
            f"({verdict.rounds_with_quarantine} round(s) exercised "
            f"quarantine-and-recompute; spec {verdict.spec_name!r}, "
            f"kind {verdict.kind}, seed {verdict.seed})"
        )
        for round_ in verdict.rounds:
            if round_.ok:
                continue
            print(
                f"round {round_.schedule.round_index} FAILED "
                f"(schedule {round_.schedule.to_dict()}):",
                file=sys.stderr,
            )
            for violation in round_.violations:
                print(f"  - {violation}", file=sys.stderr)
        if args.report:
            print(f"wrote {write_verdict(verdict, args.report)}")
        return 0 if verdict.ok else 1

    if args.workdir:
        return _run(args.workdir)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        return _run(workdir)


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.obs.monitor import monitor_directory

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"no such telemetry directory: {directory}", file=sys.stderr)
        return 2
    return monitor_directory(
        directory,
        once=args.once,
        interval_s=args.interval,
        stall_after_s=args.stall_after,
    )


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs.openmetrics import to_openmetrics
    from repro.obs.report import load_metrics_json

    directory = Path(args.run_dir)
    if not directory.is_dir():
        print(f"no such run directory: {directory}", file=sys.stderr)
        return 2
    try:
        snapshot = load_metrics_json(directory)
    except ObsError as error:
        print(f"obs error: {error}", file=sys.stderr)
        return 2
    text = to_openmetrics(snapshot)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import METRICS_FILENAME, format_obs_report, load_metrics_json
    from repro.obs.trace import validate_trace_file

    directory = Path(args.run_dir)
    if not directory.is_dir():
        print(f"no such run directory: {directory}", file=sys.stderr)
        return 2
    try:
        snapshot = load_metrics_json(directory)
    except ObsError as error:
        print(f"obs error: {error}", file=sys.stderr)
        return 2
    print(format_obs_report(snapshot, title=str(directory)))
    traces = sorted(
        path
        for pattern in ("*.jsonl", "trace*.json")
        for path in directory.glob(pattern)
        if path.name != METRICS_FILENAME
    )
    failures = 0
    for path in traces:
        errors = validate_trace_file(path)
        if errors:
            failures += 1
            shown = errors[0] + (
                f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
            )
            print(f"INVALID {path.name}: {shown}", file=sys.stderr)
        else:
            print(f"trace {path.name}: valid")
    return 1 if failures else 0


def _is_deployment_spec(text: str) -> bool:
    """True when a spec file carries the top-level deployment kind marker."""
    import json

    from repro.deploy.spec import DEPLOYMENT_KIND

    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return False
    return isinstance(data, dict) and data.get("kind") == DEPLOYMENT_KIND


def _cmd_validate_specs(args: argparse.Namespace) -> int:
    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"no such spec directory: {directory}", file=sys.stderr)
        return 2
    paths = sorted(directory.glob("*.json"))
    if not paths:
        print(f"no *.json specs found in {directory}", file=sys.stderr)
        return 2
    failures = 0
    rows = []
    for path in paths:
        try:
            text = path.read_text()
            if _is_deployment_spec(text):
                from repro.deploy import DeploymentSpec, build_deployment

                dspec = DeploymentSpec.from_json(text)
                deployment = build_deployment(dspec)
                rows.append(
                    [
                        path.name,
                        f"deployment/{dspec.placement.kind}",
                        deployment.total_ues,
                        1,
                        f"{deployment.num_clusters} clusters",
                        (
                            f"{dspec.num_channels}ch/"
                            f"{dspec.channel_assignment}"
                            if dspec.num_channels > 1
                            else "-"
                        ),
                    ]
                )
                continue
            spec = ExperimentSpec.from_json(text)
            plan = build_experiment(spec)
            for name in spec.scheduler_names:
                plan.build_scheduler(name)
        except SpecError as error:
            failures += 1
            print(f"FAIL {path.name}: {error}", file=sys.stderr)
            continue
        rows.append(
            [
                path.name,
                spec.scenario.kind,
                plan.topology.num_ues,
                len(spec.schedulers),
                spec.timeline.kind if spec.timeline else "-",
                (
                    f"{spec.channels.plan.num_channels}ch/"
                    f"{spec.channels.assignment}"
                    if spec.channels is not None
                    else "-"
                ),
            ]
        )
    if rows:
        print(
            format_table(
                ["spec", "scenario", "ues", "schedulers", "timeline", "channels"],
                rows,
                title=f"Validated {len(rows)}/{len(paths)} specs",
            )
        )
    if failures:
        print(f"{failures} invalid spec(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.measurement.estimator import AccessEstimator

    scenario = generate_scenario(
        ScenarioConfig(num_ues=args.ues, num_wifi=args.wifi), seed=args.seed
    )
    topology = scenario.topology
    if topology.num_terminals == 0:
        print("scenario drew no hidden terminals; try another --seed")
        return 1
    rng = np.random.default_rng(args.seed)
    estimator = AccessEstimator(args.ues)
    scheduled = set(range(args.ues))
    for _ in range(args.trace_subframes):
        busy = {
            ue
            for q, ues in zip(topology.q, topology.edges)
            if rng.random() < q
            for ue in ues
        }
        estimator.record_subframe(scheduled, scheduled - busy)
    result = BlueprintInference(InferenceConfig(seed=0)).infer(
        estimator.to_transformed()
    )
    accuracy = edge_set_accuracy(result.topology, topology)
    print(
        format_table(
            ["metric", "value"],
            [
                ["ground-truth terminals", topology.num_terminals],
                ["inferred terminals", result.topology.num_terminals],
                ["edge-set accuracy", accuracy],
                ["aggregate violation", result.aggregate_violation],
                ["winning start", result.winning_start],
            ],
            title=f"Blueprint inference ({args.trace_subframes}-subframe trace)",
        )
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    scenario = generate_scenario(
        ScenarioConfig(num_ues=args.ues, num_wifi=args.wifi), seed=args.seed
    )
    rows = [
        ["UEs", scenario.num_ues],
        ["WiFi nodes", scenario.layout.num_wifi],
        ["hidden terminals", scenario.num_hidden_terminals],
        ["eNB-audible WiFi", len(scenario.enb_audible_wifi)],
        ["inert WiFi", len(scenario.inert_wifi)],
        ["eNB busy probability", scenario.enb_busy_probability()],
    ]
    print(format_table(["property", "value"], rows, title="Scenario"))
    terminal_rows = [
        [f"H{k}", q, ", ".join(str(u) for u in sorted(ues))]
        for k, (q, ues) in enumerate(
            zip(scenario.topology.q, scenario.topology.edges)
        )
    ]
    if terminal_rows:
        print()
        print(
            format_table(
                ["terminal", "busy prob", "silences UEs"],
                terminal_rows,
                title="Ground-truth blueprint",
            )
        )
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    bound = minimum_subframes(args.ues, args.k, args.samples)
    scheduler = MeasurementScheduler(args.ues, args.k, args.samples)
    achieved = len(scheduler.plan())
    rows = [
        ["pair-wise lower bound F_min", bound],
        ["Algorithm 1 achieved t_max", achieved],
    ]
    for tuple_size in (3, 4, 6):
        if tuple_size <= args.k:
            rows.append(
                [
                    f"direct {tuple_size}-tuple measurement",
                    tuple_measurement_subframes(
                        args.ues, tuple_size, args.k, args.samples
                    ),
                ]
            )
    print(
        format_table(
            ["approach", "subframes"],
            rows,
            title=(
                f"Measurement overhead (N={args.ues}, K={args.k}, "
                f"T={args.samples})"
            ),
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.traces.collect import collect_scenario_trace
    from repro.traces.io import save_trace

    scenario = generate_scenario(
        ScenarioConfig(num_ues=args.ues, num_wifi=args.wifi), seed=args.seed
    )
    trace = collect_scenario_trace(
        scenario,
        num_subframes=args.subframes,
        use_contention=not args.no_contention,
        seed=args.seed,
        label=f"scenario-{args.seed}",
        record_channels=False,
    )
    path = save_trace(trace, args.output)
    print(
        f"recorded {trace.num_subframes} subframes of "
        f"{trace.topology.num_terminals} hidden terminals to {path}"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.traces.io import load_trace

    trace = load_trace(args.path)
    marginals = trace.interference.marginals()
    rows = [
        ["label", trace.label or "(none)"],
        ["subframes", trace.num_subframes],
        ["UEs", trace.topology.num_ues],
        ["hidden terminals", trace.topology.num_terminals],
        ["mean terminal airtime", float(marginals.mean()) if len(marginals) else 0.0],
        ["channel traces", len(trace.channels)],
    ]
    print(format_table(["property", "value"], rows, title="Trace"))
    return 0


_COMMANDS = {
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "dynamics": _cmd_dynamics,
    "run-spec": _cmd_run_spec,
    "deploy": _cmd_deploy,
    "resume": _cmd_resume,
    "chaos": _cmd_chaos,
    "monitor": _cmd_monitor,
    "obs-report": _cmd_obs_report,
    "obs-export": _cmd_obs_export,
    "validate-specs": _cmd_validate_specs,
    "infer": _cmd_infer,
    "scenario": _cmd_scenario,
    "overhead": _cmd_overhead,
    "trace": _cmd_trace,
    "trace-info": _cmd_trace_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
