"""Run telemetry reports: merge per-run snapshots, render the obs table.

The CLI's ``--obs`` flags and ``obs-report`` command are thin wrappers
over these helpers: :func:`collect_snapshot` folds the snapshots riding on
a batch of results into one, :func:`format_obs_report` renders the metric
catalog as the repo's standard ASCII table, and
:func:`write_metrics_json` / :func:`load_metrics_json` define the
``<run-dir>/metrics.json`` layout ``repro obs-report`` consumes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.errors import ObsError
from repro.obs.metrics import (
    MetricsSnapshot,
    _bucket_quantiles,
    merge_snapshots,
)

__all__ = [
    "collect_snapshot",
    "format_obs_report",
    "load_metrics_json",
    "write_metrics_json",
]

#: File name ``obs-report`` looks for inside a run directory.
METRICS_FILENAME = "metrics.json"


def collect_snapshot(results: Iterable[Any]) -> Optional[MetricsSnapshot]:
    """Merge the ``obs_snapshot`` payloads riding on a batch of results.

    Accepts any iterable of :class:`~repro.sim.results.SimulationResult`;
    results without a snapshot (obs was off for that run) are skipped.
    Returns ``None`` when nothing carried telemetry.
    """
    snapshots = [
        MetricsSnapshot.from_dict(result.obs_snapshot)
        for result in results
        if getattr(result, "obs_snapshot", None) is not None
    ]
    if not snapshots:
        return None
    return merge_snapshots(snapshots)


def _series_cell(
    kind: str, data: Dict[str, Any], bounds: Optional[List[float]] = None
) -> str:
    if kind == "histogram":
        count = data.get("count", 0)
        mean = data.get("sum", 0.0) / count if count else 0.0
        cell = f"n={count} mean={mean:.4g}"
        quantiles = data.get("quantiles")
        if quantiles is None and bounds and data.get("buckets"):
            # Older metrics.json payloads predate the quantiles key;
            # re-estimate from the buckets so the report stays uniform.
            quantiles = _bucket_quantiles(bounds, data["buckets"])
        if quantiles:
            cell += " " + " ".join(
                f"{label}={quantiles[label]:.4g}"
                for label in ("p50", "p95", "p99")
                if label in quantiles
            )
        return cell
    value = data.get("value", 0)
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def format_obs_report(
    snapshot: Union[MetricsSnapshot, Dict[str, Any]],
    title: str = "Observability report",
) -> str:
    """Render a snapshot as one table row per metric series.

    Labeled families expand to one row per label-value combination
    (``engine.grant_outcomes{outcome=decoded}``); histograms show count
    and mean.  The header counts distinct metric names and the layers
    (name prefixes) they span.
    """
    from repro.analysis.tables import format_table

    if isinstance(snapshot, MetricsSnapshot):
        snapshot = snapshot.to_dict()
    rows: List[List[Any]] = []
    layers = set()
    for name, entry in snapshot.items():
        layers.add(name.split(".", 1)[0])
        kind = entry["kind"]
        label_names = entry.get("labels", [])
        for item in entry.get("series", []):
            label_values = item.get("labels", [])
            if label_names:
                pairs = ",".join(
                    f"{k}={v}" for k, v in zip(label_names, label_values)
                )
                shown = f"{name}{{{pairs}}}"
            else:
                shown = name
            data = {k: v for k, v in item.items() if k != "labels"}
            rows.append(
                [shown, kind, _series_cell(kind, data, entry.get("bounds"))]
            )
    header = (
        f"{title} — {len(snapshot)} metrics across "
        f"{len(layers)} layer(s): {', '.join(sorted(layers))}"
    )
    return format_table(["metric", "kind", "value"], rows, title=header)


def write_metrics_json(
    directory: Union[str, Path], snapshot: MetricsSnapshot
) -> Path:
    """Write ``<directory>/metrics.json`` (creating the directory)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / METRICS_FILENAME
    path.write_text(json.dumps(snapshot.to_dict(), indent=2, sort_keys=True))
    return path


def load_metrics_json(directory: Union[str, Path]) -> Dict[str, Any]:
    """Read a run directory's merged snapshot dict; raises ObsError if absent."""
    path = Path(directory) / METRICS_FILENAME
    if not path.is_file():
        raise ObsError(f"no {METRICS_FILENAME} in {directory}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ObsError(f"{path}: invalid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ObsError(f"{path}: expected a metrics object")
    return data
