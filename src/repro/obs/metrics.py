"""Process-local metrics: counters, gauges, histograms, labeled families.

The registry is deliberately *not* a global singleton with locked state —
each simulation run owns a fresh :class:`MetricsRegistry`, and instrumented
library code reaches it through :func:`active_registry`, which returns
``None`` when observability is off.  That gives the two properties the
engine's bit-exactness contract demands:

* **near-zero overhead when disabled** — every instrumentation site is one
  function call plus an ``is None`` check, and the engine-facing metrics
  live behind the :class:`~repro.sim.stages.SimHooks` seam, which costs
  nothing at all when no hooks are attached;
* **deterministic values** — metrics record counts and simulated
  quantities only, never wall-clock time (timing belongs to
  :mod:`repro.obs.timing` and the event tracer), so a seeded run produces
  the identical :class:`MetricsSnapshot` serially, in a worker process, or
  on a re-run.

Snapshots are plain-data (JSON-ready, picklable) so worker processes can
ship them back through ``map_jobs``; :func:`merge_snapshots` combines them
(counters and histograms sum, gauges take the last write).
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "active_registry",
    "histogram_quantile",
    "merge_snapshots",
    "set_active_registry",
    "use_registry",
]

#: Quantiles included in every histogram snapshot (p50/p95/p99).
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def histogram_quantile(
    bounds: Sequence[float], buckets: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    Linear interpolation within the bucket holding the target rank — the
    standard Prometheus ``histogram_quantile`` estimate.  The first
    bucket's lower edge is taken as ``min(0, bounds[0])``; observations in
    the overflow bucket clamp to the last bound (the estimate cannot
    exceed what the buckets resolve).  Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile must be in [0, 1]: {q}")
    total = sum(buckets)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for index, count in enumerate(buckets):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if index >= len(bounds):
                return float(bounds[-1])
            upper = float(bounds[index])
            lower = (
                float(bounds[index - 1]) if index else min(0.0, upper)
            )
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * fraction
        cumulative += count
    return float(bounds[-1])


def _bucket_quantiles(
    bounds: Optional[Sequence[float]], buckets: Sequence[int]
) -> Dict[str, float]:
    """The snapshot's ``quantiles`` payload (p50/p95/p99 estimates)."""
    if not bounds:
        return {}
    return {
        f"p{int(q * 100)}": histogram_quantile(bounds, buckets, q)
        for q in SUMMARY_QUANTILES
    }


class Counter:
    """A monotonically increasing count (grants issued, drift detections)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObsError(f"counter increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value; each :meth:`set` overwrites the last."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """A fixed-bucket distribution (repair iterations, RB utilization).

    ``bounds`` are upper bucket edges; an observation lands in the first
    bucket whose bound is >= the value, with one implicit overflow bucket,
    so ``len(bucket_counts) == len(bounds) + 1``.  Count and sum ride
    along for mean computation.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered:
            raise ObsError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(ordered, ordered[1:])):
            raise ObsError(f"histogram bounds must strictly increase: {ordered}")
        self.bounds = ordered
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One registered metric name: its kind, label names, and series.

    An unlabeled metric is a family with a single ``()`` series, accessed
    directly through the convenience handle the registry returns; labeled
    metrics expose per-label-value children via :meth:`labels`.
    """

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "series")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ObsError(f"unknown metric kind {kind!r}")
        if kind == "histogram" and buckets is None:
            raise ObsError(f"histogram {name!r} needs bucket bounds")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(float(b) for b in buckets) if buckets else None
        #: label-value tuple -> Counter | Gauge | Histogram, insertion-ordered.
        self.series: Dict[Tuple[str, ...], Any] = {}

    def _child(self, key: Tuple[str, ...]) -> Any:
        child = self.series.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.buckets)
            else:
                child = _KINDS[self.kind]()
            self.series[key] = child
        return child

    def labels(self, **label_values: str) -> Any:
        """The child metric for one label-value combination."""
        if tuple(label_values) != self.label_names:
            raise ObsError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(label_values)}"
            )
        return self._child(tuple(str(v) for v in label_values.values()))

    def unlabeled(self) -> Any:
        """The single series of a label-less family."""
        if self.label_names:
            raise ObsError(
                f"metric {self.name!r} is labeled by {self.label_names}; "
                "use .labels(...)"
            )
        return self._child(())


class MetricsRegistry:
    """Get-or-create store of metric families, keyed by name.

    ``counter``/``gauge``/``histogram`` return the unlabeled child directly
    (the common hot-path case) or the family when ``labels`` are declared.
    Re-registration with the same shape returns the existing metric;
    mismatched kind/labels/buckets raise :class:`~repro.errors.ObsError`.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(
                name, kind, help=help, label_names=labels, buckets=buckets
            )
            self._families[name] = family
            return family
        wanted = tuple(float(b) for b in buckets) if buckets else None
        if (
            family.kind != kind
            or family.label_names != tuple(labels)
            or (kind == "histogram" and family.buckets != wanted)
        ):
            raise ObsError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.label_names}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Any:
        """A :class:`Counter` (or its family, when ``labels`` are given)."""
        family = self._register(name, "counter", help, labels)
        return family if labels else family.unlabeled()

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Any:
        """A :class:`Gauge` (or its family, when ``labels`` are given)."""
        family = self._register(name, "gauge", help, labels)
        return family if labels else family.unlabeled()

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        help: str = "",
        labels: Sequence[str] = (),
    ) -> Any:
        """A :class:`Histogram` (or its family) with the given bounds."""
        family = self._register(name, "histogram", help, labels, buckets=buckets)
        return family if labels else family.unlabeled()

    def families(self) -> Iterator[MetricFamily]:
        """All registered families, in registration order."""
        return iter(self._families.values())

    def snapshot(self) -> "MetricsSnapshot":
        """An immutable plain-data copy of every metric's current state."""
        return MetricsSnapshot.from_registry(self)


def _series_data(kind: str, metric: Any) -> Dict[str, Any]:
    if kind == "histogram":
        return {
            "count": metric.count,
            "sum": metric.sum,
            "buckets": list(metric.bucket_counts),
            "quantiles": _bucket_quantiles(metric.bounds, metric.bucket_counts),
        }
    return {"value": metric.value}


class MetricsSnapshot:
    """Frozen plain-data view of a registry, mergeable across processes.

    Internally ``{name: {"kind", "help", "labels", "bounds"?, "series":
    {label_values_tuple: data_dict}}}``; :meth:`to_dict` flattens the
    series map into a JSON-safe list.  Equality compares the full payload,
    which is what the parallel-merge regression test leans on.
    """

    def __init__(self, metrics: Dict[str, Dict[str, Any]]) -> None:
        self._metrics = metrics

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "MetricsSnapshot":
        """Capture the current state of every family in ``registry``."""
        metrics: Dict[str, Dict[str, Any]] = {}
        for family in registry.families():
            entry: Dict[str, Any] = {
                "kind": family.kind,
                "help": family.help,
                "labels": family.label_names,
                "series": {
                    key: _series_data(family.kind, metric)
                    for key, metric in family.series.items()
                },
            }
            if family.kind == "histogram":
                entry["bounds"] = list(family.buckets)
            metrics[family.name] = entry
        return cls(metrics)

    def metric_names(self) -> List[str]:
        """Registered metric names, in registration order."""
        return list(self._metrics)

    def get(self, name: str) -> Optional[Dict[str, Any]]:
        """One metric's entry (kind, labels, series), or ``None``."""
        return self._metrics.get(name)

    def value(self, name: str, *label_values: str) -> Any:
        """Counter/gauge value or histogram data for one series."""
        entry = self._metrics[name]
        data = entry["series"][tuple(label_values)]
        if entry["kind"] == "histogram":
            return dict(data)
        return data["value"]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dump; label tuples become per-series lists."""
        out: Dict[str, Any] = {}
        for name, entry in self._metrics.items():
            dumped: Dict[str, Any] = {
                "kind": entry["kind"],
                "help": entry["help"],
                "labels": list(entry["labels"]),
                "series": [
                    {"labels": list(key), **data}
                    for key, data in entry["series"].items()
                ],
            }
            if "bounds" in entry:
                dumped["bounds"] = list(entry["bounds"])
            out[name] = dumped
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        """Rebuild a snapshot from a :meth:`to_dict` payload."""
        metrics: Dict[str, Dict[str, Any]] = {}
        for name, dumped in data.items():
            if not isinstance(dumped, Mapping) or "kind" not in dumped:
                raise ObsError(f"malformed snapshot entry for {name!r}")
            entry: Dict[str, Any] = {
                "kind": dumped["kind"],
                "help": dumped.get("help", ""),
                "labels": tuple(dumped.get("labels", ())),
                "series": {
                    tuple(item["labels"]): {
                        k: v for k, v in item.items() if k != "labels"
                    }
                    for item in dumped.get("series", ())
                },
            }
            if "bounds" in dumped:
                entry["bounds"] = list(dumped["bounds"])
            metrics[name] = entry
        return cls(metrics)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: sum counters/histograms, last-write gauges."""
        merged = {
            name: {
                **entry,
                "series": {k: dict(v) for k, v in entry["series"].items()},
            }
            for name, entry in self._metrics.items()
        }
        for name, entry in other._metrics.items():
            mine = merged.get(name)
            if mine is None:
                merged[name] = {
                    **entry,
                    "series": {k: dict(v) for k, v in entry["series"].items()},
                }
                continue
            if (
                mine["kind"] != entry["kind"]
                or mine["labels"] != entry["labels"]
                or mine.get("bounds") != entry.get("bounds")
            ):
                raise ObsError(
                    f"cannot merge metric {name!r}: incompatible shapes"
                )
            for key, data in entry["series"].items():
                target = mine["series"].get(key)
                if target is None:
                    mine["series"][key] = dict(data)
                elif mine["kind"] == "counter":
                    target["value"] += data["value"]
                elif mine["kind"] == "gauge":
                    target["value"] = data["value"]
                else:
                    target["count"] += data["count"]
                    target["sum"] += data["sum"]
                    target["buckets"] = [
                        a + b for a, b in zip(target["buckets"], data["buckets"])
                    ]
                    # Quantiles don't sum — re-estimate from the merged
                    # buckets so the merged snapshot stays self-consistent.
                    target["quantiles"] = _bucket_quantiles(
                        mine.get("bounds"), target["buckets"]
                    )
        return MetricsSnapshot(merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self._metrics == other._metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsSnapshot({len(self._metrics)} metrics)"


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold many per-run snapshots into one (order matters only for gauges)."""
    merged: Optional[MetricsSnapshot] = None
    for snapshot in snapshots:
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged if merged is not None else MetricsSnapshot({})


#: The registry instrumented library code reports into; ``None`` = obs off.
_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry for the current run, or ``None`` when obs is off.

    Instrumentation sites call this once per event and skip all work on
    ``None`` — the whole cost of disabled observability outside the hooks
    seam.
    """
    return _ACTIVE


def set_active_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install (or clear, with ``None``) the process-local active registry."""
    global _ACTIVE
    _ACTIVE = registry


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the active one; restores the previous on exit."""
    previous = _ACTIVE
    set_active_registry(registry)
    try:
        yield registry
    finally:
        set_active_registry(previous)
