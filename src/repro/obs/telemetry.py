"""Crash-safe progress telemetry: an append-only JSONL event log.

A :class:`TelemetryLog` is one ``telemetry.jsonl`` file per run or
campaign directory.  Every event is a single JSON line written with one
atomic ``O_APPEND`` write, so any number of worker processes can share
the log without interleaving partial lines; the reader
(:func:`read_telemetry`) tolerates a truncated final line, which is what
a kill mid-write leaves behind.  When the file outgrows ``max_bytes``,
:meth:`TelemetryLog.rotate` moves it aside with an atomic
``os.replace`` (the tmp+rename idiom the checkpoint store uses) and
appends continue into a fresh file.

Typed events (see :data:`EVENT_TYPES`) cover the campaign lifecycle —
``campaign-started``/``cluster-done``/``campaign-done`` from the deploy
runner, ``item-started``/``heartbeat``/``retry``/``timeout``/
``quarantine``/``item-done`` from :func:`~repro.resilience.supervisor.
supervised_map`, ``degraded`` from runners that quarantined and
recomputed a corrupt checkpoint cell, and per-run engine progress
(``run-started``, ``subframe-window``, ``phase-transition``) from the
obs stream layer.
Heartbeats come from a daemon thread inside each worker, so a hung item
shows up live as a heartbeat with ever-growing ``elapsed_s`` and no
``item-done`` — what ``repro monitor`` renders as *stalled*.

Writers only observe: nothing here touches the engine RNG stream, so
runs with telemetry attached stay bit-exact with silent runs (pinned by
the heartbeat bit-exactness tests).

The process-local :func:`active_telemetry` handle mirrors
:func:`~repro.obs.metrics.active_registry`: the supervisor's worker
wrapper scopes the campaign log around each item so the obs session
inside can emit run-level events without any extra plumbing.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.errors import ObsError

__all__ = [
    "EVENT_TYPES",
    "TELEMETRY_FILENAME",
    "TelemetryLog",
    "active_telemetry",
    "read_telemetry",
    "set_active_telemetry",
    "use_telemetry",
    "validate_telemetry_events",
]

#: File name a telemetry directory holds (``.1`` suffix after rotation).
TELEMETRY_FILENAME = "telemetry.jsonl"

#: Every event type the log accepts; ``repro monitor`` understands all.
EVENT_TYPES = frozenset(
    {
        "campaign-started",
        "campaign-done",
        "run-started",
        "subframe-window",
        "phase-transition",
        "item-started",
        "heartbeat",
        "retry",
        "timeout",
        "quarantine",
        "item-done",
        "cluster-done",
        "degraded",
    }
)


class TelemetryLog:
    """Append-only JSONL event log, shareable across worker processes.

    Holds only the path and policy — no open file handle — so instances
    pickle into pool workers; each :meth:`emit` opens, appends one line,
    and closes.  ``heartbeat_s`` is the cadence the supervisor's worker
    wrapper uses for its heartbeat thread.
    """

    __slots__ = ("path", "heartbeat_s", "max_bytes")

    def __init__(
        self,
        path: Union[str, Path],
        heartbeat_s: float = 0.5,
        max_bytes: Optional[int] = None,
    ) -> None:
        if heartbeat_s <= 0:
            raise ObsError(f"heartbeat_s must be positive: {heartbeat_s}")
        if max_bytes is not None and max_bytes < 1:
            raise ObsError(f"max_bytes must be positive or None: {max_bytes}")
        self.path = Path(path)
        self.heartbeat_s = float(heartbeat_s)
        self.max_bytes = max_bytes

    @classmethod
    def in_dir(
        cls, directory: Union[str, Path], **kwargs: Any
    ) -> "TelemetryLog":
        """The canonical ``<directory>/telemetry.jsonl`` log (mkdir -p)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / TELEMETRY_FILENAME, **kwargs)

    def emit(self, type: str, **fields: Any) -> Dict[str, Any]:
        """Append one typed event line; returns the event dict.

        ``None``-valued fields are dropped so the log stays compact.  The
        wall-clock ``ts`` is observation metadata only — simulation
        results never depend on it.
        """
        if type not in EVENT_TYPES:
            raise ObsError(
                f"unknown telemetry event type {type!r}; "
                f"allowed: {sorted(EVENT_TYPES)}"
            )
        event = {"type": type, "ts": round(time.time(), 3)}
        event.update(
            (key, value) for key, value in fields.items() if value is not None
        )
        line = json.dumps(event, sort_keys=True) + "\n"
        self.rotate_if_needed()
        # One write() of one line on an O_APPEND descriptor: atomic for
        # lines under PIPE_BUF, which every event here is.  Routed through
        # the storage seam so chaos rounds can drop/tear event lines.
        from repro.resilience.storage import append_line

        append_line(self.path, line)
        return event

    def rotated_path(self) -> Path:
        """Where :meth:`rotate` moves the current file."""
        return self.path.with_name(self.path.name + ".1")

    def rotate(self) -> Optional[Path]:
        """Atomically move the log aside (``telemetry.jsonl.1``); a new
        file starts on the next emit.  Returns the rotated path, or
        ``None`` when there was nothing to rotate."""
        if not self.path.exists():
            return None
        target = self.rotated_path()
        os.replace(self.path, target)
        return target

    def rotate_if_needed(self) -> None:
        """Rotate when the file has outgrown ``max_bytes``."""
        if self.max_bytes is None:
            return
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size >= self.max_bytes:
            self.rotate()


def read_telemetry(
    source: Union[str, Path, TelemetryLog]
) -> List[Dict[str, Any]]:
    """Read every event from a log, directory, or path, oldest first.

    Includes the rotated ``.1`` file (if any) ahead of the current one.
    Unparseable lines — a truncated final line after a kill — are
    skipped, not fatal: the log is crash-safe by construction.
    """
    if isinstance(source, TelemetryLog):
        path = source.path
    else:
        path = Path(source)
        if path.is_dir():
            path = path / TELEMETRY_FILENAME
    events: List[Dict[str, Any]] = []
    rotated = path.with_name(path.name + ".1")
    for part in (rotated, path):
        if not part.is_file():
            continue
        for line in part.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def validate_telemetry_events(events: List[Dict[str, Any]]) -> List[str]:
    """Schema-check a list of events; returns human-readable errors."""
    errors: List[str] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        etype = event.get("type")
        if etype not in EVENT_TYPES:
            errors.append(f"event {index}: unknown type {etype!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"event {index}: missing numeric ts")
    return errors


#: The log progress events flow into for the current item; ``None`` = off.
_ACTIVE: Optional[TelemetryLog] = None


def active_telemetry() -> Optional[TelemetryLog]:
    """The telemetry log scoped to the current work item, or ``None``."""
    return _ACTIVE


def set_active_telemetry(log: Optional[TelemetryLog]) -> None:
    """Install (or clear, with ``None``) the process-local active log."""
    global _ACTIVE
    _ACTIVE = log


@contextmanager
def use_telemetry(log: Optional[TelemetryLog]) -> Iterator[Optional[TelemetryLog]]:
    """Scope ``log`` as the active one; restores the previous on exit."""
    previous = _ACTIVE
    set_active_telemetry(log)
    try:
        yield log
    finally:
        set_active_telemetry(previous)
