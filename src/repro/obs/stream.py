"""Streaming time-series telemetry: windowed samples of metric families.

End-of-run :class:`~repro.obs.metrics.MetricsSnapshot` aggregates cannot
show *when* utilization collapsed or the drift detector fired.  The
:class:`TimeSeriesRecorder` closes that gap: attached through the
:class:`~repro.sim.stages.SimHooks` seam (after the metrics hooks, so the
registry is current at every subframe end), it samples a selected set of
metric families once per ``window`` subframes and appends one row to a
columnar :class:`TimeSeriesFrame`.

The frame mirrors the snapshot's merge algebra so per-run series combine
deterministically across worker processes:

* ``sum`` columns (counter deltas, histogram ``.count``/``.sum`` deltas)
  add element-wise, padding missing rows/columns with zero;
* ``last`` columns (gauges) take the right-hand operand's value;
* ``label`` columns (controller phase) take the right-hand non-empty
  value — last write wins, like gauges.

Everything is plain data (JSON-ready, picklable): a frame rides on
``SimulationResult.obs_series`` exactly like ``obs_snapshot``, survives
``to_state`` checkpoints, and :func:`collect_series` folds a batch of
results in iteration order — the same deterministic order
:func:`~repro.obs.report.collect_snapshot` uses.

The recorder observes and never perturbs: it reads the registry and the
optional ``phase_probe``, touching neither the simulation context nor the
engine RNG stream, so a streaming-enabled run is bit-exact with a
disabled one (pinned by tests and the ``obs_stream`` bench guard).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.sim.stages import SimHooks, SubframeContext

__all__ = [
    "DEFAULT_STREAM_FAMILIES",
    "SERIES_FILENAME",
    "TimeSeriesFrame",
    "TimeSeriesRecorder",
    "collect_series",
    "load_series_json",
    "merge_frames",
    "write_series_json",
]

#: Metric families the recorder samples unless the caller narrows the set.
DEFAULT_STREAM_FAMILIES = (
    "engine.rb_utilization",
    "engine.grants_issued",
    "engine.grant_outcomes",
    "engine.cca_failures",
    "engine.channel_grant_outcomes",
    "dynamics.drift_detections",
    "controller.measurement_subframes",
)

#: File name the CLI writes windowed series into (next to metrics.json).
SERIES_FILENAME = "series.json"

#: Column merge kinds (mirroring MetricsSnapshot semantics).
_SUM = "sum"
_LAST = "last"
_LABEL = "label"

#: Reserved column carrying each row's first subframe index.
_WINDOW_START = "window_start"

#: Column carrying the controller phase sampled at each window boundary.
PHASE_COLUMN = "phase"


def _pad_value(kind: str) -> Any:
    return "" if kind == _LABEL else 0.0


class TimeSeriesFrame:
    """A columnar per-run series: one row per subframe window.

    ``columns`` maps column name to a row-aligned list; ``kinds`` maps
    every column (except ``window_start``) to its merge kind.  Columns may
    appear mid-run (a labeled counter's first increment): earlier rows are
    backfilled with the kind's pad value, so all columns always share the
    row count.
    """

    __slots__ = ("window", "columns", "kinds")

    def __init__(self, window: int) -> None:
        if not isinstance(window, int) or window < 1:
            raise ObsError(f"series window must be a positive int: {window!r}")
        self.window = window
        self.columns: Dict[str, List[Any]] = {_WINDOW_START: []}
        self.kinds: Dict[str, str] = {}

    @property
    def num_rows(self) -> int:
        return len(self.columns[_WINDOW_START])

    def window_starts(self) -> List[int]:
        """First subframe index of every row."""
        return list(self.columns[_WINDOW_START])

    def column(self, name: str) -> List[Any]:
        """One column's row-aligned values (raises ObsError when absent)."""
        if name not in self.columns:
            raise ObsError(
                f"series has no column {name!r}; has: {sorted(self.columns)}"
            )
        return list(self.columns[name])

    def append_row(
        self, window_start: int, values: Mapping[str, Tuple[str, Any]]
    ) -> None:
        """Append one window's samples; ``values[name] = (kind, value)``."""
        rows = self.num_rows
        for name, (kind, value) in values.items():
            if name == _WINDOW_START:
                raise ObsError(f"column name {name!r} is reserved")
            have = self.kinds.get(name)
            if have is None:
                self.kinds[name] = kind
                self.columns[name] = [_pad_value(kind)] * rows
            elif have != kind:
                raise ObsError(
                    f"column {name!r} is {have}, cannot append as {kind}"
                )
            self.columns[name].append(value)
        self.columns[_WINDOW_START].append(int(window_start))
        for name, kind in self.kinds.items():
            if len(self.columns[name]) <= rows:
                self.columns[name].append(_pad_value(kind))

    def utilization(self) -> List[float]:
        """Per-window mean RB utilization derived from the histogram deltas.

        Windows with no UL subframe (count delta 0) report 0.0.
        """
        counts = self.columns.get("engine.rb_utilization.count")
        sums = self.columns.get("engine.rb_utilization.sum")
        if counts is None or sums is None:
            return []
        return [s / c if c else 0.0 for c, s in zip(counts, sums)]

    # -- plain-data round trip and merge ---------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field dump (the ``obs_series`` payload)."""
        return {
            "window": self.window,
            "rows": self.num_rows,
            "kinds": dict(self.kinds),
            "columns": {name: list(col) for name, col in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimeSeriesFrame":
        """Rebuild a frame from a :meth:`to_dict` payload."""
        if not isinstance(data, Mapping) or "window" not in data:
            raise ObsError("malformed series payload: missing 'window'")
        frame = cls(int(data["window"]))
        columns = data.get("columns", {})
        if _WINDOW_START not in columns:
            raise ObsError("malformed series payload: missing window_start")
        rows = len(columns[_WINDOW_START])
        frame.kinds = {
            str(name): str(kind) for name, kind in data.get("kinds", {}).items()
        }
        for name, col in columns.items():
            if name != _WINDOW_START and name not in frame.kinds:
                raise ObsError(f"series column {name!r} has no merge kind")
            if len(col) != rows:
                raise ObsError(
                    f"series column {name!r} has {len(col)} rows, "
                    f"expected {rows}"
                )
            frame.columns[name] = list(col)
        return frame

    def merge(self, other: "TimeSeriesFrame") -> "TimeSeriesFrame":
        """Row-aligned combine mirroring snapshot semantics (see module doc)."""
        if self.window != other.window:
            raise ObsError(
                f"cannot merge series with windows {self.window} "
                f"and {other.window}"
            )
        merged = TimeSeriesFrame(self.window)
        rows = max(self.num_rows, other.num_rows)
        merged.columns[_WINDOW_START] = [i * self.window for i in range(rows)]
        names = list(self.kinds)
        names.extend(n for n in other.kinds if n not in self.kinds)
        for name in names:
            kind = self.kinds.get(name) or other.kinds[name]
            if name in other.kinds and other.kinds[name] != kind:
                raise ObsError(
                    f"cannot merge column {name!r}: "
                    f"{kind} vs {other.kinds[name]}"
                )
            pad = _pad_value(kind)
            mine = self.columns.get(name, [])
            theirs = other.columns.get(name, [])
            column: List[Any] = []
            for i in range(rows):
                a = mine[i] if i < len(mine) else pad
                b = theirs[i] if i < len(theirs) else pad
                if kind == _SUM:
                    column.append(a + b)
                else:  # last / label: right-hand write wins when present
                    column.append(b if b != pad else a)
            merged.kinds[name] = kind
            merged.columns[name] = column
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeriesFrame):
            return NotImplemented
        return (
            self.window == other.window
            and self.kinds == other.kinds
            and self.columns == other.columns
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeriesFrame(window={self.window}, rows={self.num_rows}, "
            f"columns={len(self.columns)})"
        )


def merge_frames(
    frames: Iterable[Union[TimeSeriesFrame, Mapping[str, Any]]]
) -> Optional[TimeSeriesFrame]:
    """Fold many per-run frames into one (order matters for label columns)."""
    merged: Optional[TimeSeriesFrame] = None
    for frame in frames:
        if not isinstance(frame, TimeSeriesFrame):
            frame = TimeSeriesFrame.from_dict(frame)
        merged = frame if merged is None else merged.merge(frame)
    return merged


def collect_series(results: Iterable[Any]) -> Optional[TimeSeriesFrame]:
    """Merge the ``obs_series`` payloads riding on a batch of results.

    Iteration order defines the fold order (callers pass seed-major grid
    order or ascending cell id), exactly like
    :func:`~repro.obs.report.collect_snapshot`.  Returns ``None`` when no
    result carried a series.
    """
    frames = [
        result.obs_series
        for result in results
        if getattr(result, "obs_series", None) is not None
    ]
    if not frames:
        return None
    return merge_frames(frames)


def write_series_json(
    directory: Union[str, Path], frames: Mapping[str, TimeSeriesFrame]
) -> Path:
    """Write ``<directory>/series.json``: per-run frames keyed by name."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / SERIES_FILENAME
    payload = {
        "series": {name: frame.to_dict() for name, frame in frames.items()}
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_series_json(
    directory: Union[str, Path]
) -> Dict[str, TimeSeriesFrame]:
    """Read a run directory's frames; raises ObsError when absent/invalid."""
    path = Path(directory) / SERIES_FILENAME
    if not path.is_file():
        raise ObsError(f"no {SERIES_FILENAME} in {directory}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ObsError(f"{path}: invalid JSON: {error}") from error
    series = data.get("series") if isinstance(data, dict) else None
    if not isinstance(series, dict):
        raise ObsError(f"{path}: expected a {{'series': {{...}}}} object")
    return {
        name: TimeSeriesFrame.from_dict(frame) for name, frame in series.items()
    }


class TimeSeriesRecorder(SimHooks):
    """Sample selected metric families into a frame, one row per window.

    Per subframe the recorder does one counter increment, a window-
    boundary check, and (when a ``phase_probe`` is given) one attribute
    read — the registry scan happens only at window boundaries, keeping
    the streaming overhead inside the obs bench's <1.02x guard.

    ``phase_probe`` returns the scheduler's current controller phase (a
    ``BLUPhase`` or string; ``None`` for phase-less schedulers); changes
    are recorded as the ``phase`` label column and, when a
    :class:`~repro.obs.telemetry.TelemetryLog` is attached, emitted as
    ``phase-transition`` events alongside per-window ``subframe-window``
    progress events.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        window: int = 100,
        families: Optional[Sequence[str]] = None,
        phase_probe: Optional[Callable[[], Any]] = None,
        log: Optional[Any] = None,
        run_label: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self.frame = TimeSeriesFrame(window)
        self.families = (
            tuple(families) if families is not None else DEFAULT_STREAM_FAMILIES
        )
        self._family_set = frozenset(self.families)
        self.phase_probe = phase_probe
        self.log = log
        self.run_label = run_label
        self._window = self.frame.window
        self._seen = 0
        self._flushed = 0
        self._phase = ""
        self._prev: Dict[str, float] = {}

    def on_subframe_end(self, ctx: SubframeContext) -> None:
        """Track the phase and flush a row at each window boundary."""
        if self.phase_probe is not None:
            phase = self.phase_probe()
            if phase is not None:
                name = str(getattr(phase, "value", phase))
                if name != self._phase:
                    previous, self._phase = self._phase, name
                    if self.log is not None:
                        self.log.emit(
                            "phase-transition",
                            run=self.run_label,
                            subframe=ctx.subframe,
                            phase=name,
                            previous=previous or None,
                        )
        self._seen += 1
        if self._seen % self._window == 0:
            self._flush()

    def finish(self) -> None:
        """Flush the final partial window (idempotent)."""
        if self._seen > self._flushed * self._window:
            self._flush()

    def _flush(self) -> None:
        values: Dict[str, Tuple[str, Any]] = {}
        for family in self.registry.families():
            if family.name not in self._family_set:
                continue
            for key, metric in family.series.items():
                suffix = (
                    "{" + ",".join(
                        f"{k}={v}" for k, v in zip(family.label_names, key)
                    ) + "}"
                    if key
                    else ""
                )
                if family.kind == "counter":
                    column = f"{family.name}{suffix}"
                    values[column] = (
                        _SUM, metric.value - self._prev.get(column, 0.0)
                    )
                    self._prev[column] = metric.value
                elif family.kind == "gauge":
                    values[f"{family.name}{suffix}"] = (_LAST, metric.value)
                else:  # histogram: windowed count/sum deltas
                    for part, total in (
                        ("count", metric.count), ("sum", metric.sum)
                    ):
                        column = f"{family.name}.{part}{suffix}"
                        values[column] = (
                            _SUM, total - self._prev.get(column, 0.0)
                        )
                        self._prev[column] = total
        if self.phase_probe is not None:
            values[PHASE_COLUMN] = (_LABEL, self._phase)
        window_start = self._flushed * self._window
        subframes = self._seen - self._flushed * self._window
        self.frame.append_row(window_start, values)
        self._flushed += 1
        if self.log is not None:
            util_count = values.get("engine.rb_utilization.count", (None, 0.0))[1]
            util_sum = values.get("engine.rb_utilization.sum", (None, 0.0))[1]
            self.log.emit(
                "subframe-window",
                run=self.run_label,
                window_start=window_start,
                subframes=subframes,
                utilization=(
                    round(util_sum / util_count, 4) if util_count else None
                ),
            )
