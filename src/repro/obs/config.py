"""Serializable observability configuration, attachable to experiment specs.

An :class:`ObsConfig` rides on :class:`~repro.experiments.ExperimentSpec`
(``"obs": {...}`` in the JSON form) or is passed ad hoc by harness code.
Absent or ``enabled=False`` means observability is completely off: no
hooks attached, no registry activated, the engine's no-hooks fast path
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.errors import SpecError

__all__ = ["ObsConfig"]

_FIELDS = ("enabled", "tracing", "trace_capacity", "stage_events")


@dataclass(frozen=True)
class ObsConfig:
    """What to collect during a run.

    ``enabled`` gates everything; ``tracing`` additionally records trace
    events (metrics alone are much cheaper); ``trace_capacity`` bounds the
    tracer's ring buffer; ``stage_events`` controls per-stage spans (the
    bulkiest event class — subframe/TxOP events stay on regardless).
    """

    enabled: bool = True
    tracing: bool = False
    trace_capacity: int = 65536
    stage_events: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.trace_capacity, int) or self.trace_capacity < 1:
            raise SpecError(
                f"obs.trace_capacity must be a positive int: "
                f"{self.trace_capacity!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field dump."""
        return {
            "enabled": self.enabled,
            "tracing": self.tracing,
            "trace_capacity": self.trace_capacity,
            "stage_events": self.stage_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObsConfig":
        """Strictly validated inverse of :meth:`to_dict`."""
        if not isinstance(data, Mapping):
            raise SpecError(f"obs must be a mapping, got {type(data).__name__}")
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise SpecError(
                f"unknown field(s) {unknown} in obs; allowed: {sorted(_FIELDS)}"
            )
        return cls(
            enabled=bool(data.get("enabled", True)),
            tracing=bool(data.get("tracing", False)),
            trace_capacity=data.get("trace_capacity", 65536),
            stage_events=bool(data.get("stage_events", True)),
        )
