"""Serializable observability configuration, attachable to experiment specs.

An :class:`ObsConfig` rides on :class:`~repro.experiments.ExperimentSpec`
(``"obs": {...}`` in the JSON form) or is passed ad hoc by harness code.
Absent or ``enabled=False`` means observability is completely off: no
hooks attached, no registry activated, the engine's no-hooks fast path
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SpecError

__all__ = ["ObsConfig"]

_FIELDS = (
    "enabled",
    "tracing",
    "trace_capacity",
    "stage_events",
    "stream",
    "stream_window",
    "stream_families",
)


@dataclass(frozen=True)
class ObsConfig:
    """What to collect during a run.

    ``enabled`` gates everything; ``tracing`` additionally records trace
    events (metrics alone are much cheaper); ``trace_capacity`` bounds the
    tracer's ring buffer; ``stage_events`` controls per-stage spans (the
    bulkiest event class — subframe/TxOP events stay on regardless).

    The stream block: ``stream`` attaches a
    :class:`~repro.obs.stream.TimeSeriesRecorder` that samples metric
    families every ``stream_window`` subframes into the result's
    ``obs_series`` frame; ``stream_families`` narrows the sampled set
    (``None`` = :data:`~repro.obs.stream.DEFAULT_STREAM_FAMILIES`).
    """

    enabled: bool = True
    tracing: bool = False
    trace_capacity: int = 65536
    stage_events: bool = True
    stream: bool = False
    stream_window: int = 100
    stream_families: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.trace_capacity, int) or self.trace_capacity < 1:
            raise SpecError(
                f"obs.trace_capacity must be a positive int: "
                f"{self.trace_capacity!r}"
            )
        if not isinstance(self.stream_window, int) or self.stream_window < 1:
            raise SpecError(
                f"obs.stream_window must be a positive int: "
                f"{self.stream_window!r}"
            )
        if self.stream_families is not None:
            families = tuple(str(name) for name in self.stream_families)
            if not families:
                raise SpecError(
                    "obs.stream_families must be null or a non-empty list"
                )
            object.__setattr__(self, "stream_families", families)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field dump."""
        return {
            "enabled": self.enabled,
            "tracing": self.tracing,
            "trace_capacity": self.trace_capacity,
            "stage_events": self.stage_events,
            "stream": self.stream,
            "stream_window": self.stream_window,
            "stream_families": (
                list(self.stream_families)
                if self.stream_families is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObsConfig":
        """Strictly validated inverse of :meth:`to_dict`."""
        if not isinstance(data, Mapping):
            raise SpecError(f"obs must be a mapping, got {type(data).__name__}")
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise SpecError(
                f"unknown field(s) {unknown} in obs; allowed: {sorted(_FIELDS)}"
            )
        families = data.get("stream_families")
        return cls(
            enabled=bool(data.get("enabled", True)),
            tracing=bool(data.get("tracing", False)),
            trace_capacity=data.get("trace_capacity", 65536),
            stage_events=bool(data.get("stage_events", True)),
            stream=bool(data.get("stream", False)),
            stream_window=data.get("stream_window", 100),
            stream_families=(
                tuple(families) if families is not None else None
            ),
        )
