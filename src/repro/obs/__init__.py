"""Observability: metrics, structured tracing, timing, run telemetry.

Four cooperating pieces, all process-local and off by default:

* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` families
  in a per-run :class:`MetricsRegistry`; instrumented library code
  (scheduler, blueprint solver, dynamics controller) reports through
  :func:`active_registry`, which is ``None`` when obs is off;
* :mod:`repro.obs.trace` — a ring-buffered :class:`EventTracer` whose
  events export as JSONL or Chrome trace-event JSON;
* :mod:`repro.obs.hooks` — ``SimHooks`` adapters feeding both from the
  engine's stage seam (imported lazily: they pull in ``repro.sim``);
* :mod:`repro.obs.timing` — the ``Stopwatch``/``PhaseTimer`` tools.

Attach an :class:`ObsConfig` to an ``ExperimentSpec`` (or pass ``--obs``
on the CLI) and every run's :class:`MetricsSnapshot` rides back on its
result, mergeable across worker processes.  See ``docs/OBSERVABILITY.md``
for the metric catalog and trace schema.
"""

from repro.obs.config import ObsConfig
from repro.obs.openmetrics import (
    to_openmetrics,
    validate_openmetrics,
    write_metrics_prom,
)
from repro.obs.telemetry import (
    TelemetryLog,
    active_telemetry,
    read_telemetry,
    set_active_telemetry,
    use_telemetry,
    validate_telemetry_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    MetricsSnapshot,
    active_registry,
    histogram_quantile,
    merge_snapshots,
    set_active_registry,
    use_registry,
)
from repro.obs.report import (
    collect_snapshot,
    format_obs_report,
    load_metrics_json,
    write_metrics_json,
)
from repro.obs.timing import PhaseTimer, Stopwatch
from repro.obs.trace import (
    EventTracer,
    load_trace_jsonl,
    merge_run_traces,
    validate_trace_events,
    validate_trace_file,
    write_trace_chrome,
    write_trace_jsonl,
)

__all__ = [
    "CampaignStatus",
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsHooks",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsConfig",
    "ObsSession",
    "PhaseTimer",
    "PhaseTimerHooks",
    "Stopwatch",
    "TelemetryLog",
    "TimeSeriesFrame",
    "TimeSeriesRecorder",
    "TracingHooks",
    "active_registry",
    "active_telemetry",
    "collect_series",
    "collect_snapshot",
    "format_monitor",
    "format_obs_report",
    "histogram_quantile",
    "load_metrics_json",
    "load_series_json",
    "load_trace_jsonl",
    "merge_frames",
    "merge_run_traces",
    "merge_snapshots",
    "monitor_directory",
    "read_telemetry",
    "scan_telemetry",
    "set_active_registry",
    "set_active_telemetry",
    "to_openmetrics",
    "use_registry",
    "use_telemetry",
    "validate_openmetrics",
    "validate_telemetry_events",
    "validate_trace_events",
    "validate_trace_file",
    "write_metrics_json",
    "write_metrics_prom",
    "write_series_json",
    "write_trace_chrome",
    "write_trace_jsonl",
]

#: Deferred exports: these pull in ``repro.sim`` (the hooks seam), which
#: itself imports ``repro.obs.timing`` — lazy loading keeps the package
#: importable from anywhere in that chain without cycles.
_LAZY = {
    "MetricsHooks": "repro.obs.hooks",
    "TracingHooks": "repro.obs.hooks",
    "ObsSession": "repro.obs.session",
    "PhaseTimerHooks": "repro.sim.stages",
    # The stream layer: the recorder is a SimHooks subclass, and the
    # monitor renders through repro.analysis — both off the import-time
    # critical path.
    "TimeSeriesFrame": "repro.obs.stream",
    "TimeSeriesRecorder": "repro.obs.stream",
    "collect_series": "repro.obs.stream",
    "merge_frames": "repro.obs.stream",
    "load_series_json": "repro.obs.stream",
    "write_series_json": "repro.obs.stream",
    "CampaignStatus": "repro.obs.monitor",
    "scan_telemetry": "repro.obs.monitor",
    "format_monitor": "repro.obs.monitor",
    "monitor_directory": "repro.obs.monitor",
}


def __getattr__(name):
    """Resolve the lazily exported hook/session classes on first access."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
