"""One run's observability context: registry + tracer + hooks, bundled.

:class:`ObsSession` is what the experiment layer instantiates per
simulation run when an :class:`~repro.obs.config.ObsConfig` is enabled.
It owns a *fresh* :class:`~repro.obs.metrics.MetricsRegistry` (so
replicated runs never share counters and snapshots merge exactly the same
whether runs were serial or parallel), the optional
:class:`~repro.obs.trace.EventTracer`, and the
:class:`~repro.sim.stages.SimHooks` stack the engine should attach.

Usage::

    session = ObsSession(obs_config)
    sim = plan.simulation(name, hooks=session.hooks, ...)
    with session.activate():      # instrumented library code sees the registry
        result = sim.run()
    session.finish()
    session.attach(result)        # snapshot + trace ride on the result
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from repro.obs.config import ObsConfig
from repro.obs.hooks import MetricsHooks, TracingHooks
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, use_registry
from repro.obs.trace import EventTracer
from repro.sim.stages import CompositeHooks, SimHooks

__all__ = ["ObsSession"]


class ObsSession:
    """Builds and carries the per-run observability plumbing."""

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        ue_channels: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = ObsConfig() if config is None else config
        self.registry = MetricsRegistry()
        self.tracer: Optional[EventTracer] = None
        # ``ue_channels`` (multi-channel specs) switches on the channel-
        # labelled metric families alongside the headline counters.
        metrics_hooks = MetricsHooks(self.registry, ue_channels=ue_channels)
        self._tracing_hooks: Optional[TracingHooks] = None
        if self.config.tracing:
            self.tracer = EventTracer(capacity=self.config.trace_capacity)
            self._tracing_hooks = TracingHooks(
                self.tracer, stage_events=self.config.stage_events
            )
            self.hooks: SimHooks = CompositeHooks(
                [metrics_hooks, self._tracing_hooks]
            )
        else:
            self.hooks = metrics_hooks

    @contextmanager
    def activate(self) -> Iterator["ObsSession"]:
        """Scope this session's registry as the process-local active one."""
        with use_registry(self.registry):
            yield self

    def finish(self) -> None:
        """Close any trace spans still open after the run's last subframe."""
        if self._tracing_hooks is not None:
            self._tracing_hooks.finish()

    def snapshot(self) -> MetricsSnapshot:
        """The run's metrics, frozen into a mergeable plain-data snapshot."""
        return self.registry.snapshot()

    def attach(self, result) -> None:
        """Stamp the result with this run's snapshot (and trace, if any).

        Both fields are ``compare=False`` on
        :class:`~repro.sim.results.SimulationResult`, so telemetry never
        perturbs bit-exactness comparisons — and both are plain data, so
        results round-trip through ``map_jobs`` worker pickling.
        """
        result.obs_snapshot = self.snapshot().to_dict()
        if self.tracer is not None:
            result.obs_trace = self.tracer.events()
