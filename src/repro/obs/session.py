"""One run's observability context: registry + tracer + hooks, bundled.

:class:`ObsSession` is what the experiment layer instantiates per
simulation run when an :class:`~repro.obs.config.ObsConfig` is enabled.
It owns a *fresh* :class:`~repro.obs.metrics.MetricsRegistry` (so
replicated runs never share counters and snapshots merge exactly the same
whether runs were serial or parallel), the optional
:class:`~repro.obs.trace.EventTracer`, the optional streaming
:class:`~repro.obs.stream.TimeSeriesRecorder`, and the
:class:`~repro.sim.stages.SimHooks` stack the engine should attach.

Usage::

    session = ObsSession(obs_config)
    sim = plan.simulation(name, hooks=session.hooks, ...)
    with session.activate():      # instrumented library code sees the registry
        result = sim.run()
    session.finish()
    session.attach(result)        # snapshot + trace + series ride on the result

When the config enables streaming, the recorder joins the hooks stack
*after* the metrics hooks (so the registry is current at every subframe
end) and its frame is attached as ``result.obs_series``.  If a
:func:`~repro.obs.telemetry.active_telemetry` log is scoped — the
supervisor's worker wrapper does this for campaign items — the session
emits a ``run-started`` event and the recorder streams per-window and
phase-transition progress into it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.obs.config import ObsConfig
from repro.obs.hooks import MetricsHooks, TracingHooks
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, use_registry
from repro.obs.stream import TimeSeriesRecorder
from repro.obs.telemetry import active_telemetry
from repro.obs.trace import EventTracer
from repro.sim.stages import CompositeHooks, SimHooks

__all__ = ["ObsSession"]


class ObsSession:
    """Builds and carries the per-run observability plumbing."""

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        ue_channels: Optional[Sequence[int]] = None,
        phase_probe: Optional[Callable[[], Any]] = None,
        run_label: Optional[str] = None,
    ) -> None:
        self.config = ObsConfig() if config is None else config
        self.registry = MetricsRegistry()
        self.tracer: Optional[EventTracer] = None
        self.recorder: Optional[TimeSeriesRecorder] = None
        self.run_label = run_label
        # ``ue_channels`` (multi-channel specs) switches on the channel-
        # labelled metric families alongside the headline counters.
        children: list[SimHooks] = [
            MetricsHooks(self.registry, ue_channels=ue_channels)
        ]
        log = active_telemetry()
        if self.config.stream:
            self.recorder = TimeSeriesRecorder(
                self.registry,
                window=self.config.stream_window,
                families=self.config.stream_families,
                phase_probe=phase_probe,
                log=log,
                run_label=run_label,
            )
            children.append(self.recorder)
        self._tracing_hooks: Optional[TracingHooks] = None
        if self.config.tracing:
            self.tracer = EventTracer(capacity=self.config.trace_capacity)
            self._tracing_hooks = TracingHooks(
                self.tracer, stage_events=self.config.stage_events
            )
            children.append(self._tracing_hooks)
        self.hooks: SimHooks = (
            children[0] if len(children) == 1 else CompositeHooks(children)
        )
        if log is not None:
            log.emit(
                "run-started",
                run=run_label,
                stream_window=(
                    self.config.stream_window if self.config.stream else None
                ),
            )

    @contextmanager
    def activate(self) -> Iterator["ObsSession"]:
        """Scope this session's registry as the process-local active one."""
        with use_registry(self.registry):
            yield self

    def finish(self) -> None:
        """Close trace spans and flush the recorder's final window."""
        if self._tracing_hooks is not None:
            self._tracing_hooks.finish()
        if self.recorder is not None:
            self.recorder.finish()

    def snapshot(self) -> MetricsSnapshot:
        """The run's metrics, frozen into a mergeable plain-data snapshot."""
        return self.registry.snapshot()

    def attach(self, result) -> None:
        """Stamp the result with this run's snapshot (trace, series).

        All fields are ``compare=False`` on
        :class:`~repro.sim.results.SimulationResult`, so telemetry never
        perturbs bit-exactness comparisons — and all are plain data, so
        results round-trip through ``map_jobs`` worker pickling.
        """
        result.obs_snapshot = self.snapshot().to_dict()
        if self.tracer is not None:
            result.obs_trace = self.tracer.events()
        if self.recorder is not None:
            result.obs_series = self.recorder.frame.to_dict()
